// QueryService::join — client orchestration of the cross-object zone join.
//
// One epoch: broadcast a kJoinEval to every alive server (each acting for
// its own identity plus any dead identities re-planned onto it), let the
// servers shuffle candidates over the exchange lane and join their owned
// zones, then merge the per-zone pair lists in ascending zone order.  Any
// kUnavailable — a server died, a shuffle stream never completed — fails
// the WHOLE epoch: its partial results are discarded and the join re-runs
// under a fresh epoch number with the surviving participants, so the
// result is always exactly the fault-free answer of the final epoch's
// topology, never a mix.
//
// Simulated time follows the MPC communication model: request broadcast +
// max-over-servers evaluation + shuffle_rounds * net_latency + the
// busiest sender's shuffle bytes / net_bandwidth + response streaming +
// client merge.
#include <algorithm>
#include <map>
#include <utility>

#include "common/log.h"
#include "common/timer.h"
#include "query/service.h"
#include "server/region_assignment.h"
#include "server/zone_join.h"

namespace pdc::query {

Result<JoinResult> QueryService::join(const JoinSpec& spec,
                                      const QueryOptions& opts) {
  WallTimer wall;
  obs::Tracer tracer(opts.trace ? obs::next_id() : 0);
  const obs::TraceContext root =
      opts.trace ? obs::TraceContext{&tracer, tracer.trace_id(), 0}
                 : obs::TraceContext{};
  obs::ScopedSpan join_span(root, "client.join", "client");
  OpStats stats;
  struct Publisher {
    QueryService* service;
    OpStats* stats;
    WallTimer* wall;
    ~Publisher() {
      stats->wall_seconds = wall->elapsed_seconds();
      if (service->pool_ != nullptr) {
        stats->pool_threads = service->pool_->size();
        stats->pool_queue_peak = service->pool_->stats().queue_peak;
      }
      service->publish_stats(*stats);
    }
  } publisher{this, &stats, &wall};
  const CostModel& cost = store_.cluster().config().cost;

  // Plan-time validation: parameter admissibility (NaN epsilon / zone
  // height rejected here) and object existence.
  PDC_RETURN_IF_ERROR(
      server::validate_join_params(spec.epsilon, spec.zone_height));
  PDC_RETURN_IF_ERROR(store_.get(spec.left).status());
  PDC_RETURN_IF_ERROR(store_.get(spec.right).status());

  server::JoinEvalRequest request;
  request.join_id = next_join_id_.fetch_add(1);
  request.strategy = spec.strategy.value_or(options_.join_strategy);
  request.eval_strategy = options_.strategy;
  request.object_a = spec.left;
  request.object_b = spec.right;
  request.epsilon = spec.epsilon;
  request.zone_height = spec.zone_height;
  request.filter_a = spec.left_filter;
  request.filter_b = spec.right_filter;

  // Epoch loop: each failed round can kill at least one more server, so
  // num_servers + 2 rounds always suffice (the +2 absorbs a shuffle
  // deadline expiry that killed nobody).
  const std::uint32_t max_epochs = options_.num_servers + 2;
  for (std::uint32_t epoch = 1; epoch <= max_epochs; ++epoch) {
    const std::vector<ServerId> alive = alive_servers();
    if (alive.empty()) {
      stats.dead_servers = options_.num_servers;
      return Status::Unavailable("all PDC servers are dead");
    }
    request.epoch = epoch;
    request.participants = alive;  // ascending by construction
    const auto extra = server::plan_reassignment(dead_servers(), alive);

    std::vector<std::pair<ServerId, std::vector<std::uint8_t>>> requests;
    requests.reserve(alive.size());
    double max_request_net = 0.0;
    for (std::size_t i = 0; i < alive.size(); ++i) {
      request.act_as.assign(1, alive[i]);
      request.act_as.insert(request.act_as.end(), extra[i].begin(),
                            extra[i].end());
      std::vector<std::uint8_t> payload = request.serialize();
      stats.request_bytes += payload.size();
      max_request_net =
          std::max(max_request_net, cost.net_cost(payload.size()));
      requests.emplace_back(alive[i], std::move(payload));
    }
    stats.net_seconds += max_request_net;

    const rpc::GatherResult gathered =
        client_.gather(requests, join_span.context(), opts.tenant);
    stats.retries += gathered.stats.retries;
    stats.timeouts += gathered.stats.timeouts;
    stats.sheds += gathered.stats.sheds;
    if (gathered.bus_closed) {
      return Status::Unavailable("message bus shut down mid-join");
    }

    // A join epoch is all-or-nothing: any missing or kUnavailable response
    // poisons it (some server's zone share is absent), so every partial
    // result is discarded and a fresh epoch re-runs on the survivors.
    bool epoch_failed = false;
    bool round_has_response = false;
    server::LedgerSummary round_critical;
    std::uint64_t max_sender_bytes = 0;
    std::uint64_t rounds = 0;
    std::uint64_t candidates_a = 0;
    std::uint64_t candidates_b = 0;
    std::map<std::int64_t, std::vector<server::JoinPairWire>> merged;
    for (std::size_t i = 0; i < alive.size(); ++i) {
      const auto& message = gathered.responses[i];
      if (!message.has_value()) {
        if (gathered.shed[i]) {
          // Overloaded, not dead (see eval()): fail fast, caller retries.
          return Status::Overloaded("server " + std::to_string(alive[i]) +
                                    " shed the join; retry later");
        }
        mark_dead(alive[i]);
        epoch_failed = true;
        continue;
      }
      SerialReader reader(message->payload);
      PDC_ASSIGN_OR_RETURN(server::JoinEvalResponse response,
                           server::JoinEvalResponse::Deserialize(reader));
      stats.response_bytes += message->payload.size();
      stats.shuffle_bytes += response.shuffle_bytes_sent;
      stats.shuffle_msgs += response.shuffle_msgs_sent;
      stats.shuffle_retransmits += response.shuffle_retransmits;
      if (!response.status.ok()) {
        if (response.status.code() == StatusCode::kUnavailable) {
          // Shuffle deadline expired on this server (a peer died or frames
          // kept vanishing) — retriable under a fresh epoch.
          epoch_failed = true;
          continue;
        }
        return response.status;  // deterministic failure; retrying is futile
      }
      candidates_a += response.candidates_a;
      candidates_b += response.candidates_b;
      max_sender_bytes =
          std::max(max_sender_bytes, response.shuffle_bytes_sent);
      rounds = std::max(rounds, response.shuffle_rounds);
      stats.server_bytes_read += response.ledger.bytes_read;
      stats.server_read_ops += response.ledger.read_ops;
      if (!round_has_response ||
          response.ledger.elapsed() > round_critical.elapsed()) {
        round_critical = response.ledger;
        round_has_response = true;
      }
      for (server::ZonePairs& zp : response.zones) {
        if (!merged.emplace(zp.zone, std::move(zp.pairs)).second) {
          return Status::Internal("zone " + std::to_string(zp.zone) +
                                  " reported by two servers");
        }
      }
    }
    if (round_has_response) {
      // Server evaluation overlaps across participants: per-round max.
      stats.max_server_seconds += round_critical.elapsed();
      stats.max_server_io_seconds += round_critical.io_seconds;
      stats.max_server_cpu_seconds += round_critical.cpu_seconds;
      stats.max_server_scan_seconds += round_critical.scan_seconds;
      stats.max_server_decode_seconds += round_critical.decode_seconds;
      stats.max_server_merge_seconds += round_critical.merge_seconds;
    }
    if (epoch_failed) {
      log_warn("join epoch ", epoch, " failed; re-running on ",
               alive_servers().size(), " survivors");
      continue;
    }

    // MPC communication term: rounds are latency-bound, volume is bound by
    // the busiest sender (links are full-duplex and parallel).
    stats.shuffle_rounds = rounds;
    stats.join_candidates_left = candidates_a;
    stats.join_candidates_right = candidates_b;
    stats.net_seconds +=
        static_cast<double>(rounds) * cost.net_latency_s +
        static_cast<double>(max_sender_bytes) / cost.net_bandwidth_bps;
    // Responses stream back to the one client NIC.
    stats.net_seconds +=
        cost.net_latency_s +
        static_cast<double>(stats.response_bytes) / cost.net_bandwidth_bps;
    stats.dead_servers = dead_servers().size();

    // Client merge: per-zone lists are pre-sorted; concatenation in
    // ascending zone order is the deterministic global result.
    JoinResult result;
    result.num_zones = merged.size();
    std::uint64_t total_pairs = 0;
    for (const auto& [zone, pairs] : merged) total_pairs += pairs.size();
    result.pairs.reserve(total_pairs);
    for (auto& [zone, pairs] : merged) {
      for (const server::JoinPairWire& p : pairs) {
        result.pairs.push_back({p.left_pos, p.right_pos});
      }
    }
    stats.client_cpu_seconds +=
        static_cast<double>(total_pairs * sizeof(server::JoinPairWire)) /
        cost.memcpy_bandwidth_bps;
    stats.sim_elapsed_seconds = stats.net_seconds + stats.max_server_seconds +
                                stats.client_cpu_seconds;
    if (opts.trace) {
      join_span.arg("sim_elapsed_s", stats.sim_elapsed_seconds);
      join_span.arg("pairs", static_cast<double>(result.pairs.size()));
      join_span.arg("zones", static_cast<double>(result.num_zones));
      join_span.arg("epoch", static_cast<double>(epoch));
      join_span.arg("shuffle_bytes", static_cast<double>(stats.shuffle_bytes));
      join_span.arg("strategy",
                    static_cast<double>(static_cast<int>(request.strategy)));
      join_span.close();
      publish_trace(tracer, /*traced=*/true);
    }
    return result;
  }
  stats.dead_servers = dead_servers().size();
  return Status::Unavailable("join failed after " +
                             std::to_string(max_epochs) + " epochs");
}

}  // namespace pdc::query
