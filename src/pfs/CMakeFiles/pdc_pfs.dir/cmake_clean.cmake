file(REMOVE_RECURSE
  "CMakeFiles/pdc_pfs.dir/pfs.cc.o"
  "CMakeFiles/pdc_pfs.dir/pfs.cc.o.d"
  "CMakeFiles/pdc_pfs.dir/read_aggregator.cc.o"
  "CMakeFiles/pdc_pfs.dir/read_aggregator.cc.o.d"
  "libpdc_pfs.a"
  "libpdc_pfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdc_pfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
