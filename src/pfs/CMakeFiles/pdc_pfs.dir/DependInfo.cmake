
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pfs/pfs.cc" "src/pfs/CMakeFiles/pdc_pfs.dir/pfs.cc.o" "gcc" "src/pfs/CMakeFiles/pdc_pfs.dir/pfs.cc.o.d"
  "/root/repo/src/pfs/read_aggregator.cc" "src/pfs/CMakeFiles/pdc_pfs.dir/read_aggregator.cc.o" "gcc" "src/pfs/CMakeFiles/pdc_pfs.dir/read_aggregator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/common/CMakeFiles/pdc_common.dir/DependInfo.cmake"
  "/root/repo/src/obs/CMakeFiles/pdc_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
