# Empty compiler generated dependencies file for pdc_pfs.
# This may be replaced when dependencies are built.
