file(REMOVE_RECURSE
  "libpdc_pfs.a"
)
