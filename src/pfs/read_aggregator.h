// Read aggregation: merge many small reads into few large ones.
//
// The paper (§III-E) credits PDC's read performance to "aggregation methods
// to merge small reads into bigger ones to reduce the data access
// contention".  This module implements that: given the byte extents a query
// actually needs, it plans a small number of covering reads (tolerating
// bounded over-read in gaps) and scatters the results into per-extent
// buffers.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "pfs/pfs.h"

namespace pdc::pfs {

/// Aggregation policy.
struct AggregationPolicy {
  /// Two extents closer than this many bytes are fetched in one read (the
  /// gap bytes are read and discarded).  0 disables coalescing of
  /// non-adjacent extents.
  std::uint64_t max_gap_bytes = 256 * 1024;

  /// Upper bound on one aggregated read (keeps buffers bounded).
  std::uint64_t max_run_bytes = 64ull << 20;
};

/// Plan covering reads for `extents` (byte ranges, must be sorted by
/// offset; overlapping extents are merged unconditionally, which may
/// exceed max_run_bytes).  Pure function — unit-testable without I/O.
[[nodiscard]] std::vector<Extent1D> plan_aggregated_reads(
    std::span<const Extent1D> extents, const AggregationPolicy& policy);

/// Read all `extents` from `file` using the aggregation plan and scatter
/// each extent's bytes into the matching entry of `dests`
/// (dests[i].size() must equal extents[i].count).  Extents may be given in
/// any order and may overlap or duplicate; they are normalized internally
/// and each dest still receives exactly its own extent's bytes.
Status aggregated_read(const PfsFile& file, std::span<const Extent1D> extents,
                       std::span<const std::span<std::uint8_t>> dests,
                       const AggregationPolicy& policy, const ReadContext& ctx);

}  // namespace pdc::pfs
