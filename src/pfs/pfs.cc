#include "pfs/pfs.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>

namespace pdc::pfs {
namespace {

namespace fs = std::filesystem;

/// RAII file descriptor.
class Fd {
 public:
  explicit Fd(int fd) noexcept : fd_(fd) {}
  ~Fd() {
    if (fd_ >= 0) ::close(fd_);
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }

 private:
  int fd_;
};

std::string errno_message(std::string_view what, const std::string& path) {
  std::string msg(what);
  msg += " '";
  msg += path;
  msg += "': ";
  msg += std::strerror(errno);
  return msg;
}

/// Filenames may contain '/' (callers use hierarchical names); flatten them
/// so every file lives directly under the root.
std::string sanitize(std::string_view name) {
  std::string out(name);
  std::replace(out.begin(), out.end(), '/', '_');
  return out;
}

}  // namespace

Result<std::unique_ptr<PfsCluster>> PfsCluster::Create(PfsConfig config) {
  if (config.root_dir.empty()) {
    return Status::InvalidArgument("PfsConfig.root_dir is empty");
  }
  if (config.num_osts == 0 || config.stripe_count == 0 ||
      config.stripe_size == 0) {
    return Status::InvalidArgument("PFS geometry parameters must be nonzero");
  }
  std::error_code ec;
  fs::create_directories(config.root_dir, ec);
  if (ec) {
    return Status::IoError("cannot create PFS root '" + config.root_dir +
                           "': " + ec.message());
  }
  return std::unique_ptr<PfsCluster>(new PfsCluster(std::move(config)));
}

std::string PfsCluster::backing_path(std::string_view name) const {
  return config_.root_dir + "/" + sanitize(name);
}

Result<PfsFile> PfsCluster::create(std::string_view name, bool truncate) {
  const std::string path = backing_path(name);
  int flags = O_WRONLY | O_CREAT;
  flags |= truncate ? O_TRUNC : O_EXCL;
  Fd fd(::open(path.c_str(), flags, 0644));
  if (!fd.valid()) {
    if (errno == EEXIST) {
      return Status::AlreadyExists("PFS file exists: " + std::string(name));
    }
    return Status::IoError(errno_message("create", path));
  }
  return PfsFile(this, std::string(name), path);
}

Result<PfsFile> PfsCluster::open(std::string_view name) const {
  const std::string path = backing_path(name);
  if (!fs::exists(path)) {
    return Status::NotFound("PFS file not found: " + std::string(name));
  }
  return PfsFile(this, std::string(name), path);
}

Status PfsCluster::remove(std::string_view name) {
  std::error_code ec;
  fs::remove(backing_path(name), ec);
  if (ec) {
    return Status::IoError("remove failed: " + ec.message());
  }
  return Status::Ok();
}

bool PfsCluster::exists(std::string_view name) const {
  return fs::exists(backing_path(name));
}

Result<std::uint64_t> PfsCluster::file_size(std::string_view name) const {
  std::error_code ec;
  const auto size = fs::file_size(backing_path(name), ec);
  if (ec) {
    return Status::NotFound("file_size failed for " + std::string(name) +
                            ": " + ec.message());
  }
  return static_cast<std::uint64_t>(size);
}

double PfsCluster::effective_read_bandwidth(
    std::uint32_t osts_touched, std::uint32_t concurrent_readers) const noexcept {
  const double striped_bw =
      config_.cost.ost_bandwidth_bps * std::max<std::uint32_t>(1, osts_touched);
  if (!config_.model_contention) return striped_bw;
  // Each of `concurrent_readers` readers drives ~stripe_count OSTs; the pool
  // has num_osts of them.  Oversubscription divides per-reader bandwidth.
  const double demand = static_cast<double>(concurrent_readers) *
                        static_cast<double>(config_.stripe_count);
  const double oversubscription =
      std::max(1.0, demand / static_cast<double>(config_.num_osts));
  return striped_bw / oversubscription;
}

std::uint32_t PfsFile::osts_touched(std::uint64_t offset,
                                    std::uint64_t len) const noexcept {
  if (len == 0) return 0;
  const auto& cfg = cluster_->config();
  const std::uint64_t first_unit = offset / cfg.stripe_size;
  const std::uint64_t last_unit = (offset + len - 1) / cfg.stripe_size;
  const std::uint64_t units = last_unit - first_unit + 1;
  return static_cast<std::uint32_t>(
      std::min<std::uint64_t>(units, cfg.stripe_count));
}

Status PfsFile::write(std::uint64_t offset, std::span<const std::uint8_t> data,
                      CostLedger* ledger) const {
  Fd fd(::open(path_.c_str(), O_WRONLY));
  if (!fd.valid()) {
    return Status::IoError(errno_message("open for write", path_));
  }
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::pwrite(fd.get(), data.data() + done, data.size() - done,
                               static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(errno_message("pwrite", path_));
    }
    done += static_cast<std::size_t>(n);
  }
  if (ledger != nullptr) {
    const auto& cost = cluster_->config().cost;
    ledger->add_io(cost.disk_write_latency_s +
                   static_cast<double>(data.size()) /
                       cost.ost_write_bandwidth_bps);
  }
  return Status::Ok();
}

Status PfsFile::read(std::uint64_t offset, std::span<std::uint8_t> out,
                     const ReadContext& ctx) const {
  obs::ScopedSpan span(ctx.trace, "pfs.read", "pfs");
  Fd fd(::open(path_.c_str(), O_RDONLY));
  if (!fd.valid()) {
    return Status::IoError(errno_message("open for read", path_));
  }
  std::size_t done = 0;
  while (done < out.size()) {
    const ssize_t n = ::pread(fd.get(), out.data() + done, out.size() - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(errno_message("pread", path_));
    }
    if (n == 0) {
      return Status::OutOfRange("read past end of " + name_);
    }
    done += static_cast<std::size_t>(n);
  }
  const std::uint32_t osts = osts_touched(offset, out.size());
  double sim_io_s = 0.0;
  if (ctx.ledger != nullptr) {
    const auto& cost = cluster_->config().cost;
    const double bw =
        cluster_->effective_read_bandwidth(osts, ctx.concurrent_readers);
    sim_io_s =
        cost.disk_read_latency_s + static_cast<double>(out.size()) / bw;
    ctx.ledger->add_io(sim_io_s);
    ctx.ledger->add_read_ops(1);
    ctx.ledger->add_bytes_read(out.size());
  }
  cluster_->read_ops_.fetch_add(1, std::memory_order_relaxed);
  cluster_->bytes_read_.fetch_add(out.size(), std::memory_order_relaxed);
  if (ctx.trace.enabled()) {
    const auto& cfg = cluster_->config();
    span.arg("bytes", static_cast<double>(out.size()));
    span.arg("ost_first", static_cast<double>((offset / cfg.stripe_size) %
                                              cfg.num_osts));
    span.arg("osts", static_cast<double>(osts));
    span.arg("sim_io_s", sim_io_s);
  }
  return Status::Ok();
}

Result<std::uint64_t> PfsFile::size() const {
  std::error_code ec;
  const auto size = fs::file_size(path_, ec);
  if (ec) {
    return Status::IoError("file_size failed: " + ec.message());
  }
  return static_cast<std::uint64_t>(size);
}

}  // namespace pdc::pfs
