// Simulated Lustre-like striped parallel file system.
//
// Data is genuinely stored in local files (one backing file per PFS file),
// so reads return real bytes; what is *simulated* is the performance: every
// read/write charges a modeled cost into a CostLedger that reflects
//   - per-operation latency (seek + storage-server round trip),
//   - striping (an extent spanning k OSTs streams at k * ost_bandwidth),
//   - contention (many concurrent readers share the OST pool).
//
// This is the substrate both PDC and the HDF5-F baseline run on, which keeps
// the comparison fair: they differ only in *which* bytes they read and in
// how many operations they issue — exactly the levers the paper studies
// (§III-E data retrieval, read aggregation).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>

#include <atomic>

#include "common/cost_model.h"
#include "common/status.h"
#include "common/types.h"
#include "obs/trace.h"

namespace pdc::pfs {

/// Deployment-wide PFS parameters.
struct PfsConfig {
  std::string root_dir;            ///< local directory holding backing files
  std::uint32_t num_osts = 16;     ///< object storage targets in the pool
  std::uint64_t stripe_size = 1ull << 20;  ///< bytes per stripe unit
  std::uint32_t stripe_count = 4;  ///< OSTs a single file is striped over
  bool model_contention = true;    ///< scale bandwidth by concurrent readers
  CostModel cost;                  ///< latency/bandwidth constants
};

/// Execution context of a read: where to charge cost and how many peers are
/// reading at the same time (the server runtime passes its deployment size).
struct ReadContext {
  CostLedger* ledger = nullptr;          ///< may be null (cost not tracked)
  std::uint32_t concurrent_readers = 1;  ///< servers active in this phase
  /// Trace context of the enclosing operation; a disabled (default)
  /// context costs one branch per read.  Each read emits a "pfs.read"
  /// span annotated with bytes, the first OST and OST count touched, and
  /// the simulated I/O seconds charged (the span's own duration is the
  /// wall cost).
  obs::TraceContext trace;
};

class PfsFile;

/// The OST pool plus a directory of files.  Thread-safe for concurrent
/// opens/reads; file creation is expected from a single ingest thread.
class PfsCluster {
 public:
  /// Creates (or reuses) `config.root_dir` on the local filesystem.
  static Result<std::unique_ptr<PfsCluster>> Create(PfsConfig config);

  /// Create a new file (fails if it exists and `truncate` is false).
  Result<PfsFile> create(std::string_view name, bool truncate = true);

  /// Open an existing file.
  Result<PfsFile> open(std::string_view name) const;

  /// Remove a file; OK if it does not exist.
  Status remove(std::string_view name);

  [[nodiscard]] bool exists(std::string_view name) const;
  [[nodiscard]] Result<std::uint64_t> file_size(std::string_view name) const;

  [[nodiscard]] const PfsConfig& config() const noexcept { return config_; }

  /// Effective streaming bandwidth (bytes/s) seen by one reader whose extent
  /// spans `osts_touched` OSTs while `concurrent_readers` peers are active.
  [[nodiscard]] double effective_read_bandwidth(
      std::uint32_t osts_touched, std::uint32_t concurrent_readers) const noexcept;

  /// Cumulative read totals across every file of this cluster (monotone;
  /// exported as "pfs.*" gauges through the deployment MetricsRegistry).
  [[nodiscard]] std::uint64_t total_read_ops() const noexcept {
    return read_ops_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total_bytes_read() const noexcept {
    return bytes_read_.load(std::memory_order_relaxed);
  }

 private:
  explicit PfsCluster(PfsConfig config) : config_(std::move(config)) {}

  [[nodiscard]] std::string backing_path(std::string_view name) const;

  PfsConfig config_;
  mutable std::atomic<std::uint64_t> read_ops_{0};
  mutable std::atomic<std::uint64_t> bytes_read_{0};

  friend class PfsFile;
};

/// Handle to one striped file.  Cheap to copy; holds no open descriptor
/// (each I/O op opens/closes the backing file, mirroring an RPC to a
/// storage server).  Thread-safe for concurrent reads.
class PfsFile {
 public:
  /// Write `data` at `offset`, extending the file as needed.
  Status write(std::uint64_t offset, std::span<const std::uint8_t> data,
               CostLedger* ledger = nullptr) const;

  /// Read exactly `out.size()` bytes at `offset`.
  Status read(std::uint64_t offset, std::span<std::uint8_t> out,
              const ReadContext& ctx) const;

  [[nodiscard]] Result<std::uint64_t> size() const;
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const PfsConfig& config() const noexcept {
    return cluster_->config();
  }

  /// Number of distinct OSTs the byte range [offset, offset+len) touches.
  [[nodiscard]] std::uint32_t osts_touched(std::uint64_t offset,
                                           std::uint64_t len) const noexcept;

 private:
  PfsFile(const PfsCluster* cluster, std::string name, std::string path)
      : cluster_(cluster), name_(std::move(name)), path_(std::move(path)) {}

  const PfsCluster* cluster_;
  std::string name_;
  std::string path_;

  friend class PfsCluster;
};

}  // namespace pdc::pfs
