#include "pfs/read_aggregator.h"

#include <algorithm>
#include <cstring>

namespace pdc::pfs {

std::vector<Extent1D> plan_aggregated_reads(std::span<const Extent1D> extents,
                                            const AggregationPolicy& policy) {
  std::vector<Extent1D> runs;
  for (const Extent1D& e : extents) {
    if (e.empty()) continue;
    if (!runs.empty()) {
      Extent1D& last = runs.back();
      if (e.offset < last.end()) {
        // Overlapping extent: ALWAYS merge — the overlapped bytes are read
        // once anyway, and the scatter phase requires each extent to lie
        // inside a single run (max_run_bytes may be exceeded here).
        last.count = std::max(last.end(), e.end()) - last.offset;
        continue;
      }
      const std::uint64_t gap = e.offset - last.end();
      const std::uint64_t merged = e.end() - last.offset;
      if (gap <= policy.max_gap_bytes && merged <= policy.max_run_bytes) {
        last.count = merged;
        continue;
      }
    }
    runs.push_back(e);
  }
  return runs;
}

Status aggregated_read(const PfsFile& file, std::span<const Extent1D> extents,
                       std::span<const std::span<std::uint8_t>> dests,
                       const AggregationPolicy& policy,
                       const ReadContext& ctx) {
  if (extents.size() != dests.size()) {
    return Status::InvalidArgument("extents/dests size mismatch");
  }
  bool sorted = true;
  for (std::size_t i = 0; i < extents.size(); ++i) {
    if (dests[i].size() != extents[i].count) {
      return Status::InvalidArgument("dest buffer size != extent size");
    }
    if (i > 0 && extents[i].offset < extents[i - 1].offset) sorted = false;
  }

  // Normalize: plan over an offset-sorted view (overlaps are merged by the
  // planner), scatter through the permutation so each caller buffer gets
  // its own extent's bytes regardless of input order or duplication.
  std::vector<std::size_t> order(extents.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (!sorted) {
    std::stable_sort(order.begin(), order.end(),
                     [&extents](std::size_t a, std::size_t b) {
                       return extents[a].offset < extents[b].offset;
                     });
  }
  std::vector<Extent1D> in_order;
  in_order.reserve(order.size());
  for (const std::size_t i : order) in_order.push_back(extents[i]);

  const std::vector<Extent1D> runs = plan_aggregated_reads(in_order, policy);
  std::vector<std::uint8_t> run_buf;
  std::size_t next_extent = 0;
  std::uint64_t scattered_bytes = 0;
  for (const Extent1D& run : runs) {
    run_buf.resize(static_cast<std::size_t>(run.count));
    PDC_RETURN_IF_ERROR(file.read(run.offset, run_buf, ctx));
    // Scatter every requested extent that lies inside this run.
    while (next_extent < in_order.size() &&
           (in_order[next_extent].empty() ||
            in_order[next_extent].end() <= run.end())) {
      const Extent1D& e = in_order[next_extent];
      if (!e.empty()) {
        std::memcpy(dests[order[next_extent]].data(),
                    run_buf.data() + (e.offset - run.offset),
                    static_cast<std::size_t>(e.count));
        scattered_bytes += e.count;
      }
      ++next_extent;
    }
  }
  // The scatter copies are real work the aggregated path does that one-read-
  // per-extent would not; charge them as merge-stage CPU so the trade-off
  // (fewer op latencies vs extra copies) is visible in the ledger.
  if (ctx.ledger != nullptr && scattered_bytes > 0) {
    ctx.ledger->add_cpu(static_cast<double>(scattered_bytes) /
                            file.config().cost.memcpy_bandwidth_bps,
                        CpuStage::kMerge);
  }
  // Trailing empty extents produce no run to visit.
  while (next_extent < in_order.size() && in_order[next_extent].empty()) {
    ++next_extent;
  }
  if (next_extent != extents.size()) {
    return Status::Internal("aggregation plan did not cover all extents");
  }
  return Status::Ok();
}

}  // namespace pdc::pfs
