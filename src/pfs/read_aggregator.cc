#include "pfs/read_aggregator.h"

#include <cstring>

namespace pdc::pfs {

std::vector<Extent1D> plan_aggregated_reads(std::span<const Extent1D> extents,
                                            const AggregationPolicy& policy) {
  std::vector<Extent1D> runs;
  for (const Extent1D& e : extents) {
    if (e.empty()) continue;
    if (!runs.empty()) {
      Extent1D& last = runs.back();
      const std::uint64_t gap = e.offset - last.end();
      const std::uint64_t merged = e.end() - last.offset;
      if (e.offset >= last.end() && gap <= policy.max_gap_bytes &&
          merged <= policy.max_run_bytes) {
        last.count = merged;
        continue;
      }
    }
    runs.push_back(e);
  }
  return runs;
}

Status aggregated_read(const PfsFile& file, std::span<const Extent1D> extents,
                       std::span<const std::span<std::uint8_t>> dests,
                       const AggregationPolicy& policy,
                       const ReadContext& ctx) {
  if (extents.size() != dests.size()) {
    return Status::InvalidArgument("extents/dests size mismatch");
  }
  for (std::size_t i = 0; i < extents.size(); ++i) {
    if (dests[i].size() != extents[i].count) {
      return Status::InvalidArgument("dest buffer size != extent size");
    }
    if (i > 0 && extents[i].offset < extents[i - 1].end()) {
      return Status::InvalidArgument("extents must be sorted, non-overlapping");
    }
  }

  const std::vector<Extent1D> runs = plan_aggregated_reads(extents, policy);
  std::vector<std::uint8_t> run_buf;
  std::size_t next_extent = 0;
  for (const Extent1D& run : runs) {
    run_buf.resize(static_cast<std::size_t>(run.count));
    PDC_RETURN_IF_ERROR(file.read(run.offset, run_buf, ctx));
    // Scatter every requested extent that lies inside this run.
    while (next_extent < extents.size() &&
           extents[next_extent].end() <= run.end()) {
      const Extent1D& e = extents[next_extent];
      if (!e.empty()) {
        std::memcpy(dests[next_extent].data(),
                    run_buf.data() + (e.offset - run.offset),
                    static_cast<std::size_t>(e.count));
      }
      ++next_extent;
    }
  }
  if (next_extent != extents.size()) {
    return Status::Internal("aggregation plan did not cover all extents");
  }
  return Status::Ok();
}

}  // namespace pdc::pfs
