#include "rpc/fault.h"

#include <algorithm>

namespace pdc::rpc {

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), rng_(plan_.seed) {}

SendDecision FaultInjector::on_send(Direction /*direction*/,
                                    ServerId /*server*/,
                                    std::span<const std::uint8_t> /*payload*/) {
  std::lock_guard lock(mu_);
  SendDecision decision;
  if (plan_.drop_rate > 0.0 && rng_.next_double() < plan_.drop_rate) {
    decision.drop = true;
    ++counters_.dropped;
    return decision;  // a dropped message can suffer no further fault
  }
  if (plan_.corrupt_rate > 0.0 && rng_.next_double() < plan_.corrupt_rate) {
    decision.corrupt = true;
    ++counters_.corrupted;
  }
  if (plan_.duplicate_rate > 0.0 &&
      rng_.next_double() < plan_.duplicate_rate) {
    decision.duplicate = true;
    ++counters_.duplicated;
  }
  if (plan_.delay_rate > 0.0 && rng_.next_double() < plan_.delay_rate) {
    const auto lo = plan_.min_delay.count();
    const auto hi = std::max(lo, plan_.max_delay.count());
    decision.delay = std::chrono::milliseconds(
        lo + static_cast<long>(rng_.bounded(
                 static_cast<std::uint64_t>(hi - lo + 1))));
    ++counters_.delayed;
  }
  return decision;
}

void FaultInjector::corrupt(std::vector<std::uint8_t>& payload) {
  if (payload.empty()) return;
  std::lock_guard lock(mu_);
  payload[rng_.bounded(payload.size())] ^= 0xA5;
}

ServerFate FaultInjector::on_server_request(ServerId server) {
  std::lock_guard lock(mu_);
  if (handled_.size() <= server) {
    handled_.resize(server + 1, 0);
    failed_.resize(server + 1, false);
  }
  const std::uint64_t handled = handled_[server]++;
  if (failed_[server]) return ServerFate::kKilled;
  for (const FaultPlan::ServerFault& fault : plan_.server_faults) {
    if (fault.server == server && handled >= fault.after_requests) {
      failed_[server] = true;
      ++counters_.servers_failed;
      return fault.fate;
    }
  }
  return ServerFate::kAlive;
}

FaultCounters FaultInjector::counters() const {
  std::lock_guard lock(mu_);
  return counters_;
}

}  // namespace pdc::rpc
