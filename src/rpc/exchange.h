// Exchange operator transport: reliable server-to-server tuple shuffle.
//
// Cross-object joins partition candidate tuples by zone id and ship each
// partition to the server that owns the zone (ParGRES-style exchange).  The
// MessageBus provides only a lossy, per-server exchange mailbox; this port
// layers exactly-once delivery on top of it with the same envelope
// machinery the client RPC path uses:
//
//   - every frame travels inside an Envelope (FNV-1a checksum), so
//     in-transit corruption is detected and treated as loss;
//   - the sender retransmits every unacked frame until the receiver acks
//     it or
//     the shuffle deadline expires;
//   - the receiver dedups frames by (producer, seq) per (join_id, epoch)
//     and re-acks duplicates, so fault-injected duplication and sender
//     retransmits deliver each batch exactly once;
//   - an EOS frame per producer carries the total batch count, so the
//     consumer knows when a producer's stream is complete.
//
// Epochs: the client re-runs a failed join round under a fresh epoch.
// Frames are keyed by (join_id, epoch); a late frame from a failed epoch
// lands in that epoch's state bucket and is never mixed into the retry.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <span>
#include <thread>
#include <vector>

#include "common/serial.h"
#include "common/status.h"
#include "common/types.h"
#include "rpc/message_bus.h"

namespace pdc::rpc {

/// One join candidate flowing through the exchange.  `zone` is the TARGET
/// zone bucket (for band-expanded probe tuples this differs from the zone
/// the value itself falls in), `pos` the element's original-space position.
struct JoinTuple {
  std::int64_t zone = 0;
  double value = 0.0;
  std::uint64_t pos = 0;
};
static_assert(std::is_trivially_copyable_v<JoinTuple> &&
                  sizeof(JoinTuple) == 24,
              "JoinTuple is shipped as raw bytes");

/// Leading wire byte of every exchange frame.  Numerically equal to
/// server::RequestType::kExchange so peek_request_type classifies exchange
/// frames without the rpc layer depending on server wire headers.
inline constexpr std::uint8_t kExchangeFrameTag = 6;

enum class ExchangeFrameKind : std::uint8_t {
  kBatch = 1,  ///< one batch of tuples for one side
  kEos = 2,    ///< producer finished; carries its total batch count
  kAck = 3,    ///< receiver acknowledges (producer retransmits until seen)
};

/// Sequence number reserved for the EOS frame (batches use 0..n-1).
inline constexpr std::uint32_t kEosSeq = 0xFFFFFFFFu;

/// Which join side a batch belongs to (0 = build/A, 1 = probe/B).
inline constexpr std::uint8_t kSideA = 0;
inline constexpr std::uint8_t kSideB = 1;

struct ExchangeFrame {
  ExchangeFrameKind kind = ExchangeFrameKind::kBatch;
  std::uint64_t join_id = 0;
  std::uint32_t epoch = 0;
  /// kBatch/kEos: producing server.  kAck: the acking server.
  std::uint32_t from = 0;
  /// kBatch: batch index.  kEos: kEosSeq.  kAck: the seq being acked.
  std::uint32_t seq = 0;
  std::uint8_t side = kSideA;         ///< kBatch only
  std::uint32_t batches_total = 0;    ///< kEos only
  /// kBatch payload.  serialize() emits this as a borrowed GatherWriter
  /// span (the single bulk copy happens at wire assembly), so the span
  /// must stay alive until serialize() returns.
  std::span<const JoinTuple> tuples;
  /// Deserialize materializes the batch here and points `tuples` at it.
  std::vector<JoinTuple> tuple_storage;

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static Result<ExchangeFrame> Deserialize(SerialReader& r);
};

/// What one reliable shipment actually cost (feeds the MPC shuffle terms
/// of the cost model and the join response's observability fields).
struct ShuffleStats {
  std::uint64_t bytes_sent = 0;  ///< envelope payload bytes, incl. rexmits
  std::uint64_t msgs_sent = 0;
  std::uint64_t retransmits = 0;
};

/// Tuples collected from every remote producer of one (join_id, epoch).
struct CollectedTuples {
  std::vector<JoinTuple> a;
  std::vector<JoinTuple> b;
};

/// A serialized frame scheduled for reliable delivery.
struct OutboundFrame {
  ServerId dest = 0;
  std::uint32_t seq = 0;
  std::vector<std::uint8_t> bytes;  ///< ExchangeFrame::serialize() output
};

/// How long ship()/collect() keep retrying before giving up; the join
/// handler surfaces expiry as kUnavailable and the client re-plans.
struct ExchangeOptions {
  std::chrono::milliseconds deadline{500};
  std::chrono::milliseconds retransmit_interval{25};
};

/// Per-server endpoint of the exchange: owns a receiver thread draining the
/// server's exchange mailbox, acking and buffering incoming batches, and
/// recording acks for in-flight shipments.
class ExchangePort {
 public:
  using Options = ExchangeOptions;

  ExchangePort(MessageBus& bus, ServerId id, Options options = {});
  ~ExchangePort();

  ExchangePort(const ExchangePort&) = delete;
  ExchangePort& operator=(const ExchangePort&) = delete;

  [[nodiscard]] ServerId id() const noexcept { return id_; }

  /// Reliably deliver `frames` (batches + one EOS per destination),
  /// retransmitting unacked frames every retransmit_interval until all are
  /// acked or the deadline expires.  Returns false on deadline/closure;
  /// `stats` accumulates bytes/messages including retransmits either way.
  bool ship(std::uint64_t join_id, std::uint32_t epoch,
            const std::vector<OutboundFrame>& frames, ShuffleStats& stats);

  /// Block until every producer in `producers` (excluding this server) has
  /// delivered a complete stream (all batches + EOS) for (join_id, epoch),
  /// then return the buffered tuples and drop the state.  nullopt on
  /// deadline expiry or port closure — the epoch failed.
  std::optional<CollectedTuples> collect(std::uint64_t join_id,
                                         std::uint32_t epoch,
                                         const std::vector<ServerId>& producers);

  /// Drop any buffered state for `join_id` (all epochs).  Called once the
  /// join's response is cached so abandoned epochs cannot accumulate.
  void forget(std::uint64_t join_id);

  /// Wake every ship()/collect() waiter with failure and stop accepting
  /// frames.  Idempotent; also closes the underlying exchange mailbox.
  void close();

 private:
  struct ProducerStream {
    std::set<std::uint32_t> seqs;  ///< batch seqs received (deduped)
    std::optional<std::uint32_t> total;  ///< from EOS
    [[nodiscard]] bool complete() const noexcept {
      return total.has_value() && seqs.size() == *total;
    }
  };
  struct EpochState {
    std::vector<JoinTuple> a;
    std::vector<JoinTuple> b;
    std::map<std::uint32_t, ProducerStream> producers;
    std::uint64_t stamp = 0;  ///< insertion order, for pruning
  };
  using EpochKey = std::pair<std::uint64_t, std::uint32_t>;

  void receive_loop();
  [[nodiscard]] bool stream_complete(const EpochState& state,
                                     const std::vector<ServerId>& producers)
      const;

  MessageBus& bus_;
  const ServerId id_;
  const Options options_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool closed_ = false;
  std::uint64_t stamp_ = 0;
  std::map<EpochKey, EpochState> states_;
  /// Acks seen, keyed (join, epoch) -> set of (dest << 32 | seq).
  std::map<EpochKey, std::set<std::uint64_t>> acks_;
  std::uint64_t next_frame_id_ = 1;

  std::thread receiver_;
};

}  // namespace pdc::rpc
