// In-process message transport between one client and N PDC servers.
//
// Each server owns a mailbox (thread-safe queue of byte-buffer messages);
// the client owns one too.  Everything that crosses a mailbox is a
// serialized byte vector — no pointers are shared — which enforces the same
// data-movement discipline as the real system's Mercury RPC transport and
// lets the query layer meter network bytes for the cost model.
//
// Fault model: the bus optionally consults a FaultInjector on every send,
// which may drop, delay, duplicate or corrupt the message in transit —
// the in-process analogue of a lossy interconnect.  Reliability on top of
// this lossy substrate comes from the request envelopes below plus the
// deadline/retry logic in rpc::Client.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "common/types.h"
#include "rpc/fault.h"

namespace pdc::rpc {

/// Sender id used for messages originating at the client.
inline constexpr std::uint32_t kClientSender = 0xFFFFFFFFu;

struct Message {
  std::uint32_t sender = kClientSender;
  std::vector<std::uint8_t> payload;
};

// ---------------------------------------------------------------- envelope

/// Transport header wrapped around every request/response payload.  Carries
/// the request id (stable across retries, so stale/duplicate responses can
/// be discarded), the attempt number, the absolute deadline after which the
/// receiver may drop the message unprocessed, the trace id + parent span id
/// of the issuing operation (zero when untraced), and a checksum over the
/// frame body so in-transit corruption is detected at the transport layer
/// (the lost message is then recovered by the client's retry, exactly like
/// a drop).
struct Envelope {
  std::uint64_t request_id = 0;
  std::uint32_t attempt = 0;
  /// Requesting tenant (fairness identity for the server-side weighted-fair
  /// scheduler; 0 = the default tenant).
  std::uint32_t tenant = 0;
  /// Transport flags (kFlagShed on a load-shed reply).
  std::uint32_t flags = 0;
  /// Microseconds since the steady-clock epoch; 0 = no deadline.
  std::uint64_t deadline_us = 0;
  /// Trace propagation (obs::Tracer): 0 = this request is not traced.
  std::uint64_t trace_id = 0;
  /// Client-side span that server-side spans attach under.
  std::uint64_t parent_span = 0;
};

/// Envelope::flags bit: this frame is a load-shed rejection, not a real
/// response.  Its payload is the serialized retry-after hint
/// (std::uint64_t microseconds) from the shedding server.
inline constexpr std::uint32_t kFlagShed = 1u << 0;

/// Current steady-clock time in the Envelope::deadline_us unit.
[[nodiscard]] std::uint64_t steady_now_us() noexcept;

/// FNV-1a over the payload bytes (transport checksum).
[[nodiscard]] std::uint64_t payload_checksum(
    std::span<const std::uint8_t> payload) noexcept;

/// Serialize `header` + `payload` into one wire frame.  `trace_blob` is
/// transport baggage appended after the payload (serialized obs spans on a
/// response to a traced request); it travels under the same checksum but
/// is invisible to the wire protocol above the transport.
[[nodiscard]] std::vector<std::uint8_t> envelope_wrap(
    const Envelope& header, std::span<const std::uint8_t> payload,
    std::span<const std::uint8_t> trace_blob = {});

/// Parse a wire frame.  Returns false (and leaves outputs untouched) when
/// the frame is malformed or fails its checksum — the caller must treat the
/// message as lost.  On success `payload` borrows from `frame`.
[[nodiscard]] bool envelope_unwrap(std::span<const std::uint8_t> frame,
                                   Envelope& header,
                                   std::span<const std::uint8_t>& payload);

/// As above, also exposing the trailing trace baggage (empty when none).
[[nodiscard]] bool envelope_unwrap(std::span<const std::uint8_t> frame,
                                   Envelope& header,
                                   std::span<const std::uint8_t>& payload,
                                   std::span<const std::uint8_t>& trace_blob);

// ----------------------------------------------------------------- mailbox

/// Outcome of a Mailbox::offer.  kClosed and kRejectedFull both mean "never
/// delivered", but callers that implement backpressure need to tell the
/// transient full condition (retryable) apart from shutdown (terminal).
enum class PushOutcome : std::uint8_t {
  kAccepted = 0,
  kClosed,        ///< mailbox closed; message dropped
  kRejectedFull,  ///< bounded mailbox at capacity; message dropped
};

/// MPSC queue with blocking pop, close semantics, and an optional capacity
/// bound (the transport-level backstop beneath admission control: a burst
/// past capacity is rejected at the door instead of growing memory without
/// bound).
///
/// Shutdown contract: after close(), push() returns false and the message
/// is NOT delivered; messages queued before close() still drain through
/// pop().  Callers must treat a false push as "never sent" — in particular
/// the MessageBus only accounts bytes/messages for pushes that succeeded.
class Mailbox {
 public:
  /// Enqueue with a distinguishable outcome; kAccepted means delivered.
  PushOutcome offer(Message message);

  /// Enqueue; returns false if the mailbox is closed or full (dropped).
  bool push(Message message) {
    return offer(std::move(message)) == PushOutcome::kAccepted;
  }

  /// Bound the queue to `capacity` messages (0 = unbounded, the default).
  /// Applies to subsequent offers; already queued messages are kept.
  void set_capacity(std::size_t capacity);
  [[nodiscard]] std::size_t capacity() const;

  /// Block until a message arrives or the mailbox is closed & drained;
  /// nullopt means closed.
  std::optional<Message> pop();

  /// Non-blocking pop; nullopt when the queue is currently empty.
  std::optional<Message> try_pop();

  /// Like pop(), but give up at `deadline`.  nullopt means timed out or
  /// closed & drained — distinguish with closed().
  std::optional<Message> pop_until(std::chrono::steady_clock::time_point deadline);

  /// Wake all poppers; subsequent pushes are dropped.
  void close();

  /// Block until close() has been called (ignores queued messages).  Used
  /// to model a wedged server thread that only "exits" at shutdown.
  void wait_closed();

  [[nodiscard]] bool closed() const;
  [[nodiscard]] std::size_t pending() const;
  /// Alias of pending() under the metrics-facing name.
  [[nodiscard]] std::size_t size() const { return pending(); }
  /// High-water mark of the queue depth over the mailbox lifetime.
  [[nodiscard]] std::size_t peak() const;
  /// Messages rejected because the mailbox was at capacity (not closed).
  [[nodiscard]] std::uint64_t rejected_full() const noexcept {
    return rejected_full_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  bool closed_ = false;
  std::size_t capacity_ = 0;  ///< 0 = unbounded
  std::size_t peak_ = 0;
  std::atomic<std::uint64_t> rejected_full_{0};
};

// ---------------------------------------------------------------------- bus

/// One client + N server mailboxes (plus one exchange mailbox per server
/// for server-to-server shuffle traffic), and transfer statistics.
///
/// bytes_transferred()/messages_sent() count only messages actually
/// delivered into a mailbox: sends that were refused (mailbox closed) or
/// dropped by the fault injector are not accounted.
class MessageBus {
 public:
  explicit MessageBus(std::uint32_t num_servers)
      : servers_(num_servers), exchange_(num_servers) {}
  ~MessageBus();

  MessageBus(const MessageBus&) = delete;
  MessageBus& operator=(const MessageBus&) = delete;

  [[nodiscard]] std::uint32_t num_servers() const noexcept {
    return static_cast<std::uint32_t>(servers_.size());
  }

  /// Install a fault injector consulted on every send (nullptr = none).
  /// Must outlive the bus; set before traffic starts.
  void set_fault_injector(FaultInjector* injector) noexcept {
    injector_ = injector;
  }
  [[nodiscard]] FaultInjector* fault_injector() const noexcept {
    return injector_;
  }

  /// Client -> one server.  Returns false only if the mailbox refused the
  /// message (closed); fault-injected drops still return true, because a
  /// real sender cannot observe a lost packet.
  bool send_to_server(ServerId server, std::vector<std::uint8_t> payload);

  /// Client -> every server (payload copied per server).
  void broadcast(std::span<const std::uint8_t> payload);

  /// Server -> client.
  bool send_to_client(ServerId server, std::vector<std::uint8_t> payload);

  /// Server `from` -> server `to`, onto the destination's *exchange*
  /// mailbox (a separate lane from client RPC so shuffle traffic can never
  /// deadlock against request handling).  Same fault model as every other
  /// send: the injector may drop/delay/duplicate/corrupt the frame, and
  /// reliability comes from the ExchangePort's ack/retransmit layer.
  bool send_to_exchange(ServerId from, ServerId to,
                        std::vector<std::uint8_t> payload);

  [[nodiscard]] Mailbox& server_mailbox(ServerId server) {
    return servers_[server];
  }
  [[nodiscard]] Mailbox& exchange_mailbox(ServerId server) {
    return exchange_[server];
  }
  [[nodiscard]] Mailbox& client_mailbox() { return client_; }

  /// Bound every server mailbox to `capacity` messages (0 = unbounded).
  /// The transport backstop beneath admission control: offers past the
  /// bound are rejected and the sender's retry recovers, exactly like a
  /// fault-injected drop.
  void set_server_mailbox_capacity(std::size_t capacity) {
    for (Mailbox& m : servers_) m.set_capacity(capacity);
  }
  /// Highest queue depth any server mailbox ever reached.
  [[nodiscard]] std::size_t peak_server_mailbox_depth() const {
    std::size_t peak = 0;
    for (const Mailbox& m : servers_) peak = std::max(peak, m.peak());
    return peak;
  }
  /// Total messages refused by full server mailboxes.
  [[nodiscard]] std::uint64_t mailbox_rejects() const noexcept {
    std::uint64_t total = 0;
    for (const Mailbox& m : servers_) total += m.rejected_full();
    return total;
  }

  /// Close every mailbox (shutdown).  Pending delayed messages are
  /// discarded.
  void shutdown();

  /// Total payload bytes delivered across the bus so far.
  [[nodiscard]] std::uint64_t bytes_transferred() const noexcept;
  [[nodiscard]] std::uint64_t messages_sent() const noexcept;

 private:
  /// Route one message to `box`, applying the fault plan.  Returns false
  /// only when the mailbox refused delivery.
  bool deliver(Mailbox& box, Direction direction, ServerId server,
               Message message);
  bool push_and_account(Mailbox& box, Message message);
  /// Hand a message to the delay line for delivery at `when`.
  void deliver_later(Mailbox& box, Message message,
                     std::chrono::steady_clock::time_point when);
  void delay_loop();

  std::vector<Mailbox> servers_;
  std::vector<Mailbox> exchange_;
  Mailbox client_;
  FaultInjector* injector_ = nullptr;

  // Atomic: bumped from sender threads and the delayed-delivery thread
  // while readers poll without coordination.
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> messages_{0};

  // Delayed-delivery line (started lazily on the first delayed message).
  struct Delayed {
    std::chrono::steady_clock::time_point when;
    Mailbox* box;
    Message message;
  };
  std::mutex delay_mu_;
  std::condition_variable delay_cv_;
  std::vector<Delayed> delayed_;
  std::thread delay_thread_;
  bool delay_stop_ = false;
};

}  // namespace pdc::rpc
