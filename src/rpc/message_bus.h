// In-process message transport between one client and N PDC servers.
//
// Each server owns a mailbox (thread-safe queue of byte-buffer messages);
// the client owns one too.  Everything that crosses a mailbox is a
// serialized byte vector — no pointers are shared — which enforces the same
// data-movement discipline as the real system's Mercury RPC transport and
// lets the query layer meter network bytes for the cost model.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "common/types.h"

namespace pdc::rpc {

/// Sender id used for messages originating at the client.
inline constexpr std::uint32_t kClientSender = 0xFFFFFFFFu;

struct Message {
  std::uint32_t sender = kClientSender;
  std::vector<std::uint8_t> payload;
};

/// Unbounded MPSC queue with blocking pop and close semantics.
class Mailbox {
 public:
  /// Enqueue; returns false if the mailbox is closed.
  bool push(Message message);

  /// Block until a message arrives or the mailbox is closed & drained;
  /// nullopt means closed.
  std::optional<Message> pop();

  /// Wake all poppers; subsequent pushes are dropped.
  void close();

  [[nodiscard]] std::size_t pending() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  bool closed_ = false;
};

/// One client + N server mailboxes, plus transfer statistics.
class MessageBus {
 public:
  explicit MessageBus(std::uint32_t num_servers)
      : servers_(num_servers) {}

  [[nodiscard]] std::uint32_t num_servers() const noexcept {
    return static_cast<std::uint32_t>(servers_.size());
  }

  /// Client -> one server.
  bool send_to_server(ServerId server, std::vector<std::uint8_t> payload);

  /// Client -> every server (payload copied per server).
  void broadcast(std::span<const std::uint8_t> payload);

  /// Server -> client.
  bool send_to_client(ServerId server, std::vector<std::uint8_t> payload);

  [[nodiscard]] Mailbox& server_mailbox(ServerId server) {
    return servers_[server];
  }
  [[nodiscard]] Mailbox& client_mailbox() { return client_; }

  /// Close every mailbox (shutdown).
  void shutdown();

  /// Total payload bytes that crossed the bus so far.
  [[nodiscard]] std::uint64_t bytes_transferred() const noexcept;
  [[nodiscard]] std::uint64_t messages_sent() const noexcept;

 private:
  void account(std::size_t bytes);

  std::vector<Mailbox> servers_;
  Mailbox client_;
  mutable std::mutex stats_mu_;
  std::uint64_t bytes_ = 0;
  std::uint64_t messages_ = 0;
};

}  // namespace pdc::rpc
