// Deterministic fault injection for the in-process RPC transport.
//
// The paper's deployment runs one PDC server per node on 64-512 Cori nodes,
// where slow and failed servers are a fact of life.  A FaultInjector is the
// in-process analogue: a seedable plan that drops, delays, duplicates or
// corrupts messages as they cross the MessageBus, and kills or stalls a
// server's request loop mid-run.  The query service must return exactly the
// fault-free answer under any plan (only slower), which the chaos tests
// assert.
//
// Determinism: all probabilistic draws come from one seeded xoshiro256**
// stream guarded by a mutex.  A fixed seed fixes the fault pattern for a
// fixed message order; thread interleaving may permute which message draws
// which fault, but the *rate* and the scripted server kills are exact.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace pdc::rpc {

/// Which way a message is travelling across the bus.
enum class Direction : std::uint8_t {
  kClientToServer = 0,
  kServerToClient = 1,
  kServerToServer = 2,  ///< exchange-operator shuffle traffic
};

/// What happens to a server's request loop when it reaches its scripted
/// fault point.
enum class ServerFate : std::uint8_t {
  kAlive = 0,   ///< keep serving
  kKilled,      ///< request loop exits; mailbox drains into the void
  kStalled,     ///< thread wedges (holds until shutdown) without replying
};

/// Declarative, seedable description of the faults to inject.
struct FaultPlan {
  std::uint64_t seed = 1;

  // Per-message probabilities, applied independently on every send.
  double drop_rate = 0.0;       ///< message silently lost
  double delay_rate = 0.0;      ///< delivery postponed by a random delay
  double duplicate_rate = 0.0;  ///< message delivered twice
  double corrupt_rate = 0.0;    ///< one payload byte flipped in transit

  /// Uniform delay range for delayed messages.
  std::chrono::milliseconds min_delay{1};
  std::chrono::milliseconds max_delay{20};

  /// Scripted whole-server failures (node crash / wedged daemon analogue).
  struct ServerFault {
    ServerId server = 0;
    /// The loop dies before handling its Nth request (0 = never comes up).
    std::uint64_t after_requests = 0;
    ServerFate fate = ServerFate::kKilled;
  };
  std::vector<ServerFault> server_faults;
};

/// Counters for observing what the injector actually did.
struct FaultCounters {
  std::uint64_t dropped = 0;
  std::uint64_t delayed = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t servers_failed = 0;
};

/// Per-send verdict returned to the MessageBus.
struct SendDecision {
  bool drop = false;
  bool duplicate = false;
  bool corrupt = false;
  std::chrono::milliseconds delay{0};
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Consulted by the bus on every send.  Thread-safe.
  SendDecision on_send(Direction direction, ServerId server,
                       std::span<const std::uint8_t> payload);

  /// Flip one deterministic byte of `payload` (no-op when empty).
  void corrupt(std::vector<std::uint8_t>& payload);

  /// Consulted by a ServerRuntime before handling each request; the
  /// injector tracks per-server request counts internally.  Thread-safe
  /// (each server calls from its own thread).
  ServerFate on_server_request(ServerId server);

  [[nodiscard]] FaultCounters counters() const;

 private:
  FaultPlan plan_;
  mutable std::mutex mu_;
  Rng rng_;
  FaultCounters counters_;
  /// Requests handled so far, per server id (grown on demand).
  std::vector<std::uint64_t> handled_;
  std::vector<bool> failed_;
};

}  // namespace pdc::rpc
