# Empty dependencies file for pdc_rpc.
# This may be replaced when dependencies are built.
