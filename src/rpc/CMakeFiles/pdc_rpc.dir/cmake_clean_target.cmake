file(REMOVE_RECURSE
  "libpdc_rpc.a"
)
