file(REMOVE_RECURSE
  "CMakeFiles/pdc_rpc.dir/fault.cc.o"
  "CMakeFiles/pdc_rpc.dir/fault.cc.o.d"
  "CMakeFiles/pdc_rpc.dir/message_bus.cc.o"
  "CMakeFiles/pdc_rpc.dir/message_bus.cc.o.d"
  "CMakeFiles/pdc_rpc.dir/server_runtime.cc.o"
  "CMakeFiles/pdc_rpc.dir/server_runtime.cc.o.d"
  "libpdc_rpc.a"
  "libpdc_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdc_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
