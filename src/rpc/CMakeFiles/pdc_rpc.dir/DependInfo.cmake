
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rpc/fault.cc" "src/rpc/CMakeFiles/pdc_rpc.dir/fault.cc.o" "gcc" "src/rpc/CMakeFiles/pdc_rpc.dir/fault.cc.o.d"
  "/root/repo/src/rpc/message_bus.cc" "src/rpc/CMakeFiles/pdc_rpc.dir/message_bus.cc.o" "gcc" "src/rpc/CMakeFiles/pdc_rpc.dir/message_bus.cc.o.d"
  "/root/repo/src/rpc/server_runtime.cc" "src/rpc/CMakeFiles/pdc_rpc.dir/server_runtime.cc.o" "gcc" "src/rpc/CMakeFiles/pdc_rpc.dir/server_runtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/common/CMakeFiles/pdc_common.dir/DependInfo.cmake"
  "/root/repo/src/obs/CMakeFiles/pdc_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
