// Server event loop and client-side broadcast/gather helpers.
//
// Each PDC server is a dedicated thread draining its mailbox; every request
// produces exactly one response message to the client.  The client's
// broadcast-gather runs on a background thread (paper §III-C: "the client
// has a background thread that aggregates the results received from all
// servers"), so the application thread may continue working and only block
// when it actually needs the result.
//
// Reliability: requests and responses travel inside Envelopes (request id,
// attempt, deadline, checksum).  The client's gather() enforces a per
// attempt deadline with bounded exponential backoff between retries,
// discards stale/duplicate/corrupt responses by request id, and reports
// the servers that never answered so the query layer can enter degraded
// mode.  Servers drop corrupt frames and requests whose deadline already
// passed (the client has stopped listening for them).
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "rpc/message_bus.h"

namespace pdc::rpc {

/// Runs one server's request loop on a dedicated thread.
class ServerRuntime {
 public:
  /// Handler: (request payload) -> response payload.  Invoked on the server
  /// thread, one request at a time.
  using Handler =
      std::function<std::vector<std::uint8_t>(std::span<const std::uint8_t>)>;

  ServerRuntime(MessageBus& bus, ServerId id, Handler handler);

  /// Closes the mailbox and joins the thread.
  ~ServerRuntime();

  ServerRuntime(const ServerRuntime&) = delete;
  ServerRuntime& operator=(const ServerRuntime&) = delete;

  [[nodiscard]] ServerId id() const noexcept { return id_; }

 private:
  void loop();

  MessageBus& bus_;
  ServerId id_;
  Handler handler_;
  std::thread thread_;
};

/// Client-side timeout/retry configuration.
struct RetryPolicy {
  /// How long one attempt waits for all outstanding responses.
  std::chrono::milliseconds attempt_timeout{250};
  /// Total attempts per request (first try + retries).
  std::uint32_t max_attempts = 4;
  /// Exponential backoff between attempts: base * 2^attempt, capped.
  std::chrono::milliseconds backoff_base{2};
  std::chrono::milliseconds backoff_cap{50};
};

/// Transport-level counters accumulated by one gather().
struct RpcStats {
  std::uint64_t retries = 0;     ///< requests re-sent after a timeout
  std::uint64_t timeouts = 0;    ///< attempt windows that expired
  std::uint64_t duplicates_discarded = 0;  ///< dup/stale responses dropped
  std::uint64_t corrupt_discarded = 0;     ///< frames failing checksum
};

/// Outcome of one gather: responses[i] answers requests[i] (nullopt after
/// retries were exhausted, or the bus shut down mid-collect).
struct GatherResult {
  std::vector<std::optional<Message>> responses;
  RpcStats stats;
  bool bus_closed = false;

  [[nodiscard]] bool complete() const {
    for (const auto& r : responses) {
      if (!r.has_value()) return false;
    }
    return true;
  }
};

/// Client endpoint: broadcast a request and gather one response per server.
///
/// Thread safety: all entry points may be called concurrently (in
/// particular while a broadcast_collect() future is outstanding).  There is
/// a single client mailbox, so concurrent gathers are serialized on an
/// internal mutex — without it, two poppers would each consume and discard
/// the other's responses as stale.  A gather never blocks past its own
/// retry budget, so waiting for the mutex is bounded too.
class Client {
 public:
  explicit Client(MessageBus& bus, RetryPolicy policy = {})
      : bus_(bus), policy_(policy) {}

  /// Send each (server, payload) request and gather the responses, with
  /// per-attempt deadlines and bounded-backoff retries.  Message payloads
  /// in the result are the bare inner payloads (envelopes stripped);
  /// sender is the responding server.  Never blocks past
  /// max_attempts * (attempt_timeout + backoff).
  GatherResult gather(
      const std::vector<std::pair<ServerId, std::vector<std::uint8_t>>>&
          requests);

  /// Broadcast `payload` and return a future that resolves once every
  /// server has responded or retries are exhausted.  Responses are ordered
  /// by server id; unresponsive servers are simply absent.
  std::future<std::vector<Message>> broadcast_collect(
      std::vector<std::uint8_t> payload);

  /// Convenience synchronous form.
  std::vector<Message> broadcast_wait(std::vector<std::uint8_t> payload) {
    return broadcast_collect(std::move(payload)).get();
  }

  /// Send distinct payloads to a subset of servers and gather the
  /// responses that arrived (ordered by server id).
  std::vector<Message> scatter_wait(
      std::vector<std::pair<ServerId, std::vector<std::uint8_t>>> requests);

  [[nodiscard]] const RetryPolicy& policy() const noexcept { return policy_; }

 private:
  MessageBus& bus_;
  RetryPolicy policy_;
  std::atomic<std::uint64_t> next_request_id_{1};
  /// Serializes gather() bodies: only one popper on the client mailbox.
  std::mutex gather_mu_;
};

}  // namespace pdc::rpc
