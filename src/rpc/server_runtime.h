// Server event loop and client-side broadcast/gather helpers.
//
// Each PDC server is a dedicated thread draining its mailbox; every request
// produces exactly one response message to the client.  The client's
// broadcast-gather runs on a background thread (paper §III-C: "the client
// has a background thread that aggregates the results received from all
// servers"), so the application thread may continue working and only block
// when it actually needs the result.
#pragma once

#include <functional>
#include <future>
#include <span>
#include <thread>
#include <vector>

#include "rpc/message_bus.h"

namespace pdc::rpc {

/// Runs one server's request loop on a dedicated thread.
class ServerRuntime {
 public:
  /// Handler: (request payload) -> response payload.  Invoked on the server
  /// thread, one request at a time.
  using Handler =
      std::function<std::vector<std::uint8_t>(std::span<const std::uint8_t>)>;

  ServerRuntime(MessageBus& bus, ServerId id, Handler handler);

  /// Closes the mailbox and joins the thread.
  ~ServerRuntime();

  ServerRuntime(const ServerRuntime&) = delete;
  ServerRuntime& operator=(const ServerRuntime&) = delete;

  [[nodiscard]] ServerId id() const noexcept { return id_; }

 private:
  void loop();

  MessageBus& bus_;
  ServerId id_;
  Handler handler_;
  std::thread thread_;
};

/// Client endpoint: broadcast a request and gather one response per server.
class Client {
 public:
  explicit Client(MessageBus& bus) : bus_(bus) {}

  /// Broadcast `payload` and return a future that resolves once every
  /// server has responded.  Responses are ordered by server id.
  std::future<std::vector<Message>> broadcast_collect(
      std::vector<std::uint8_t> payload);

  /// Convenience synchronous form.
  std::vector<Message> broadcast_wait(std::vector<std::uint8_t> payload) {
    return broadcast_collect(std::move(payload)).get();
  }

  /// Send distinct payloads to a subset of servers and gather exactly one
  /// response per request (ordered by server id).
  std::vector<Message> scatter_wait(
      std::vector<std::pair<ServerId, std::vector<std::uint8_t>>> requests);

 private:
  MessageBus& bus_;
};

}  // namespace pdc::rpc
