// Server event loop and client-side broadcast/gather helpers.
//
// Each PDC server is a dedicated thread draining its mailbox.  With a
// thread pool attached (ServerRuntimeOptions::pool) the mailbox thread
// becomes a dispatcher: it admits up to `max_inflight` requests at a time
// and hands each to the pool, so one server overlaps the CPU phases of
// several requests — the intra-server parallelism of paper §III-C ("each
// PDC server [uses] multiple threads to process the query in parallel").
// Without a pool every request is handled inline, one at a time, in
// arrival order.
//
// The client's broadcast-gather runs on a background thread (paper §III-C:
// "the client has a background thread that aggregates the results received
// from all servers"), so the application thread may continue working and
// only block when it actually needs the result.
//
// Reliability: requests and responses travel inside Envelopes (request id,
// attempt, deadline, checksum).  The client's gather() enforces a per
// attempt deadline with bounded exponential backoff between retries,
// discards stale/duplicate/corrupt responses by request id, and reports
// the servers that never answered so the query layer can enter degraded
// mode.  Servers drop corrupt frames and requests whose deadline already
// passed (the client has stopped listening for them).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/exec_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rpc/admission.h"
#include "rpc/message_bus.h"

namespace pdc::rpc {

/// Execution options for one server runtime.
struct ServerRuntimeOptions {
  /// Pool the handler runs on (shared across servers; must outlive the
  /// runtime).  Null = handle requests inline on the mailbox thread.
  exec::ThreadPool* pool = nullptr;
  /// With a pool: how many requests one server may process concurrently.
  /// Admission is bounded so a burst cannot swamp the shared pool.
  std::uint32_t max_inflight = 4;
  /// Requests allowed to *wait* for a processing slot, beyond the
  /// max_inflight already running.  When the wait queue is full the server
  /// sheds per `shed_policy`: the victim gets an immediate kFlagShed reply
  /// carrying a retry-after hint instead of queueing unboundedly.
  /// 0 = unbounded (legacy behaviour: never sheds).
  std::uint32_t queue_limit = 0;
  /// Which request to shed when the wait queue is full.
  ShedPolicy shed_policy = ShedPolicy::kRejectNew;
  /// Base retry-after hint carried in shed replies; the actual hint scales
  /// up to 2x with queue fullness.
  std::uint64_t shed_retry_after_us = 2000;
  /// Weighted-fair scheduler shares, indexed by Envelope::tenant (missing
  /// or non-positive = weight 1).  With the default empty vector every
  /// tenant weighs 1 and the wait queue degenerates to FIFO.
  std::vector<double> tenant_weights;
  /// Requests matching this predicate (on the unwrapped request payload)
  /// are handled inline on the mailbox thread, bypassing pool dispatch and
  /// admission.  Needed for exchange-coordinating requests (kJoinEval):
  /// their handlers block on tuples from *other* servers' handlers, so
  /// running them through a shared pool of fewer workers than servers
  /// would deadlock.  Null = dispatch everything normally.
  std::function<bool(std::span<const std::uint8_t>)> inline_only;
  /// Deployment metrics (null = unmetered).  The runtime registers
  /// "rpc.server<id>.requests", ".shed", ".expired", a ".handle_seconds"
  /// wall latency histogram, and queue/mailbox depth gauges.  Must outlive
  /// the runtime.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Runs one server's request loop on a dedicated thread.
class ServerRuntime {
 public:
  /// Handler: (request payload) -> response payload.  Without a pool it is
  /// invoked on the server thread, one request at a time.  With a pool it
  /// runs on pool workers with up to `max_inflight` invocations in flight
  /// concurrently — the handler must be thread-safe.
  using Handler =
      std::function<std::vector<std::uint8_t>(std::span<const std::uint8_t>)>;
  /// Trace-aware handler: for traced requests (Envelope::trace_id != 0)
  /// the context is enabled and rooted at this runtime's "server.handle"
  /// span; the handler's spans travel back in the response frame.
  using TracedHandler = std::function<std::vector<std::uint8_t>(
      std::span<const std::uint8_t>, const obs::TraceContext&)>;

  ServerRuntime(MessageBus& bus, ServerId id, TracedHandler handler,
                ServerRuntimeOptions options = {});
  /// Convenience: wrap a trace-unaware handler (tests, simple servers).
  ServerRuntime(MessageBus& bus, ServerId id, Handler handler,
                ServerRuntimeOptions options = {})
      : ServerRuntime(bus, id,
                      TracedHandler([handler = std::move(handler)](
                                        std::span<const std::uint8_t> payload,
                                        const obs::TraceContext&) {
                        return handler(payload);
                      }),
                      options) {}

  /// Closes the mailbox, joins the thread, and waits for in-flight pooled
  /// requests to finish (their replies may still be delivered).
  ~ServerRuntime();

  ServerRuntime(const ServerRuntime&) = delete;
  ServerRuntime& operator=(const ServerRuntime&) = delete;

  [[nodiscard]] ServerId id() const noexcept { return id_; }

  /// Requests shed by this runtime's admission control so far.
  [[nodiscard]] std::uint64_t sheds() const;
  /// High-water mark of the admission wait queue.
  [[nodiscard]] std::size_t queue_peak() const;

 private:
  /// One admitted-but-not-yet-running request parked in the wait queue.
  /// The frame owns the bytes; it is re-unwrapped at dispatch (cheap:
  /// header check + checksum).
  struct Pending {
    Envelope envelope;
    std::vector<std::uint8_t> frame;
    std::uint64_t dequeued_us = 0;
  };

  void loop();
  /// Admission decision for one arrived request: start it, queue it, or
  /// shed (per policy).  Inline runtimes only queue/shed here; serving
  /// happens in loop().
  void admit(Pending pending);
  /// Submit `pending` to the pool; its completion dispatches the next
  /// queued request, keeping exactly `inflight_` tasks running.
  void dispatch_to_pool(Pending pending);
  /// Run one pooled request, then chain into the next queued one (or
  /// release the inflight slot).
  void run_pooled(Pending pending);
  /// Reply kFlagShed with a retry-after hint scaled by queue fullness.
  void send_shed(const Envelope& envelope);
  [[nodiscard]] bool expired(const Envelope& envelope) const noexcept {
    return envelope.deadline_us != 0 && steady_now_us() > envelope.deadline_us;
  }
  /// Run the handler for one unwrapped request and send the reply,
  /// opening server-side spans when the envelope carries a trace id.
  /// `dequeued_us` timestamps when the request left the mailbox (the
  /// "server.queue" span covers dequeue -> handler start, i.e. admission
  /// wait plus pool queueing).
  void handle_request(const Envelope& envelope,
                      std::span<const std::uint8_t> request,
                      std::uint64_t dequeued_us);

  MessageBus& bus_;
  ServerId id_;
  TracedHandler handler_;
  ServerRuntimeOptions options_;
  obs::Counter* requests_metric_ = nullptr;
  obs::Counter* shed_metric_ = nullptr;
  obs::Counter* expired_metric_ = nullptr;
  obs::LatencyHistogram* handle_seconds_metric_ = nullptr;
  /// Guards inflight_, queue_, and stopping_ (admission state).
  mutable std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;
  std::uint32_t inflight_ = 0;
  WeightedFairQueue<Pending> queue_;
  /// Set when the mailbox loop exits (shutdown, kill or stall fate):
  /// queued requests are dropped and completions stop chaining.
  bool stopping_ = false;
  std::thread thread_;
};

/// Client-side timeout/retry configuration.
struct RetryPolicy {
  /// How long one attempt waits for all outstanding responses.
  std::chrono::milliseconds attempt_timeout{250};
  /// Total attempts per request (first try + retries).
  std::uint32_t max_attempts = 4;
  /// Exponential backoff between attempts: base * 2^attempt, capped.
  std::chrono::milliseconds backoff_base{2};
  std::chrono::milliseconds backoff_cap{50};
  /// Multiplicative backoff jitter in [0, jitter): each backoff sleep is
  /// scaled by (1 + jitter * u) with u drawn deterministically from the
  /// gather's first request id, so retry storms decorrelate across
  /// clients while a given run stays reproducible.  0 = no jitter.
  double backoff_jitter = 0.0;
};

/// Transport-level counters accumulated by one gather().
struct RpcStats {
  std::uint64_t retries = 0;   ///< requests re-sent after a timeout
  std::uint64_t timeouts = 0;  ///< attempt windows that expired
  /// kFlagShed replies received: the server was alive but shed the
  /// request under overload; the retry honoured its retry-after hint.
  std::uint64_t sheds = 0;
  /// Extra responses to this gather's own request ids (an earlier attempt
  /// answered already), dropped.  Corrupt frames and responses to already
  /// finished gathers carry no attributable id — see
  /// Client::corrupt_discarded() / Client::stray_discarded().
  std::uint64_t duplicates_discarded = 0;
};

/// Outcome of one gather: responses[i] answers requests[i] (nullopt after
/// retries were exhausted, or the bus shut down mid-collect).
struct GatherResult {
  std::vector<std::optional<Message>> responses;
  /// shed[i]: requests[i] went unanswered but the server explicitly shed
  /// it at least once — the server is overloaded, NOT dead.  Callers must
  /// surface kOverloaded instead of entering degraded mode.
  std::vector<bool> shed;
  RpcStats stats;
  bool bus_closed = false;

  [[nodiscard]] bool complete() const {
    for (const auto& r : responses) {
      if (!r.has_value()) return false;
    }
    return true;
  }
};

/// Client endpoint: broadcast a request and gather one response per server.
///
/// A dedicated receiver thread owns the single client mailbox and
/// demultiplexes responses to the issuing gather by request id, so any
/// number of gathers (application threads plus broadcast_collect
/// background threads) may run concurrently without consuming each
/// other's responses.  Responses whose request id matches no outstanding
/// gather are discarded as duplicate/stale.  One Client per bus: the
/// receiver is the mailbox's only consumer.
class Client {
 public:
  explicit Client(MessageBus& bus, RetryPolicy policy = {});

  /// Closes the client mailbox and joins the receiver thread.  Safe to
  /// destroy the Client before or after MessageBus::shutdown().
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Send each (server, payload) request and gather the responses, with
  /// per-attempt deadlines and bounded-backoff retries.  Message payloads
  /// in the result are the bare inner payloads (envelopes stripped);
  /// sender is the responding server.  Never blocks past
  /// max_attempts * (attempt_timeout + backoff).  Thread-safe; concurrent
  /// gathers proceed independently.
  GatherResult gather(
      const std::vector<std::pair<ServerId, std::vector<std::uint8_t>>>&
          requests) {
    return gather(requests, obs::TraceContext{});
  }

  /// Traced gather: opens an "rpc.gather" span with one "rpc.request" child
  /// per request (the envelope's parent span, stable across retries) and an
  /// "rpc.attempt" child per retry round; span blobs returned by servers
  /// are adopted into the issuing trace.  A disabled context makes this
  /// identical to the untraced overload.
  /// `tenant` stamps every request envelope with the issuing tenant's
  /// fairness identity for the server-side weighted-fair scheduler.
  GatherResult gather(
      const std::vector<std::pair<ServerId, std::vector<std::uint8_t>>>&
          requests,
      const obs::TraceContext& trace, std::uint32_t tenant = 0);

  /// Broadcast `payload` and return a future that resolves once every
  /// server has responded or retries are exhausted.  Responses are ordered
  /// by server id; unresponsive servers are simply absent.
  std::future<std::vector<Message>> broadcast_collect(
      std::vector<std::uint8_t> payload);

  /// Convenience synchronous form.
  std::vector<Message> broadcast_wait(std::vector<std::uint8_t> payload) {
    return broadcast_collect(std::move(payload)).get();
  }

  /// Send distinct payloads to a subset of servers and gather the
  /// responses that arrived (ordered by server id).
  std::vector<Message> scatter_wait(
      std::vector<std::pair<ServerId, std::vector<std::uint8_t>>> requests);

  [[nodiscard]] const RetryPolicy& policy() const noexcept { return policy_; }

  /// Client-wide count of frames dropped for a failed checksum.  A corrupt
  /// frame has no readable request id, so it cannot be attributed to any
  /// particular gather (monotone, process lifetime).
  [[nodiscard]] std::uint64_t corrupt_discarded() const noexcept {
    return corrupt_responses_.load(std::memory_order_relaxed);
  }
  /// Client-wide count of responses whose request id matched no live
  /// gather (the issuing gather already returned and withdrew its ids).
  [[nodiscard]] std::uint64_t stray_discarded() const noexcept {
    return stray_responses_.load(std::memory_order_relaxed);
  }

 private:
  /// One in-progress gather waiting for its responses.
  struct Waiter {
    std::vector<std::optional<Message>>* responses = nullptr;
    /// Per-request shed marks (points into the GatherResult).
    std::vector<bool>* shed = nullptr;
    std::condition_variable cv;
    std::size_t remaining = 0;
    /// Dup/stale responses to this gather's ids (guarded by mu_).
    std::uint64_t duplicates = 0;
    /// Total kFlagShed replies received across all attempts.
    std::uint64_t sheds = 0;
    /// Shed replies since the current attempt started; when it reaches
    /// `remaining` every outstanding request was shed and the gather wakes
    /// early to retry after the hint.
    std::size_t sheds_this_attempt = 0;
    /// Largest retry-after hint seen this attempt (microseconds).
    std::uint64_t retry_after_us = 0;
    /// Destination for span blobs carried by this gather's responses
    /// (null = untraced).  The receiver adopts a blob exactly once per
    /// request id (duplicates are dropped before their spans).
    obs::Tracer* tracer = nullptr;
  };
  /// pending_ value: where a response with that request id belongs.
  struct Slot {
    Waiter* waiter = nullptr;
    std::size_t index = 0;
  };

  void receive_loop();

  MessageBus& bus_;
  RetryPolicy policy_;
  std::atomic<std::uint64_t> next_request_id_{1};

  /// Guards pending_, closed_, and every Waiter (receiver fills slots and
  /// decrements `remaining` under this lock; gathers wait on their cv
  /// with it).
  std::mutex mu_;
  std::unordered_map<std::uint64_t, Slot> pending_;
  bool closed_ = false;

  /// Client-wide discard counters for frames no gather can own: corrupt
  /// frames (unreadable id) and responses to already withdrawn ids.
  /// Duplicates addressed to a live gather are attributed to its Waiter
  /// instead, so concurrent gathers never see each other's discards.
  std::atomic<std::uint64_t> corrupt_responses_{0};
  std::atomic<std::uint64_t> stray_responses_{0};

  std::thread receiver_;
};

}  // namespace pdc::rpc
