#include "rpc/exchange.h"

#include <algorithm>
#include <utility>

namespace pdc::rpc {

namespace {

std::uint64_t ack_key(std::uint32_t dest, std::uint32_t seq) noexcept {
  return (static_cast<std::uint64_t>(dest) << 32) | seq;
}

/// Keep state for at most this many (join, epoch) buckets; abandoned
/// epochs (failed rounds whose late frames still arrive) are pruned
/// oldest-first so a long-lived server cannot accumulate them.
constexpr std::size_t kMaxEpochStates = 64;

}  // namespace

// ------------------------------------------------------------------ frame

std::vector<std::uint8_t> ExchangeFrame::serialize() const {
  GatherWriter w;
  w.put(kExchangeFrameTag);
  w.put(static_cast<std::uint8_t>(kind));
  w.put(join_id);
  w.put(epoch);
  w.put(from);
  w.put(seq);
  switch (kind) {
    case ExchangeFrameKind::kBatch:
      w.put(side);
      // Borrowed span: the bulk tuple bytes are copied exactly once, at
      // wire assembly (PR 7 zero-copy discipline).
      w.put_vector_ref(tuples);
      break;
    case ExchangeFrameKind::kEos:
      w.put(batches_total);
      break;
    case ExchangeFrameKind::kAck:
      break;
  }
  return w.take();
}

Result<ExchangeFrame> ExchangeFrame::Deserialize(SerialReader& r) {
  std::uint8_t tag = 0;
  PDC_RETURN_IF_ERROR(r.get(tag));
  if (tag != kExchangeFrameTag) {
    return Status::Corruption("not an exchange frame");
  }
  ExchangeFrame f;
  std::uint8_t kind = 0;
  PDC_RETURN_IF_ERROR(r.get(kind));
  if (kind < static_cast<std::uint8_t>(ExchangeFrameKind::kBatch) ||
      kind > static_cast<std::uint8_t>(ExchangeFrameKind::kAck)) {
    return Status::Corruption("bad exchange frame kind");
  }
  f.kind = static_cast<ExchangeFrameKind>(kind);
  PDC_RETURN_IF_ERROR(r.get(f.join_id));
  PDC_RETURN_IF_ERROR(r.get(f.epoch));
  PDC_RETURN_IF_ERROR(r.get(f.from));
  PDC_RETURN_IF_ERROR(r.get(f.seq));
  switch (f.kind) {
    case ExchangeFrameKind::kBatch: {
      PDC_RETURN_IF_ERROR(r.get(f.side));
      if (f.side != kSideA && f.side != kSideB) {
        return Status::Corruption("bad exchange batch side");
      }
      PDC_RETURN_IF_ERROR(r.get_vector(f.tuple_storage));
      f.tuples = f.tuple_storage;
      break;
    }
    case ExchangeFrameKind::kEos:
      PDC_RETURN_IF_ERROR(r.get(f.batches_total));
      if (f.seq != kEosSeq) {
        return Status::Corruption("EOS frame with a batch seq");
      }
      break;
    case ExchangeFrameKind::kAck:
      break;
  }
  return f;
}

// ------------------------------------------------------------------- port

ExchangePort::ExchangePort(MessageBus& bus, ServerId id, Options options)
    : bus_(bus), id_(id), options_(options) {
  receiver_ = std::thread([this] { receive_loop(); });
}

ExchangePort::~ExchangePort() {
  close();
  if (receiver_.joinable()) receiver_.join();
}

void ExchangePort::close() {
  {
    std::lock_guard lock(mu_);
    closed_ = true;
  }
  bus_.exchange_mailbox(id_).close();
  cv_.notify_all();
}

void ExchangePort::receive_loop() {
  Mailbox& inbox = bus_.exchange_mailbox(id_);
  while (auto message = inbox.pop()) {
    Envelope envelope;
    std::span<const std::uint8_t> payload;
    if (!envelope_unwrap(message->payload, envelope, payload)) {
      continue;  // checksum failure: corrupted in transit == lost
    }
    SerialReader reader(payload);
    auto frame = ExchangeFrame::Deserialize(reader);
    if (!frame.ok()) continue;
    if (frame->kind == ExchangeFrameKind::kAck) {
      {
        std::lock_guard lock(mu_);
        acks_[{frame->join_id, frame->epoch}].insert(
            ack_key(frame->from, frame->seq));
      }
      cv_.notify_all();
      continue;
    }
    // Batch or EOS: record it exactly once, ack it every time (the ack for
    // an earlier delivery may itself have been dropped).
    {
      std::lock_guard lock(mu_);
      if (!closed_) {
        EpochState& state = states_[{frame->join_id, frame->epoch}];
        if (state.stamp == 0) state.stamp = ++stamp_;
        ProducerStream& stream = state.producers[frame->from];
        if (frame->kind == ExchangeFrameKind::kEos) {
          stream.total = frame->batches_total;
        } else if (stream.seqs.insert(frame->seq).second) {
          auto& out = frame->side == kSideA ? state.a : state.b;
          out.insert(out.end(), frame->tuple_storage.begin(),
                     frame->tuple_storage.end());
        }
        if (states_.size() > kMaxEpochStates) {
          auto oldest = states_.begin();
          for (auto it = states_.begin(); it != states_.end(); ++it) {
            if (it->second.stamp < oldest->second.stamp) oldest = it;
          }
          states_.erase(oldest);
        }
      }
    }
    ExchangeFrame ack;
    ack.kind = ExchangeFrameKind::kAck;
    ack.join_id = frame->join_id;
    ack.epoch = frame->epoch;
    ack.from = id_;
    ack.seq = frame->seq;
    std::uint64_t frame_id;
    {
      std::lock_guard lock(mu_);
      frame_id = next_frame_id_++;
    }
    bus_.send_to_exchange(
        id_, frame->from,
        envelope_wrap(Envelope{.request_id = frame_id}, ack.serialize()));
    cv_.notify_all();
  }
  // Mailbox closed: fail every waiter.
  {
    std::lock_guard lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool ExchangePort::ship(std::uint64_t join_id, std::uint32_t epoch,
                        const std::vector<OutboundFrame>& frames,
                        ShuffleStats& stats) {
  if (frames.empty()) return true;
  const EpochKey key{join_id, epoch};
  const auto deadline = std::chrono::steady_clock::now() + options_.deadline;
  std::uint32_t attempt = 0;
  while (true) {
    // (Re)transmit every frame not yet acked.
    std::vector<const OutboundFrame*> unacked;
    {
      std::lock_guard lock(mu_);
      if (closed_) return false;
      const auto it = acks_.find(key);
      for (const OutboundFrame& f : frames) {
        if (it == acks_.end() ||
            it->second.count(ack_key(f.dest, f.seq)) == 0) {
          unacked.push_back(&f);
        }
      }
    }
    if (unacked.empty()) {
      std::lock_guard lock(mu_);
      acks_.erase(key);
      return true;
    }
    for (const OutboundFrame* f : unacked) {
      std::uint64_t frame_id;
      {
        std::lock_guard lock(mu_);
        frame_id = next_frame_id_++;
      }
      bus_.send_to_exchange(
          id_, f->dest,
          envelope_wrap(Envelope{.request_id = frame_id, .attempt = attempt},
                        f->bytes));
      stats.bytes_sent += f->bytes.size();
      ++stats.msgs_sent;
      if (attempt > 0) ++stats.retransmits;
    }
    const auto wake = std::min(
        deadline,
        std::chrono::steady_clock::now() + options_.retransmit_interval);
    {
      std::unique_lock lock(mu_);
      cv_.wait_until(lock, wake, [&] {
        if (closed_) return true;
        const auto it = acks_.find(key);
        if (it == acks_.end()) return false;
        return std::all_of(frames.begin(), frames.end(),
                           [&](const OutboundFrame& f) {
                             return it->second.count(
                                        ack_key(f.dest, f.seq)) != 0;
                           });
      });
      if (closed_) return false;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      bool done;
      {
        std::lock_guard lock(mu_);
        const auto it = acks_.find(key);
        done = it != acks_.end() &&
               std::all_of(frames.begin(), frames.end(),
                           [&](const OutboundFrame& f) {
                             return it->second.count(
                                        ack_key(f.dest, f.seq)) != 0;
                           });
        acks_.erase(key);
      }
      return done;
    }
    ++attempt;
  }
}

bool ExchangePort::stream_complete(
    const EpochState& state, const std::vector<ServerId>& producers) const {
  for (const ServerId p : producers) {
    if (p == id_) continue;
    const auto it = state.producers.find(p);
    if (it == state.producers.end() || !it->second.complete()) return false;
  }
  return true;
}

std::optional<CollectedTuples> ExchangePort::collect(
    std::uint64_t join_id, std::uint32_t epoch,
    const std::vector<ServerId>& producers) {
  const EpochKey key{join_id, epoch};
  const auto deadline = std::chrono::steady_clock::now() + options_.deadline;
  std::unique_lock lock(mu_);
  const bool complete = cv_.wait_until(lock, deadline, [&] {
    if (closed_) return true;
    const auto it = states_.find(key);
    // An epoch with no remote producers completes vacuously on an absent
    // state bucket.
    return stream_complete(it != states_.end() ? it->second : EpochState{},
                           producers);
  });
  if (closed_) return std::nullopt;
  const auto it = states_.find(key);
  if (!complete &&
      !stream_complete(it != states_.end() ? it->second : EpochState{},
                       producers)) {
    return std::nullopt;
  }
  CollectedTuples out;
  if (it != states_.end()) {
    out.a = std::move(it->second.a);
    out.b = std::move(it->second.b);
    states_.erase(it);
  }
  return out;
}

void ExchangePort::forget(std::uint64_t join_id) {
  std::lock_guard lock(mu_);
  for (auto it = states_.begin(); it != states_.end();) {
    it = it->first.first == join_id ? states_.erase(it) : std::next(it);
  }
  for (auto it = acks_.begin(); it != acks_.end();) {
    it = it->first.first == join_id ? acks_.erase(it) : std::next(it);
  }
}

}  // namespace pdc::rpc
