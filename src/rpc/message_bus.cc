#include "rpc/message_bus.h"

namespace pdc::rpc {

bool Mailbox::push(Message message) {
  {
    std::lock_guard lock(mu_);
    if (closed_) return false;
    queue_.push_back(std::move(message));
  }
  cv_.notify_one();
  return true;
}

std::optional<Message> Mailbox::pop() {
  std::unique_lock lock(mu_);
  cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return std::nullopt;  // closed and drained
  Message m = std::move(queue_.front());
  queue_.pop_front();
  return m;
}

void Mailbox::close() {
  {
    std::lock_guard lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::size_t Mailbox::pending() const {
  std::lock_guard lock(mu_);
  return queue_.size();
}

bool MessageBus::send_to_server(ServerId server,
                                std::vector<std::uint8_t> payload) {
  account(payload.size());
  return servers_[server].push({kClientSender, std::move(payload)});
}

void MessageBus::broadcast(std::span<const std::uint8_t> payload) {
  for (ServerId s = 0; s < num_servers(); ++s) {
    send_to_server(s, std::vector<std::uint8_t>(payload.begin(), payload.end()));
  }
}

bool MessageBus::send_to_client(ServerId server,
                                std::vector<std::uint8_t> payload) {
  account(payload.size());
  return client_.push({server, std::move(payload)});
}

void MessageBus::shutdown() {
  for (Mailbox& m : servers_) m.close();
  client_.close();
}

std::uint64_t MessageBus::bytes_transferred() const noexcept {
  std::lock_guard lock(stats_mu_);
  return bytes_;
}

std::uint64_t MessageBus::messages_sent() const noexcept {
  std::lock_guard lock(stats_mu_);
  return messages_;
}

void MessageBus::account(std::size_t bytes) {
  std::lock_guard lock(stats_mu_);
  bytes_ += bytes;
  ++messages_;
}

}  // namespace pdc::rpc
