#include "rpc/message_bus.h"

#include <algorithm>

#include "common/serial.h"

namespace pdc::rpc {

namespace {
/// Frame magic: detects envelope-less or badly torn frames cheaply.
constexpr std::uint32_t kEnvelopeMagic = 0x45434450u;  // "PDCE"
}  // namespace

std::uint64_t steady_now_us() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t payload_checksum(
    std::span<const std::uint8_t> payload) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const std::uint8_t b : payload) {
    h ^= b;
    h *= 0x100000001B3ull;
  }
  return h;
}

std::vector<std::uint8_t> envelope_wrap(const Envelope& header,
                                        std::span<const std::uint8_t> payload,
                                        std::span<const std::uint8_t> trace_blob) {
  // Frame: magic, request_id, attempt, tenant, flags, deadline_us,
  // trace_id, parent_span, checksum, payload_len, payload bytes, trace
  // baggage (remainder).  The checksum covers everything after itself, so
  // a corrupted trace blob drops the whole frame — retries then recover
  // trace and payload alike.
  SerialWriter w(4 * sizeof(std::uint32_t) + 7 * sizeof(std::uint64_t) +
                 payload.size() + trace_blob.size());
  w.put(kEnvelopeMagic);
  w.put(header.request_id);
  w.put(header.attempt);
  w.put(header.tenant);
  w.put(header.flags);
  w.put(header.deadline_us);
  w.put(header.trace_id);
  w.put(header.parent_span);
  const std::size_t checksum_pos = w.size();
  w.put<std::uint64_t>(0);  // checksum backpatched below
  w.put<std::uint64_t>(payload.size());
  w.put_raw(payload);
  w.put_raw(trace_blob);
  std::vector<std::uint8_t> frame = w.take();
  const std::uint64_t checksum = payload_checksum(
      std::span<const std::uint8_t>(frame).subspan(checksum_pos +
                                                   sizeof(std::uint64_t)));
  std::memcpy(frame.data() + checksum_pos, &checksum, sizeof(checksum));
  return frame;
}

bool envelope_unwrap(std::span<const std::uint8_t> frame, Envelope& header,
                     std::span<const std::uint8_t>& payload,
                     std::span<const std::uint8_t>& trace_blob) {
  SerialReader r(frame);
  std::uint32_t magic = 0;
  Envelope parsed;
  std::uint64_t checksum = 0;
  std::uint64_t payload_len = 0;
  if (!r.get(magic).ok() || magic != kEnvelopeMagic) return false;
  if (!r.get(parsed.request_id).ok() || !r.get(parsed.attempt).ok() ||
      !r.get(parsed.tenant).ok() || !r.get(parsed.flags).ok() ||
      !r.get(parsed.deadline_us).ok() || !r.get(parsed.trace_id).ok() ||
      !r.get(parsed.parent_span).ok() || !r.get(checksum).ok()) {
    return false;
  }
  const std::span<const std::uint8_t> body =
      frame.subspan(frame.size() - r.remaining());
  if (payload_checksum(body) != checksum) return false;
  if (!r.get(payload_len).ok() || payload_len > r.remaining()) return false;
  header = parsed;
  payload = frame.subspan(frame.size() - r.remaining(),
                          static_cast<std::size_t>(payload_len));
  trace_blob = frame.subspan(frame.size() - r.remaining() +
                             static_cast<std::size_t>(payload_len));
  return true;
}

bool envelope_unwrap(std::span<const std::uint8_t> frame, Envelope& header,
                     std::span<const std::uint8_t>& payload) {
  std::span<const std::uint8_t> trace_blob;
  return envelope_unwrap(frame, header, payload, trace_blob);
}

// ----------------------------------------------------------------- mailbox

PushOutcome Mailbox::offer(Message message) {
  {
    std::lock_guard lock(mu_);
    if (closed_) return PushOutcome::kClosed;
    if (capacity_ != 0 && queue_.size() >= capacity_) {
      rejected_full_.fetch_add(1, std::memory_order_relaxed);
      return PushOutcome::kRejectedFull;
    }
    queue_.push_back(std::move(message));
    peak_ = std::max(peak_, queue_.size());
  }
  cv_.notify_one();
  return PushOutcome::kAccepted;
}

void Mailbox::set_capacity(std::size_t capacity) {
  std::lock_guard lock(mu_);
  capacity_ = capacity;
}

std::size_t Mailbox::capacity() const {
  std::lock_guard lock(mu_);
  return capacity_;
}

std::size_t Mailbox::peak() const {
  std::lock_guard lock(mu_);
  return peak_;
}

std::optional<Message> Mailbox::pop() {
  std::unique_lock lock(mu_);
  cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return std::nullopt;  // closed and drained
  Message m = std::move(queue_.front());
  queue_.pop_front();
  return m;
}

std::optional<Message> Mailbox::try_pop() {
  std::lock_guard lock(mu_);
  if (queue_.empty()) return std::nullopt;
  Message m = std::move(queue_.front());
  queue_.pop_front();
  return m;
}

std::optional<Message> Mailbox::pop_until(
    std::chrono::steady_clock::time_point deadline) {
  std::unique_lock lock(mu_);
  if (!cv_.wait_until(lock, deadline,
                      [this] { return closed_ || !queue_.empty(); })) {
    return std::nullopt;  // timed out
  }
  if (queue_.empty()) return std::nullopt;  // closed and drained
  Message m = std::move(queue_.front());
  queue_.pop_front();
  return m;
}

void Mailbox::close() {
  {
    std::lock_guard lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

void Mailbox::wait_closed() {
  std::unique_lock lock(mu_);
  cv_.wait(lock, [this] { return closed_; });
}

bool Mailbox::closed() const {
  std::lock_guard lock(mu_);
  return closed_;
}

std::size_t Mailbox::pending() const {
  std::lock_guard lock(mu_);
  return queue_.size();
}

// ---------------------------------------------------------------------- bus

MessageBus::~MessageBus() {
  shutdown();
  if (delay_thread_.joinable()) delay_thread_.join();
}

bool MessageBus::push_and_account(Mailbox& box, Message message) {
  const std::size_t size = message.payload.size();
  if (!box.push(std::move(message))) return false;
  bytes_.fetch_add(size, std::memory_order_relaxed);
  messages_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool MessageBus::deliver(Mailbox& box, Direction direction, ServerId server,
                         Message message) {
  if (injector_ == nullptr) {
    return push_and_account(box, std::move(message));
  }
  const SendDecision decision =
      injector_->on_send(direction, server, message.payload);
  if (decision.drop) return true;  // lost in transit: sender can't tell
  if (decision.corrupt) injector_->corrupt(message.payload);
  Message copy;
  if (decision.duplicate) copy = message;
  bool accepted;
  if (decision.delay.count() > 0) {
    deliver_later(box, std::move(message),
                  std::chrono::steady_clock::now() + decision.delay);
    accepted = true;
  } else {
    accepted = push_and_account(box, std::move(message));
  }
  if (decision.duplicate) {
    // The duplicate arrives a little later, as real networks duplicate.
    deliver_later(box, std::move(copy),
                  std::chrono::steady_clock::now() +
                      std::max(decision.delay,
                               std::chrono::milliseconds(1)));
  }
  return accepted;
}

void MessageBus::deliver_later(Mailbox& box, Message message,
                               std::chrono::steady_clock::time_point when) {
  {
    std::lock_guard lock(delay_mu_);
    if (delay_stop_) return;
    delayed_.push_back({when, &box, std::move(message)});
    if (!delay_thread_.joinable()) {
      delay_thread_ = std::thread([this] { delay_loop(); });
    }
  }
  delay_cv_.notify_one();
}

void MessageBus::delay_loop() {
  std::unique_lock lock(delay_mu_);
  while (!delay_stop_) {
    if (delayed_.empty()) {
      delay_cv_.wait(lock,
                     [this] { return delay_stop_ || !delayed_.empty(); });
      continue;
    }
    auto next = std::min_element(delayed_.begin(), delayed_.end(),
                                 [](const Delayed& a, const Delayed& b) {
                                   return a.when < b.when;
                                 });
    const auto when = next->when;
    if (std::chrono::steady_clock::now() < when) {
      delay_cv_.wait_until(lock, when);
      continue;  // re-scan: stop flag or an earlier message may have arrived
    }
    Delayed item = std::move(*next);
    delayed_.erase(next);
    lock.unlock();
    push_and_account(*item.box, std::move(item.message));
    lock.lock();
  }
  delayed_.clear();
}

bool MessageBus::send_to_server(ServerId server,
                                std::vector<std::uint8_t> payload) {
  return deliver(servers_[server], Direction::kClientToServer, server,
                 {kClientSender, std::move(payload)});
}

void MessageBus::broadcast(std::span<const std::uint8_t> payload) {
  for (ServerId s = 0; s < num_servers(); ++s) {
    send_to_server(s, std::vector<std::uint8_t>(payload.begin(), payload.end()));
  }
}

bool MessageBus::send_to_client(ServerId server,
                                std::vector<std::uint8_t> payload) {
  return deliver(client_, Direction::kServerToClient, server,
                 {server, std::move(payload)});
}

bool MessageBus::send_to_exchange(ServerId from, ServerId to,
                                  std::vector<std::uint8_t> payload) {
  return deliver(exchange_[to], Direction::kServerToServer, to,
                 {from, std::move(payload)});
}

void MessageBus::shutdown() {
  {
    std::lock_guard lock(delay_mu_);
    delay_stop_ = true;
  }
  delay_cv_.notify_all();
  for (Mailbox& m : servers_) m.close();
  for (Mailbox& m : exchange_) m.close();
  client_.close();
}

std::uint64_t MessageBus::bytes_transferred() const noexcept {
  return bytes_.load(std::memory_order_relaxed);
}

std::uint64_t MessageBus::messages_sent() const noexcept {
  return messages_.load(std::memory_order_relaxed);
}

}  // namespace pdc::rpc
