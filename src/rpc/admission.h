// Bounded weighted-fair admission queue (overload-control subsystem).
//
// Sits in front of a server's evaluation pool: requests that cannot start
// immediately wait here, ordered by weighted-fair queueing over tenants so
// one heavy tenant cannot starve the rest, and bounded by a queue limit so
// a burst is shed (with an explicit kOverloaded reply carrying a
// retry-after hint) instead of queueing unboundedly.
//
// The scheduler is classic virtual-time WFQ: each entry of tenant t gets a
// finish tag max(vtime, last_finish[t]) + 1/weight(t); pop() serves the
// smallest tag.  Ties break deterministically on (tag, tenant, arrival
// sequence) so a given arrival order always dispatches in the same order —
// results stay reproducible.
//
// Not thread-safe: the owner (ServerRuntime, or the traffic simulator that
// reuses this exact scheduler for its deterministic baseline) serializes
// access under its own lock.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

namespace pdc::rpc {

/// What to do with a request that arrives at a full admission queue.
enum class ShedPolicy : std::uint8_t {
  kRejectNew = 0,   ///< shed the arriving request (tail drop)
  kDropOldest = 1,  ///< admit it, shed the longest-waiting queued request
};

[[nodiscard]] constexpr std::string_view shed_policy_name(
    ShedPolicy policy) noexcept {
  return policy == ShedPolicy::kDropOldest ? "drop-oldest" : "reject-new";
}

/// Parse "reject-new" / "drop-oldest" (PDC_SHED_POLICY); nullopt otherwise.
[[nodiscard]] inline std::optional<ShedPolicy> parse_shed_policy(
    std::string_view name) noexcept {
  if (name == "reject-new") return ShedPolicy::kRejectNew;
  if (name == "drop-oldest") return ShedPolicy::kDropOldest;
  return std::nullopt;
}

/// Bounded WFQ over payloads of type T.
template <typename T>
class WeightedFairQueue {
 public:
  /// `limit` = 0 means unbounded (never sheds).  `weights[t]` is tenant
  /// t's share; missing or non-positive entries default to weight 1.
  explicit WeightedFairQueue(std::size_t limit = 0,
                             ShedPolicy policy = ShedPolicy::kRejectNew,
                             std::vector<double> weights = {})
      : limit_(limit), policy_(policy), weights_(std::move(weights)) {}

  struct Shed {
    std::uint32_t tenant = 0;
    T item;
  };
  struct PushResult {
    bool accepted = false;       ///< the arriving item was admitted
    std::optional<Shed> victim;  ///< a previously queued item shed to make room
  };

  /// Admit (or shed, per policy) one arrival for `tenant`.
  PushResult push(std::uint32_t tenant, T item) {
    PushResult result;
    if (limit_ != 0 && size_ >= limit_) {
      ++sheds_;
      if (policy_ == ShedPolicy::kRejectNew) {
        result.victim = Shed{tenant, std::move(item)};
        return result;
      }
      // kDropOldest: evict the entry that has waited longest (smallest
      // arrival sequence across all tenants) — its client is the most
      // likely to have given up already.
      std::size_t victim_lane = lanes_.size();
      std::uint64_t victim_seq = ~std::uint64_t{0};
      for (std::size_t i = 0; i < lanes_.size(); ++i) {
        if (!lanes_[i].entries.empty() &&
            lanes_[i].entries.front().seq < victim_seq) {
          victim_seq = lanes_[i].entries.front().seq;
          victim_lane = i;
        }
      }
      Lane& lane = lanes_[victim_lane];
      result.victim = Shed{lane.tenant, std::move(lane.entries.front().item)};
      lane.entries.pop_front();
      --size_;
    }
    Lane& lane = lane_of(tenant);
    const double w = weight_of(tenant);
    lane.last_finish = std::max(vtime_, lane.last_finish) + 1.0 / w;
    lane.entries.push_back({lane.last_finish, next_seq_++, std::move(item)});
    ++size_;
    peak_ = std::max(peak_, size_);
    result.accepted = true;
    return result;
  }

  /// Serve the queued item with the smallest finish tag (ties: lowest
  /// tenant id, then arrival order).  nullopt when empty.
  std::optional<std::pair<std::uint32_t, T>> pop() {
    std::size_t best = lanes_.size();
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
      if (lanes_[i].entries.empty()) continue;
      if (best == lanes_.size() || tag_less(lanes_[i], lanes_[best])) best = i;
    }
    if (best == lanes_.size()) return std::nullopt;
    Lane& lane = lanes_[best];
    Entry entry = std::move(lane.entries.front());
    lane.entries.pop_front();
    --size_;
    vtime_ = std::max(vtime_, entry.finish);
    return std::make_pair(lane.tenant, std::move(entry.item));
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t peak() const noexcept { return peak_; }
  [[nodiscard]] std::size_t limit() const noexcept { return limit_; }
  /// Arrivals that caused a shed (of themselves or of an older victim).
  [[nodiscard]] std::uint64_t sheds() const noexcept { return sheds_; }

  void clear() {
    for (Lane& lane : lanes_) lane.entries.clear();
    size_ = 0;
  }

 private:
  struct Entry {
    double finish = 0.0;
    std::uint64_t seq = 0;
    T item;
  };
  struct Lane {
    std::uint32_t tenant = 0;
    double last_finish = 0.0;
    std::deque<Entry> entries;
  };

  static bool tag_less(const Lane& a, const Lane& b) {
    const Entry& ea = a.entries.front();
    const Entry& eb = b.entries.front();
    if (ea.finish != eb.finish) return ea.finish < eb.finish;
    if (a.tenant != b.tenant) return a.tenant < b.tenant;
    return ea.seq < eb.seq;
  }

  Lane& lane_of(std::uint32_t tenant) {
    for (Lane& lane : lanes_) {
      if (lane.tenant == tenant) return lane;
    }
    lanes_.push_back(Lane{tenant, vtime_, {}});
    return lanes_.back();
  }

  [[nodiscard]] double weight_of(std::uint32_t tenant) const noexcept {
    if (tenant < weights_.size() && weights_[tenant] > 0.0) {
      return weights_[tenant];
    }
    return 1.0;
  }

  std::size_t limit_;
  ShedPolicy policy_;
  std::vector<double> weights_;
  std::vector<Lane> lanes_;  ///< small tenant counts: linear scan is fine
  double vtime_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t size_ = 0;
  std::size_t peak_ = 0;
  std::uint64_t sheds_ = 0;
};

}  // namespace pdc::rpc
