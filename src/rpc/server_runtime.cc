#include "rpc/server_runtime.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>

namespace pdc::rpc {

namespace {

/// splitmix64: deterministic per-gather jitter stream seeded from the first
/// request id, so backoff jitter is reproducible run-to-run yet
/// decorrelated across concurrent gathers.
std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

double unit_uniform(std::uint64_t& state) noexcept {
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

}  // namespace

ServerRuntime::ServerRuntime(MessageBus& bus, ServerId id,
                             TracedHandler handler,
                             ServerRuntimeOptions options)
    : bus_(bus), id_(id), handler_(std::move(handler)), options_(options) {
  if (options_.max_inflight == 0) options_.max_inflight = 1;
  queue_ = WeightedFairQueue<Pending>(options_.queue_limit,
                                      options_.shed_policy,
                                      options_.tenant_weights);
  if (options_.metrics != nullptr) {
    const std::string prefix = "rpc.server" + std::to_string(id_);
    requests_metric_ = &options_.metrics->counter(prefix + ".requests");
    shed_metric_ = &options_.metrics->counter(prefix + ".shed");
    expired_metric_ = &options_.metrics->counter(prefix + ".expired");
    handle_seconds_metric_ =
        &options_.metrics->histogram(prefix + ".handle_seconds");
    options_.metrics->gauge_fn(prefix + ".queue_depth", [this] {
      std::lock_guard lock(inflight_mu_);
      return static_cast<double>(queue_.size());
    });
    options_.metrics->gauge_fn(prefix + ".queue_peak", [this] {
      std::lock_guard lock(inflight_mu_);
      return static_cast<double>(queue_.peak());
    });
    options_.metrics->gauge_fn(prefix + ".mailbox_depth", [this, &bus, id] {
      return static_cast<double>(bus.server_mailbox(id).size());
    });
    options_.metrics->gauge_fn(prefix + ".mailbox_peak", [this, &bus, id] {
      return static_cast<double>(bus.server_mailbox(id).peak());
    });
  }
  thread_ = std::thread([this] { loop(); });
}

ServerRuntime::~ServerRuntime() {
  bus_.server_mailbox(id_).close();
  if (thread_.joinable()) thread_.join();
  // Pooled requests capture `this`; wait until the last one has finished
  // before the members they use go away.
  std::unique_lock lock(inflight_mu_);
  stopping_ = true;
  queue_.clear();
  inflight_cv_.wait(lock, [this] { return inflight_ == 0; });
}

std::uint64_t ServerRuntime::sheds() const {
  std::lock_guard lock(inflight_mu_);
  return queue_.sheds();
}

std::size_t ServerRuntime::queue_peak() const {
  std::lock_guard lock(inflight_mu_);
  return queue_.peak();
}

void ServerRuntime::loop() {
  Mailbox& inbox = bus_.server_mailbox(id_);
  FaultInjector* injector = bus_.fault_injector();
  // Inline runtimes with a queue limit run a drain-then-serve loop: park
  // every waiting arrival in the fair queue first (shedding past the
  // limit), then serve the scheduler's pick.  This keeps shedding and
  // weighted fairness working with no pool attached.  Unbounded inline
  // runtimes keep the legacy serve-in-arrival-order path.
  const bool inline_bounded =
      options_.pool == nullptr && options_.queue_limit != 0;
  const auto stop_admission = [this] {
    std::lock_guard lock(inflight_mu_);
    stopping_ = true;
    queue_.clear();
  };
  while (true) {
    std::optional<Message> message;
    if (inline_bounded) {
      message = inbox.try_pop();
      if (!message.has_value()) {
        std::optional<std::pair<std::uint32_t, Pending>> next;
        {
          std::lock_guard lock(inflight_mu_);
          next = queue_.pop();
        }
        if (next.has_value()) {
          Pending pending = std::move(next->second);
          if (expired(pending.envelope)) {
            if (expired_metric_ != nullptr) expired_metric_->add();
            continue;
          }
          Envelope env;
          std::span<const std::uint8_t> req;
          if (envelope_unwrap(pending.frame, env, req)) {
            handle_request(env, req, pending.dequeued_us);
          }
          continue;
        }
        message = inbox.pop();
      }
    } else {
      message = inbox.pop();
    }
    if (!message.has_value()) break;
    if (injector != nullptr) {
      switch (injector->on_server_request(id_)) {
        case ServerFate::kAlive:
          break;
        case ServerFate::kKilled:
          stop_admission();
          return;  // node crash: loop exits, requests go unanswered
        case ServerFate::kStalled:
          stop_admission();
          inbox.wait_closed();  // wedged daemon: holds the thread until
          return;               // shutdown, never replies
      }
    }
    Envelope envelope;
    std::span<const std::uint8_t> request;
    if (!envelope_unwrap(message->payload, envelope, request)) {
      continue;  // corrupt in transit: treat as lost, client will retry
    }
    if (expired(envelope)) {
      // Client already gave up on this attempt.
      if (expired_metric_ != nullptr) expired_metric_->add();
      continue;
    }
    const std::uint64_t dequeued_us = obs::now_us();
    if (options_.pool == nullptr && !inline_bounded) {
      handle_request(envelope, request, dequeued_us);
      continue;
    }
    if (options_.inline_only && options_.inline_only(request)) {
      // Exchange-coordinating request: serve it here, on this server's own
      // thread, so N such handlers across N servers always make progress
      // regardless of pool width (see ServerRuntimeOptions::inline_only).
      handle_request(envelope, request, dequeued_us);
      continue;
    }
    // `request` borrows from the frame, so Pending owns the whole frame and
    // re-parses at dispatch (cheap: header check + checksum).
    admit(Pending{envelope, std::move(message->payload), dequeued_us});
  }
  stop_admission();
}

void ServerRuntime::admit(Pending pending) {
  // Non-blocking admission: start immediately when a slot is free and
  // nothing is queued ahead; otherwise park in the fair queue, shedding
  // per policy when it is full.  The dispatcher thread never blocks, so
  // the mailbox keeps draining even when the pool is saturated — bursts
  // surface as explicit sheds, not as unbounded queue growth.
  const std::uint32_t tenant = pending.envelope.tenant;
  std::optional<Envelope> shed_victim;
  bool run_now = false;
  {
    std::lock_guard lock(inflight_mu_);
    if (stopping_) return;
    if (options_.pool != nullptr && inflight_ < options_.max_inflight &&
        queue_.empty()) {
      ++inflight_;
      run_now = true;
    } else {
      auto result = queue_.push(tenant, std::move(pending));
      if (result.victim.has_value()) {
        shed_victim = result.victim->item.envelope;
      }
    }
  }
  if (shed_victim.has_value()) send_shed(*shed_victim);
  if (run_now) dispatch_to_pool(std::move(pending));
}

void ServerRuntime::dispatch_to_pool(Pending pending) {
  options_.pool->submit([this, p = std::move(pending)]() mutable {
    run_pooled(std::move(p));
  });
}

void ServerRuntime::run_pooled(Pending pending) {
  // Serve this request, then keep the inflight slot and chain into the
  // next queued request until the queue is drained (or we are stopping).
  std::optional<Pending> current = std::move(pending);
  while (current.has_value()) {
    if (expired(current->envelope)) {
      if (expired_metric_ != nullptr) expired_metric_->add();
    } else {
      Envelope env;
      std::span<const std::uint8_t> req;
      if (envelope_unwrap(current->frame, env, req)) {
        handle_request(env, req, current->dequeued_us);
      }
    }
    current.reset();
    {
      std::lock_guard lock(inflight_mu_);
      if (!stopping_) {
        if (auto next = queue_.pop(); next.has_value()) {
          current = std::move(next->second);
        }
      }
      if (!current.has_value()) {
        --inflight_;
        // Notify under the lock: the destructor destroys this cv as soon
        // as its wait observes inflight_ == 0, so an unlocked notify could
        // still be inside pthread_cond_broadcast at that point.
        inflight_cv_.notify_all();
      }
    }
  }
}

void ServerRuntime::send_shed(const Envelope& request) {
  if (shed_metric_ != nullptr) shed_metric_->add();
  // Retry-after hint scales with fullness, up to 2x the base: the fuller
  // the queue, the longer shed clients should stay away.
  std::uint64_t hint_us = options_.shed_retry_after_us;
  if (options_.queue_limit != 0) {
    std::size_t depth;
    {
      std::lock_guard lock(inflight_mu_);
      depth = queue_.size();
    }
    hint_us += hint_us * std::min<std::size_t>(depth, options_.queue_limit) /
               options_.queue_limit;
  }
  Envelope reply = request;
  reply.flags |= kFlagShed;
  std::vector<std::uint8_t> payload(sizeof(hint_us));
  std::memcpy(payload.data(), &hint_us, sizeof(hint_us));
  if (request.trace_id == 0) {
    bus_.send_to_client(id_, envelope_wrap(reply, payload));
    return;
  }
  // Traced request: ship a zero-width "server.shed" span back as baggage so
  // the trace shows where (and how loaded) the shed happened.
  obs::Tracer tracer(request.trace_id);
  obs::Span span;
  span.id = obs::next_id();
  span.parent = request.parent_span;
  span.start_us = obs::now_us();
  span.end_us = span.start_us;
  span.name = "server.shed";
  span.actor = "server" + std::to_string(id_);
  span.args.emplace_back("retry_after_us", static_cast<double>(hint_us));
  tracer.record(std::move(span));
  bus_.send_to_client(
      id_,
      envelope_wrap(reply, payload, obs::serialize_spans(tracer.take().spans)));
}

void ServerRuntime::handle_request(const Envelope& envelope,
                                   std::span<const std::uint8_t> request,
                                   std::uint64_t dequeued_us) {
  if (requests_metric_ != nullptr) requests_metric_->add();
  const std::uint64_t start_us = obs::now_us();
  if (envelope.trace_id == 0) {
    std::vector<std::uint8_t> response = handler_(request, {});
    if (handle_seconds_metric_ != nullptr) {
      handle_seconds_metric_->observe(
          static_cast<double>(obs::now_us() - start_us) * 1e-6);
    }
    bus_.send_to_client(id_, envelope_wrap(envelope, response));
    return;
  }
  // Traced request: collect this request's server-side spans in a local
  // tracer and ship them back as response-frame baggage.  The queue span
  // covers dequeue -> handler start (admission wait + pool queueing).
  obs::Tracer tracer(envelope.trace_id);
  const std::string actor = "server" + std::to_string(id_);
  obs::Span queue_span;
  queue_span.id = obs::next_id();
  queue_span.parent = envelope.parent_span;
  queue_span.start_us = dequeued_us;
  queue_span.end_us = std::max(start_us, dequeued_us);
  queue_span.name = "server.queue";
  queue_span.actor = actor;
  tracer.record(std::move(queue_span));
  obs::ScopedSpan handle(
      obs::TraceContext{&tracer, envelope.trace_id, envelope.parent_span},
      "server.handle", actor);
  handle.arg("server", static_cast<double>(id_));
  handle.arg("attempt", static_cast<double>(envelope.attempt));
  std::vector<std::uint8_t> response = handler_(request, handle.context());
  handle.close();
  if (handle_seconds_metric_ != nullptr) {
    handle_seconds_metric_->observe(
        static_cast<double>(obs::now_us() - start_us) * 1e-6);
  }
  bus_.send_to_client(
      id_, envelope_wrap(envelope, response,
                         obs::serialize_spans(tracer.take().spans)));
}

Client::Client(MessageBus& bus, RetryPolicy policy)
    : bus_(bus), policy_(policy) {
  receiver_ = std::thread([this] { receive_loop(); });
}

Client::~Client() {
  // The receiver is the mailbox's only consumer, so close it here (it may
  // already be closed by MessageBus::shutdown(); close is idempotent).
  bus_.client_mailbox().close();
  if (receiver_.joinable()) receiver_.join();
}

void Client::receive_loop() {
  while (auto message = bus_.client_mailbox().pop()) {
    Envelope envelope;
    std::span<const std::uint8_t> payload;
    std::span<const std::uint8_t> trace_blob;
    if (!envelope_unwrap(message->payload, envelope, payload, trace_blob)) {
      corrupt_responses_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    std::lock_guard lock(mu_);
    const auto it = pending_.find(envelope.request_id);
    if (it == pending_.end()) {
      // The issuing gather already returned and withdrew this id (or it
      // never existed) — unattributable, count client-wide.
      stray_responses_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const Slot slot = it->second;
    auto& cell = (*slot.waiter->responses)[slot.index];
    if (cell.has_value()) {
      // An earlier attempt answered already; the id stays registered until
      // its gather withdraws it, so the duplicate is charged to the gather
      // it belongs to — not smeared across concurrent gathers.  Its span
      // blob is dropped with it: each request contributes spans once.
      ++slot.waiter->duplicates;
      continue;
    }
    if ((envelope.flags & kFlagShed) != 0) {
      // Load-shed rejection, not a real response: the server is alive but
      // overloaded.  Record the shed and its retry-after hint; wake the
      // gather early when every outstanding request has been shed this
      // attempt (waiting out the attempt window would be pure dead time).
      ++slot.waiter->sheds;
      (*slot.waiter->shed)[slot.index] = true;
      std::uint64_t hint_us = 0;
      if (payload.size() >= sizeof(hint_us)) {
        std::memcpy(&hint_us, payload.data(), sizeof(hint_us));
      }
      slot.waiter->retry_after_us =
          std::max(slot.waiter->retry_after_us, hint_us);
      if (slot.waiter->tracer != nullptr && !trace_blob.empty()) {
        std::vector<obs::Span> spans;
        if (obs::deserialize_spans(trace_blob, spans).ok()) {
          slot.waiter->tracer->adopt(std::move(spans));
        }
      }
      if (++slot.waiter->sheds_this_attempt >= slot.waiter->remaining) {
        slot.waiter->cv.notify_all();
      }
      continue;
    }
    cell = Message{message->sender,
                   std::vector<std::uint8_t>(payload.begin(), payload.end())};
    if (slot.waiter->tracer != nullptr && !trace_blob.empty()) {
      std::vector<obs::Span> spans;
      if (obs::deserialize_spans(trace_blob, spans).ok()) {
        slot.waiter->tracer->adopt(std::move(spans));
      }
      // A malformed blob loses the server's spans, never the response.
    }
    if (--slot.waiter->remaining == 0) slot.waiter->cv.notify_all();
  }
  // Mailbox closed: wake every in-progress gather so none blocks until its
  // full retry budget during shutdown.
  std::lock_guard lock(mu_);
  closed_ = true;
  for (auto& [id, slot] : pending_) slot.waiter->cv.notify_all();
}

GatherResult Client::gather(
    const std::vector<std::pair<ServerId, std::vector<std::uint8_t>>>&
        requests,
    const obs::TraceContext& trace, std::uint32_t tenant) {
  GatherResult result;
  result.responses.resize(requests.size());
  result.shed.assign(requests.size(), false);
  if (requests.empty()) return result;

  // Traced gathers get one "rpc.gather" span, one "rpc.request" span per
  // request (open from first send until the gather returns — server-side
  // spans parent under it, so their intervals nest), and one "rpc.attempt"
  // span per retry round.
  obs::ScopedSpan gather_span(trace, "rpc.gather", "client");
  std::vector<obs::SpanId> request_spans(requests.size(), 0);
  if (trace.enabled()) {
    for (std::size_t i = 0; i < requests.size(); ++i) {
      request_spans[i] =
          trace.tracer->begin(gather_span.id(), "rpc.request", "client");
      trace.tracer->add_arg(request_spans[i], "server",
                            static_cast<double>(requests[i].first));
      trace.tracer->add_arg(request_spans[i], "request_bytes",
                            static_cast<double>(requests[i].second.size()));
    }
  }

  // Request ids are stable across retries so a slow first-attempt response
  // still satisfies the request; ids are globally unique so responses to
  // *previous* operations are recognized as stale and discarded.
  Waiter waiter;
  waiter.responses = &result.responses;
  waiter.shed = &result.shed;
  waiter.remaining = requests.size();
  waiter.tracer = trace.tracer;
  std::vector<std::uint64_t> ids(requests.size());
  {
    std::lock_guard lock(mu_);
    if (closed_) {
      result.bus_closed = true;
      return result;
    }
    for (std::size_t i = 0; i < requests.size(); ++i) {
      ids[i] = next_request_id_.fetch_add(1, std::memory_order_relaxed);
      pending_.emplace(ids[i], Slot{&waiter, i});
    }
  }
  std::uint64_t jitter_state = ids[0];

  // Retry-after carried over from the previous attempt's shed replies; the
  // next backoff honours max(backoff, hint).
  std::uint64_t retry_hint_us = 0;
  for (std::uint32_t attempt = 0; attempt < policy_.max_attempts; ++attempt) {
    // Which of our requests are still unanswered?  (Filled slots keep
    // their pending_ entry until the withdraw below, so check the slot.)
    std::vector<std::size_t> todo;
    {
      std::lock_guard lock(mu_);
      waiter.sheds_this_attempt = 0;
      for (std::size_t i = 0; i < ids.size(); ++i) {
        if (!result.responses[i].has_value()) todo.push_back(i);
      }
    }
    if (todo.empty()) break;
    if (attempt > 0) {
      result.stats.retries += todo.size();
      const auto backoff = std::min(
          policy_.backoff_cap,
          std::chrono::milliseconds(policy_.backoff_base.count()
                                    << std::min<std::uint32_t>(attempt - 1,
                                                               16)));
      // Honour the shedding server's retry-after hint, and jitter the sleep
      // so retry storms from many clients decorrelate instead of re-bursting
      // in lockstep.
      auto sleep_us = std::max<std::uint64_t>(
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(backoff)
                  .count()),
          retry_hint_us);
      if (policy_.backoff_jitter > 0.0) {
        sleep_us += static_cast<std::uint64_t>(
            static_cast<double>(sleep_us) * policy_.backoff_jitter *
            unit_uniform(jitter_state));
      }
      std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
      retry_hint_us = 0;
    }
    obs::ScopedSpan attempt_span(gather_span.context(), "rpc.attempt",
                                 "client");
    attempt_span.arg("attempt", static_cast<double>(attempt));
    attempt_span.arg("outstanding", static_cast<double>(todo.size()));
    const auto deadline =
        std::chrono::steady_clock::now() + policy_.attempt_timeout;
    const std::uint64_t deadline_us =
        steady_now_us() +
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                policy_.attempt_timeout)
                .count());
    for (const std::size_t i : todo) {
      bus_.send_to_server(
          requests[i].first,
          envelope_wrap({ids[i], attempt, tenant, 0, deadline_us,
                         trace.trace_id, request_spans[i]},
                        requests[i].second));
    }

    std::unique_lock lock(mu_);
    waiter.cv.wait_until(lock, deadline, [&] {
      return waiter.remaining == 0 || closed_ ||
             (waiter.sheds_this_attempt >= waiter.remaining);
    });
    if (waiter.remaining == 0) break;
    if (closed_) {
      result.bus_closed = true;
      break;
    }
    if (waiter.sheds_this_attempt >= waiter.remaining) {
      // Every outstanding request was explicitly shed: retry after the
      // server's hint instead of burning the rest of the attempt window.
      retry_hint_us = waiter.retry_after_us;
      waiter.retry_after_us = 0;
      continue;
    }
    ++result.stats.timeouts;  // attempt window truly expired
  }

  // Withdraw our ids before the stack-allocated waiter dies; late
  // responses then count as stray instead of touching freed memory.
  {
    std::lock_guard lock(mu_);
    for (const std::uint64_t id : ids) pending_.erase(id);
    result.stats.duplicates_discarded = waiter.duplicates;
    result.stats.sheds = waiter.sheds;
  }
  // shed[i] marks only requests that ended shed-and-unanswered; a request
  // shed on one attempt but answered on a later one completed normally.
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (result.responses[i].has_value()) result.shed[i] = false;
  }
  if (trace.enabled()) {
    for (std::size_t i = 0; i < requests.size(); ++i) {
      trace.tracer->add_arg(request_spans[i], "responded",
                            result.responses[i].has_value() ? 1.0 : 0.0);
      trace.tracer->end(request_spans[i]);
    }
    gather_span.arg("retries", static_cast<double>(result.stats.retries));
    gather_span.arg("timeouts", static_cast<double>(result.stats.timeouts));
    gather_span.arg("sheds", static_cast<double>(result.stats.sheds));
  }
  return result;
}

std::future<std::vector<Message>> Client::broadcast_collect(
    std::vector<std::uint8_t> payload) {
  // Background aggregator: gather one response per server (paper §III-C).
  return std::async(std::launch::async, [this,
                                         payload = std::move(payload)] {
    std::vector<std::pair<ServerId, std::vector<std::uint8_t>>> requests;
    requests.reserve(bus_.num_servers());
    for (ServerId s = 0; s < bus_.num_servers(); ++s) {
      requests.emplace_back(s, payload);
    }
    GatherResult gathered = gather(requests);
    std::vector<Message> responses;
    for (auto& r : gathered.responses) {
      if (r.has_value()) responses.push_back(std::move(*r));
    }
    std::sort(responses.begin(), responses.end(),
              [](const Message& a, const Message& b) {
                return a.sender < b.sender;
              });
    return responses;
  });
}

std::vector<Message> Client::scatter_wait(
    std::vector<std::pair<ServerId, std::vector<std::uint8_t>>> requests) {
  GatherResult gathered = gather(requests);
  std::vector<Message> responses;
  for (auto& r : gathered.responses) {
    if (r.has_value()) responses.push_back(std::move(*r));
  }
  std::sort(responses.begin(), responses.end(),
            [](const Message& a, const Message& b) {
              return a.sender < b.sender;
            });
  return responses;
}

}  // namespace pdc::rpc
