#include "rpc/server_runtime.h"

#include <algorithm>
#include <unordered_map>

namespace pdc::rpc {

ServerRuntime::ServerRuntime(MessageBus& bus, ServerId id, Handler handler)
    : bus_(bus), id_(id), handler_(std::move(handler)) {
  thread_ = std::thread([this] { loop(); });
}

ServerRuntime::~ServerRuntime() {
  bus_.server_mailbox(id_).close();
  if (thread_.joinable()) thread_.join();
}

void ServerRuntime::loop() {
  Mailbox& inbox = bus_.server_mailbox(id_);
  FaultInjector* injector = bus_.fault_injector();
  while (auto message = inbox.pop()) {
    if (injector != nullptr) {
      switch (injector->on_server_request(id_)) {
        case ServerFate::kAlive:
          break;
        case ServerFate::kKilled:
          return;  // node crash: loop exits, requests go unanswered
        case ServerFate::kStalled:
          inbox.wait_closed();  // wedged daemon: holds the thread until
          return;               // shutdown, never replies
      }
    }
    Envelope envelope;
    std::span<const std::uint8_t> request;
    if (!envelope_unwrap(message->payload, envelope, request)) {
      continue;  // corrupt in transit: treat as lost, client will retry
    }
    if (envelope.deadline_us != 0 && steady_now_us() > envelope.deadline_us) {
      continue;  // client already gave up on this attempt
    }
    std::vector<std::uint8_t> response = handler_(request);
    bus_.send_to_client(id_, envelope_wrap(envelope, response));
  }
}

GatherResult Client::gather(
    const std::vector<std::pair<ServerId, std::vector<std::uint8_t>>>&
        requests) {
  GatherResult result;
  result.responses.resize(requests.size());
  if (requests.empty()) return result;

  // One popper at a time: a concurrent gather (e.g. from a
  // broadcast_collect background thread) would otherwise consume this
  // gather's responses and discard them as stale.
  std::lock_guard gather_lock(gather_mu_);

  // Request ids are stable across retries so a slow first-attempt response
  // still satisfies the request; ids are globally unique so responses to
  // *previous* operations are recognized as stale and discarded.
  std::unordered_map<std::uint64_t, std::size_t> pending;
  std::vector<std::uint64_t> ids(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    ids[i] = next_request_id_.fetch_add(1, std::memory_order_relaxed);
    pending.emplace(ids[i], i);
  }

  for (std::uint32_t attempt = 0; attempt < policy_.max_attempts; ++attempt) {
    if (attempt > 0) {
      result.stats.retries += pending.size();
      const auto backoff = std::min(
          policy_.backoff_cap,
          std::chrono::milliseconds(policy_.backoff_base.count()
                                    << std::min<std::uint32_t>(attempt - 1,
                                                               16)));
      std::this_thread::sleep_for(backoff);
    }
    const auto deadline =
        std::chrono::steady_clock::now() + policy_.attempt_timeout;
    const std::uint64_t deadline_us =
        steady_now_us() +
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                policy_.attempt_timeout)
                .count());
    for (const auto& [id, index] : pending) {
      bus_.send_to_server(
          requests[index].first,
          envelope_wrap({id, attempt, deadline_us}, requests[index].second));
    }

    while (!pending.empty()) {
      auto message = bus_.client_mailbox().pop_until(deadline);
      if (!message.has_value()) {
        if (bus_.client_mailbox().closed()) {
          result.bus_closed = true;
          return result;
        }
        ++result.stats.timeouts;  // attempt window expired
        break;
      }
      Envelope envelope;
      std::span<const std::uint8_t> payload;
      if (!envelope_unwrap(message->payload, envelope, payload)) {
        ++result.stats.corrupt_discarded;
        continue;
      }
      const auto it = pending.find(envelope.request_id);
      if (it == pending.end()) {
        ++result.stats.duplicates_discarded;  // dup or stale response
        continue;
      }
      result.responses[it->second] =
          Message{message->sender,
                  std::vector<std::uint8_t>(payload.begin(), payload.end())};
      pending.erase(it);
    }
    if (pending.empty()) break;
  }
  return result;
}

std::future<std::vector<Message>> Client::broadcast_collect(
    std::vector<std::uint8_t> payload) {
  // Background aggregator: gather one response per server (paper §III-C).
  return std::async(std::launch::async, [this,
                                         payload = std::move(payload)] {
    std::vector<std::pair<ServerId, std::vector<std::uint8_t>>> requests;
    requests.reserve(bus_.num_servers());
    for (ServerId s = 0; s < bus_.num_servers(); ++s) {
      requests.emplace_back(s, payload);
    }
    GatherResult gathered = gather(requests);
    std::vector<Message> responses;
    for (auto& r : gathered.responses) {
      if (r.has_value()) responses.push_back(std::move(*r));
    }
    std::sort(responses.begin(), responses.end(),
              [](const Message& a, const Message& b) {
                return a.sender < b.sender;
              });
    return responses;
  });
}

std::vector<Message> Client::scatter_wait(
    std::vector<std::pair<ServerId, std::vector<std::uint8_t>>> requests) {
  GatherResult gathered = gather(requests);
  std::vector<Message> responses;
  for (auto& r : gathered.responses) {
    if (r.has_value()) responses.push_back(std::move(*r));
  }
  std::sort(responses.begin(), responses.end(),
            [](const Message& a, const Message& b) {
              return a.sender < b.sender;
            });
  return responses;
}

}  // namespace pdc::rpc
