#include "rpc/server_runtime.h"

#include <algorithm>

namespace pdc::rpc {

ServerRuntime::ServerRuntime(MessageBus& bus, ServerId id, Handler handler)
    : bus_(bus), id_(id), handler_(std::move(handler)) {
  thread_ = std::thread([this] { loop(); });
}

ServerRuntime::~ServerRuntime() {
  bus_.server_mailbox(id_).close();
  if (thread_.joinable()) thread_.join();
}

void ServerRuntime::loop() {
  Mailbox& inbox = bus_.server_mailbox(id_);
  while (auto message = inbox.pop()) {
    std::vector<std::uint8_t> response = handler_(message->payload);
    bus_.send_to_client(id_, std::move(response));
  }
}

std::vector<Message> Client::scatter_wait(
    std::vector<std::pair<ServerId, std::vector<std::uint8_t>>> requests) {
  for (auto& [server, payload] : requests) {
    bus_.send_to_server(server, std::move(payload));
  }
  std::vector<Message> responses;
  responses.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    auto m = bus_.client_mailbox().pop();
    if (!m) break;
    responses.push_back(std::move(*m));
  }
  std::sort(responses.begin(), responses.end(),
            [](const Message& a, const Message& b) {
              return a.sender < b.sender;
            });
  return responses;
}

std::future<std::vector<Message>> Client::broadcast_collect(
    std::vector<std::uint8_t> payload) {
  bus_.broadcast(payload);
  // Background aggregator: gather exactly one response per server.
  return std::async(std::launch::async, [this] {
    const std::uint32_t n = bus_.num_servers();
    std::vector<Message> responses;
    responses.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      auto m = bus_.client_mailbox().pop();
      if (!m) break;  // bus shut down mid-collect
      responses.push_back(std::move(*m));
    }
    std::sort(responses.begin(), responses.end(),
              [](const Message& a, const Message& b) {
                return a.sender < b.sender;
              });
    return responses;
  });
}

}  // namespace pdc::rpc
