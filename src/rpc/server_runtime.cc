#include "rpc/server_runtime.h"

#include <algorithm>
#include <utility>

namespace pdc::rpc {

ServerRuntime::ServerRuntime(MessageBus& bus, ServerId id,
                             TracedHandler handler,
                             ServerRuntimeOptions options)
    : bus_(bus), id_(id), handler_(std::move(handler)), options_(options) {
  if (options_.max_inflight == 0) options_.max_inflight = 1;
  if (options_.metrics != nullptr) {
    const std::string prefix = "rpc.server" + std::to_string(id_);
    requests_metric_ = &options_.metrics->counter(prefix + ".requests");
    handle_seconds_metric_ =
        &options_.metrics->histogram(prefix + ".handle_seconds");
  }
  thread_ = std::thread([this] { loop(); });
}

ServerRuntime::~ServerRuntime() {
  bus_.server_mailbox(id_).close();
  if (thread_.joinable()) thread_.join();
  // Pooled requests capture `this`; wait until the last one has finished
  // before the members they use go away.
  std::unique_lock lock(inflight_mu_);
  inflight_cv_.wait(lock, [this] { return inflight_ == 0; });
}

void ServerRuntime::loop() {
  Mailbox& inbox = bus_.server_mailbox(id_);
  FaultInjector* injector = bus_.fault_injector();
  while (auto message = inbox.pop()) {
    if (injector != nullptr) {
      switch (injector->on_server_request(id_)) {
        case ServerFate::kAlive:
          break;
        case ServerFate::kKilled:
          return;  // node crash: loop exits, requests go unanswered
        case ServerFate::kStalled:
          inbox.wait_closed();  // wedged daemon: holds the thread until
          return;               // shutdown, never replies
      }
    }
    Envelope envelope;
    std::span<const std::uint8_t> request;
    if (!envelope_unwrap(message->payload, envelope, request)) {
      continue;  // corrupt in transit: treat as lost, client will retry
    }
    if (envelope.deadline_us != 0 && steady_now_us() > envelope.deadline_us) {
      continue;  // client already gave up on this attempt
    }
    const std::uint64_t dequeued_us = obs::now_us();
    if (options_.pool == nullptr) {
      handle_request(envelope, request, dequeued_us);
      continue;
    }
    // Bounded admission: at most max_inflight requests of this server on
    // the pool at once, so a burst at one server cannot starve the others.
    {
      std::unique_lock lock(inflight_mu_);
      inflight_cv_.wait(
          lock, [this] { return inflight_ < options_.max_inflight; });
      ++inflight_;
    }
    // `request` borrows from the frame, so move the whole frame into the
    // task and re-parse there (cheap: header check + checksum).
    options_.pool->submit(
        [this, frame = std::move(message->payload), dequeued_us] {
          Envelope env;
          std::span<const std::uint8_t> req;
          if (envelope_unwrap(frame, env, req)) {
            handle_request(env, req, dequeued_us);
          }
          std::lock_guard lock(inflight_mu_);
          --inflight_;
          inflight_cv_.notify_all();
        });
  }
}

void ServerRuntime::handle_request(const Envelope& envelope,
                                   std::span<const std::uint8_t> request,
                                   std::uint64_t dequeued_us) {
  if (requests_metric_ != nullptr) requests_metric_->add();
  const std::uint64_t start_us = obs::now_us();
  if (envelope.trace_id == 0) {
    std::vector<std::uint8_t> response = handler_(request, {});
    if (handle_seconds_metric_ != nullptr) {
      handle_seconds_metric_->observe(
          static_cast<double>(obs::now_us() - start_us) * 1e-6);
    }
    bus_.send_to_client(id_, envelope_wrap(envelope, response));
    return;
  }
  // Traced request: collect this request's server-side spans in a local
  // tracer and ship them back as response-frame baggage.  The queue span
  // covers dequeue -> handler start (admission wait + pool queueing).
  obs::Tracer tracer(envelope.trace_id);
  const std::string actor = "server" + std::to_string(id_);
  obs::Span queue_span;
  queue_span.id = obs::next_id();
  queue_span.parent = envelope.parent_span;
  queue_span.start_us = dequeued_us;
  queue_span.end_us = std::max(start_us, dequeued_us);
  queue_span.name = "server.queue";
  queue_span.actor = actor;
  tracer.record(std::move(queue_span));
  obs::ScopedSpan handle(
      obs::TraceContext{&tracer, envelope.trace_id, envelope.parent_span},
      "server.handle", actor);
  handle.arg("server", static_cast<double>(id_));
  handle.arg("attempt", static_cast<double>(envelope.attempt));
  std::vector<std::uint8_t> response = handler_(request, handle.context());
  handle.close();
  if (handle_seconds_metric_ != nullptr) {
    handle_seconds_metric_->observe(
        static_cast<double>(obs::now_us() - start_us) * 1e-6);
  }
  bus_.send_to_client(
      id_, envelope_wrap(envelope, response,
                         obs::serialize_spans(tracer.take().spans)));
}

Client::Client(MessageBus& bus, RetryPolicy policy)
    : bus_(bus), policy_(policy) {
  receiver_ = std::thread([this] { receive_loop(); });
}

Client::~Client() {
  // The receiver is the mailbox's only consumer, so close it here (it may
  // already be closed by MessageBus::shutdown(); close is idempotent).
  bus_.client_mailbox().close();
  if (receiver_.joinable()) receiver_.join();
}

void Client::receive_loop() {
  while (auto message = bus_.client_mailbox().pop()) {
    Envelope envelope;
    std::span<const std::uint8_t> payload;
    std::span<const std::uint8_t> trace_blob;
    if (!envelope_unwrap(message->payload, envelope, payload, trace_blob)) {
      corrupt_responses_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    std::lock_guard lock(mu_);
    const auto it = pending_.find(envelope.request_id);
    if (it == pending_.end()) {
      // The issuing gather already returned and withdrew this id (or it
      // never existed) — unattributable, count client-wide.
      stray_responses_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const Slot slot = it->second;
    auto& cell = (*slot.waiter->responses)[slot.index];
    if (cell.has_value()) {
      // An earlier attempt answered already; the id stays registered until
      // its gather withdraws it, so the duplicate is charged to the gather
      // it belongs to — not smeared across concurrent gathers.  Its span
      // blob is dropped with it: each request contributes spans once.
      ++slot.waiter->duplicates;
      continue;
    }
    cell = Message{message->sender,
                   std::vector<std::uint8_t>(payload.begin(), payload.end())};
    if (slot.waiter->tracer != nullptr && !trace_blob.empty()) {
      std::vector<obs::Span> spans;
      if (obs::deserialize_spans(trace_blob, spans).ok()) {
        slot.waiter->tracer->adopt(std::move(spans));
      }
      // A malformed blob loses the server's spans, never the response.
    }
    if (--slot.waiter->remaining == 0) slot.waiter->cv.notify_all();
  }
  // Mailbox closed: wake every in-progress gather so none blocks until its
  // full retry budget during shutdown.
  std::lock_guard lock(mu_);
  closed_ = true;
  for (auto& [id, slot] : pending_) slot.waiter->cv.notify_all();
}

GatherResult Client::gather(
    const std::vector<std::pair<ServerId, std::vector<std::uint8_t>>>&
        requests,
    const obs::TraceContext& trace) {
  GatherResult result;
  result.responses.resize(requests.size());
  if (requests.empty()) return result;

  // Traced gathers get one "rpc.gather" span, one "rpc.request" span per
  // request (open from first send until the gather returns — server-side
  // spans parent under it, so their intervals nest), and one "rpc.attempt"
  // span per retry round.
  obs::ScopedSpan gather_span(trace, "rpc.gather", "client");
  std::vector<obs::SpanId> request_spans(requests.size(), 0);
  if (trace.enabled()) {
    for (std::size_t i = 0; i < requests.size(); ++i) {
      request_spans[i] =
          trace.tracer->begin(gather_span.id(), "rpc.request", "client");
      trace.tracer->add_arg(request_spans[i], "server",
                            static_cast<double>(requests[i].first));
      trace.tracer->add_arg(request_spans[i], "request_bytes",
                            static_cast<double>(requests[i].second.size()));
    }
  }

  // Request ids are stable across retries so a slow first-attempt response
  // still satisfies the request; ids are globally unique so responses to
  // *previous* operations are recognized as stale and discarded.
  Waiter waiter;
  waiter.responses = &result.responses;
  waiter.remaining = requests.size();
  waiter.tracer = trace.tracer;
  std::vector<std::uint64_t> ids(requests.size());
  {
    std::lock_guard lock(mu_);
    if (closed_) {
      result.bus_closed = true;
      return result;
    }
    for (std::size_t i = 0; i < requests.size(); ++i) {
      ids[i] = next_request_id_.fetch_add(1, std::memory_order_relaxed);
      pending_.emplace(ids[i], Slot{&waiter, i});
    }
  }

  for (std::uint32_t attempt = 0; attempt < policy_.max_attempts; ++attempt) {
    // Which of our requests are still unanswered?  (Filled slots keep
    // their pending_ entry until the withdraw below, so check the slot.)
    std::vector<std::size_t> todo;
    {
      std::lock_guard lock(mu_);
      for (std::size_t i = 0; i < ids.size(); ++i) {
        if (!result.responses[i].has_value()) todo.push_back(i);
      }
    }
    if (todo.empty()) break;
    if (attempt > 0) {
      result.stats.retries += todo.size();
      const auto backoff = std::min(
          policy_.backoff_cap,
          std::chrono::milliseconds(policy_.backoff_base.count()
                                    << std::min<std::uint32_t>(attempt - 1,
                                                               16)));
      std::this_thread::sleep_for(backoff);
    }
    obs::ScopedSpan attempt_span(gather_span.context(), "rpc.attempt",
                                 "client");
    attempt_span.arg("attempt", static_cast<double>(attempt));
    attempt_span.arg("outstanding", static_cast<double>(todo.size()));
    const auto deadline =
        std::chrono::steady_clock::now() + policy_.attempt_timeout;
    const std::uint64_t deadline_us =
        steady_now_us() +
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                policy_.attempt_timeout)
                .count());
    for (const std::size_t i : todo) {
      bus_.send_to_server(
          requests[i].first,
          envelope_wrap({ids[i], attempt, deadline_us, trace.trace_id,
                         request_spans[i]},
                        requests[i].second));
    }

    std::unique_lock lock(mu_);
    waiter.cv.wait_until(lock, deadline, [&] {
      return waiter.remaining == 0 || closed_;
    });
    if (waiter.remaining == 0) break;
    if (closed_) {
      result.bus_closed = true;
      break;
    }
    ++result.stats.timeouts;  // attempt window expired
  }

  // Withdraw our ids before the stack-allocated waiter dies; late
  // responses then count as stray instead of touching freed memory.
  {
    std::lock_guard lock(mu_);
    for (const std::uint64_t id : ids) pending_.erase(id);
    result.stats.duplicates_discarded = waiter.duplicates;
  }
  if (trace.enabled()) {
    for (std::size_t i = 0; i < requests.size(); ++i) {
      trace.tracer->add_arg(request_spans[i], "responded",
                            result.responses[i].has_value() ? 1.0 : 0.0);
      trace.tracer->end(request_spans[i]);
    }
    gather_span.arg("retries", static_cast<double>(result.stats.retries));
    gather_span.arg("timeouts", static_cast<double>(result.stats.timeouts));
  }
  return result;
}

std::future<std::vector<Message>> Client::broadcast_collect(
    std::vector<std::uint8_t> payload) {
  // Background aggregator: gather one response per server (paper §III-C).
  return std::async(std::launch::async, [this,
                                         payload = std::move(payload)] {
    std::vector<std::pair<ServerId, std::vector<std::uint8_t>>> requests;
    requests.reserve(bus_.num_servers());
    for (ServerId s = 0; s < bus_.num_servers(); ++s) {
      requests.emplace_back(s, payload);
    }
    GatherResult gathered = gather(requests);
    std::vector<Message> responses;
    for (auto& r : gathered.responses) {
      if (r.has_value()) responses.push_back(std::move(*r));
    }
    std::sort(responses.begin(), responses.end(),
              [](const Message& a, const Message& b) {
                return a.sender < b.sender;
              });
    return responses;
  });
}

std::vector<Message> Client::scatter_wait(
    std::vector<std::pair<ServerId, std::vector<std::uint8_t>>> requests) {
  GatherResult gathered = gather(requests);
  std::vector<Message> responses;
  for (auto& r : gathered.responses) {
    if (r.has_value()) responses.push_back(std::move(*r));
  }
  std::sort(responses.begin(), responses.end(),
            [](const Message& a, const Message& b) {
              return a.sender < b.sender;
            });
  return responses;
}

}  // namespace pdc::rpc
