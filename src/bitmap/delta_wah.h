// Delta-WAH sidecar combine for mutable regions.
//
// Overwrites do not rewrite a region's base bitmap index.  Instead the
// region keeps a small delta: the set of overwritten (dirty) region-local
// positions and, per bin, the dirty positions whose *current* value falls
// in that bin.  A query-time bin is then
//
//   effective(bin) = (base(bin) AND NOT dirty) OR delta(bin)
//
// evaluated entirely on the compressed form with the kernel-backed
// WahBitVector::And/Or (PR 7's wah_combine kernels), so the base index
// stays immutable on disk and compaction merely folds the delta by
// rebuilding the file.
#pragma once

#include <cstdint>
#include <span>

#include "bitmap/wah.h"
#include "common/status.h"

namespace pdc::bitmap {

/// WAH vector of `length` bits whose set bits are exactly the (sorted,
/// strictly ascending, < length) `positions`; `invert` flips every bit
/// (the NOT-dirty mask).  Cost is O(#positions) fill words, not O(length).
[[nodiscard]] WahBitVector bits_at(std::span<const std::uint64_t> positions,
                                   std::uint64_t length, bool invert = false);

/// Effective bin bitvector of a region with a delta sidecar:
/// (base AND NOT bits_at(dirty)) OR bits_at(bin_delta).  `dirty` and
/// `bin_delta` are sorted region-local positions below base.size().
[[nodiscard]] Result<WahBitVector> combine_base_delta(
    const WahBitVector& base, std::span<const std::uint64_t> dirty,
    std::span<const std::uint64_t> bin_delta);

}  // namespace pdc::bitmap
