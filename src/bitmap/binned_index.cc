#include "bitmap/binned_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <type_traits>

#include "common/rng.h"

namespace pdc::bitmap {

template <PdcElement T>
BinnedBitmapIndex BinnedBitmapIndex::Build(std::span<const T> data,
                                           const IndexConfig& config) {
  BinnedBitmapIndex idx;
  if (data.empty()) return idx;
  const std::uint64_t n = data.size();

  // Exact value range first (one cheap pass): the bin grid must reach the
  // true extremes, or the far tail collapses into one huge edge bin and
  // tail queries drown in candidates.
  idx.min_ = std::numeric_limits<double>::infinity();
  idx.max_ = -std::numeric_limits<double>::infinity();
  for (const T& v : data) {
    const double d = static_cast<double>(v);
    if (d != d) continue;  // NaN: unordered, stays out of min/max
    idx.min_ = std::min(idx.min_, d);
    idx.max_ = std::max(idx.max_, d);
  }

  // Equi-depth bin edges from a finite-valued sample (FastBit picks one
  // representative key per bin; quantile edges achieve the same balanced
  // occupancy).  NaN would make the sort below UB and ±inf makes useless
  // edges; both land in the grid's edge bins regardless.
  std::vector<double> sample;
  const std::uint64_t sample_size = std::min<std::uint64_t>(
      std::max<std::uint64_t>(config.edge_sample, 2 * config.num_bins), n);
  sample.reserve(static_cast<std::size_t>(sample_size));
  if (sample_size >= n) {
    for (const T& v : data) {
      const double d = static_cast<double>(v);
      if (std::isfinite(d)) sample.push_back(d);
    }
  } else {
    Rng rng(config.seed);
    for (std::uint64_t i = 0; i < sample_size; ++i) {
      const double d = static_cast<double>(data[rng.bounded(n)]);
      if (std::isfinite(d)) sample.push_back(d);
    }
  }
  std::sort(sample.begin(), sample.end());

  const std::uint32_t want_bins = std::max<std::uint32_t>(
      1, std::min<std::uint32_t>(config.num_bins,
                                 static_cast<std::uint32_t>(n / 64)));
  std::vector<double> edges;
  // FastBit-style precision binning: one bin per `precision`-digit decimal
  // value between min and max (e.g. ..., 3.4, 3.5, 3.6, ... for
  // precision=2 above 1.0).  Query constants written with that many digits
  // then align exactly with bin edges, so far-tail range queries have tiny
  // candidate sets — the property the paper relies on ("precision = 2 ...
  // is sufficient for the queries evaluated").  Falls back to equi-depth
  // sample quantiles (with snapped interior edges) when the value range is
  // not strictly positive or the grid would be too fine.
  if (config.precision > 0 && idx.min_ > 0.0 && idx.max_ > idx.min_) {
    // Wide dynamic ranges would need too many grid points at the requested
    // precision; coarsen digit by digit rather than break edge alignment.
    for (std::uint32_t digits = config.precision;
         digits >= 1 && edges.size() < 2; --digits) {
      edges = detail::precision_grid(idx.min_, idx.max_, digits,
                                     /*max_edges=*/2048);
    }
  }
  if (edges.size() < 2 && !sample.empty()) {
    edges.clear();
    edges.reserve(want_bins + 1);
    for (std::uint32_t i = 0; i <= want_bins; ++i) {
      const std::size_t k = static_cast<std::size_t>(
          (static_cast<std::uint64_t>(i) * (sample.size() - 1)) / want_bins);
      double e = sample[k];
      if (config.precision > 0 && i > 0 && i < want_bins) {
        e = snap_to_precision(e, config.precision);
      }
      if (edges.empty() || e > edges.back()) edges.push_back(e);
    }
  }
  if (edges.size() < 2) {
    // Degenerate (near-constant or finite-value-free data): a single bin
    // covering everything.
    edges = sample.empty()
                ? std::vector<double>{0.0, 1.0}
                : std::vector<double>{sample.front(), sample.back() + 1.0};
  }
  idx.edges_ = std::move(edges);
  const std::size_t nbins = idx.edges_.size() - 1;

  // One pass: record each element's position in its bin's list, then turn
  // position lists into WAH vectors (far cheaper than appending a 0-bit to
  // every other bin per element).
  std::vector<std::vector<std::uint64_t>> positions(nbins);
  idx.edge_exact_.assign(nbins, 0);
  for (std::uint64_t i = 0; i < n; ++i) {
    const double v = static_cast<double>(data[i]);
    if (v != v) continue;  // NaN matches no interval: set no bit anywhere
    auto it = std::upper_bound(idx.edges_.begin(), idx.edges_.end(), v);
    std::size_t bin = it == idx.edges_.begin()
                          ? 0
                          : static_cast<std::size_t>(it - idx.edges_.begin()) - 1;
    bin = std::min(bin, nbins - 1);
    if (v == idx.edges_[bin]) idx.edge_exact_[bin] = 1;
    positions[bin].push_back(i);
  }

  idx.bins_.resize(nbins);
  for (std::size_t b = 0; b < nbins; ++b) {
    WahBitVector& bv = idx.bins_[b];
    std::uint64_t cursor = 0;
    for (const std::uint64_t pos : positions[b]) {
      bv.append_run(false, pos - cursor);
      bv.append_bit(true);
      cursor = pos + 1;
    }
    bv.append_run(false, n - cursor);
  }
  idx.count_ = n;
  idx.continuous_ = std::is_floating_point_v<T>;
  return idx;
}

namespace detail {

/// All `digits`-significant-decimal grid points covering [lo, hi], built
/// decade by decade so no floating-point drift accumulates.  Returns an
/// empty vector when more than `max_edges` points would be needed (caller
/// falls back to quantile edges).
std::vector<double> precision_grid(double lo, double hi, std::uint32_t digits,
                                   std::size_t max_edges) {
  std::vector<double> edges;
  const double steps_per_decade = std::pow(10.0, digits) -
                                  std::pow(10.0, digits - 1);
  const double decades = std::log10(hi / lo);
  if (decades * steps_per_decade > static_cast<double>(max_edges) * 8.0) {
    return edges;  // hopelessly fine; let the caller fall back
  }
  const int k_lo = static_cast<int>(std::floor(std::log10(lo)));
  const int k_hi = static_cast<int>(std::floor(std::log10(hi)));
  const std::int64_t mant_lo = static_cast<std::int64_t>(
      std::pow(10.0, digits - 1));
  const std::int64_t mant_hi = static_cast<std::int64_t>(std::pow(10.0, digits));
  for (int k = k_lo; k <= k_hi; ++k) {
    // Edge = mantissa * 10^(k-digits+1), computed as a DIVISION by an
    // exact power of ten when the exponent is negative: one correctly-
    // rounded operation, which is bit-identical to how decimal literals
    // like 2.9 parse — so query constants compare equal to edges.
    const int exponent = k - static_cast<int>(digits) + 1;
    const double scale = std::pow(10.0, std::abs(exponent));
    for (std::int64_t m = mant_lo; m < mant_hi; ++m) {
      const double e = exponent < 0 ? static_cast<double>(m) / scale
                                    : static_cast<double>(m) * scale;
      if (e > hi) {
        edges.push_back(e);  // one closing edge beyond max
        return edges;
      }
      // The first kept edge is the grid point at or just below lo; `next`
      // must use the same division form so the comparison is exact.
      const double next = exponent < 0 ? static_cast<double>(m + 1) / scale
                                       : static_cast<double>(m + 1) * scale;
      if (next <= lo) continue;
      if (edges.size() >= max_edges) return {};  // caller coarsens
      edges.push_back(e);
    }
  }
  edges.push_back(std::pow(10.0, k_hi + 1));
  return edges;
}

std::vector<double> thin_edges(std::vector<double> edges,
                               std::size_t max_edges) {
  if (edges.size() <= max_edges) return edges;
  const std::size_t stride = (edges.size() + max_edges - 1) / max_edges;
  std::vector<double> thinned;
  thinned.reserve(edges.size() / stride + 2);
  for (std::size_t i = 0; i < edges.size(); i += stride) {
    thinned.push_back(edges[i]);
  }
  if (thinned.back() != edges.back()) thinned.push_back(edges.back());
  return thinned;
}

}  // namespace detail

double snap_to_precision(double x, std::uint32_t digits) noexcept {
  if (x == 0.0 || !std::isfinite(x) || digits == 0) return x;
  const double magnitude = std::pow(
      10.0, std::floor(std::log10(std::fabs(x))) -
                (static_cast<double>(digits) - 1.0));
  return std::round(x / magnitude) * magnitude;
}

namespace {

/// Shared bin-classification logic: which bins does `q` fully cover (all
/// set bits are hits) and which does it merely touch (candidates)?
///
/// Bin b holds values in [edges[b], edges[b+1]) — left-closed — except the
/// last bin, which is closed above; the edge bins also absorb out-of-range
/// values, bounded by the exact observed min/max.  The half-open semantics
/// are exploited exactly: a bin whose upper edge equals a strict query
/// upper bound is still FULL (its values are strictly below the edge),
/// which is what makes precision-aligned query constants candidate-free on
/// that side.
void classify_bins(const std::vector<double>& edges, double min_v,
                   double max_v, bool continuous,
                   const std::vector<std::uint8_t>& edge_exact,
                   const ValueInterval& q,
                   std::vector<std::uint32_t>& full,
                   std::vector<std::uint32_t>& partial) {
  const std::size_t nbins = edges.size() - 1;
  for (std::size_t b = 0; b < nbins; ++b) {
    const bool last = b + 1 == nbins;
    // Exact content bounds.  Bin 0 absorbs everything below edges[0], so
    // its true lower bound is the observed minimum; the last bin stays
    // half-open at its grid edge unless out-of-grid values were absorbed,
    // in which case it closes at the observed maximum.
    const double lo = b == 0 ? std::min(min_v, edges[0]) : edges[b];
    const bool hi_open = !last || max_v < edges[nbins];
    const double hi = hi_open ? edges[b + 1] : max_v;

    // Overlap: does some v in [lo, hi) - or [lo, hi] when closed - satisfy
    // q?
    if (q.hi < lo || (q.hi == lo && !q.hi_inclusive)) continue;
    if (hi_open ? (q.lo >= hi)
                : (q.lo > hi || (q.lo == hi && !q.lo_inclusive))) {
      continue;
    }

    // Full: every v in the bin satisfies q.  For CONTINUOUS element types
    // an OPEN query lower bound equal to the bin edge still counts as
    // full: a float value exactly equal to a decimal edge constant is
    // measure-zero, and this is FastBit's documented guarantee that
    // constants with <= precision digits are answered from bitmaps alone.
    // The relaxation is only sound when NO indexed value actually sits on
    // the edge (edge_exact, recorded at build time): `x > edge` must not
    // report an at-edge value as a definite hit.  The edge holding the
    // exact observed minimum keeps strict semantics regardless (that value
    // is guaranteed present), as do integer-typed indexes (values sit
    // exactly on edges) and a closed last bin.
    const bool relax_open_lower =
        continuous && lo != min_v &&
        (b >= edge_exact.size() || edge_exact[b] == 0);
    const bool lower_ok =
        q.lo < lo || (q.lo == lo && (q.lo_inclusive || relax_open_lower));
    const bool upper_ok =
        hi_open ? (q.hi >= hi)
                : (q.hi > hi || (q.hi == hi && q.hi_inclusive));
    if (lower_ok && upper_ok) {
      full.push_back(static_cast<std::uint32_t>(b));
    } else {
      partial.push_back(static_cast<std::uint32_t>(b));
    }
  }
}

}  // namespace

IndexProbe BinnedBitmapIndex::probe(const ValueInterval& q) const {
  IndexProbe out;
  if (count_ == 0) return out;
  std::vector<std::uint32_t> full;
  std::vector<std::uint32_t> partial;
  classify_bins(edges_, min_, max_, continuous_, edge_exact_, q, full,
                partial);
  for (const std::uint32_t b : full) {
    bins_[b].for_each_set(
        [&out](std::uint64_t pos) { out.definite.push_back(pos); });
  }
  for (const std::uint32_t b : partial) {
    bins_[b].for_each_set(
        [&out](std::uint64_t pos) { out.candidates.push_back(pos); });
  }
  std::sort(out.definite.begin(), out.definite.end());
  std::sort(out.candidates.begin(), out.candidates.end());
  return out;
}

std::uint64_t BinnedBitmapIndex::compressed_bytes() const noexcept {
  std::uint64_t bytes = edges_.size() * sizeof(double) + 2 * sizeof(std::uint64_t);
  for (const WahBitVector& bv : bins_) bytes += bv.compressed_bytes();
  return bytes;
}

namespace {

/// Header body: count, min, max, edges, per-bin serialized sizes.
void write_header_body(SerialWriter& w, std::uint64_t count, double min_v,
                       double max_v, bool continuous,
                       const std::vector<double>& edges,
                       const std::vector<std::uint8_t>& edge_exact,
                       const std::vector<std::uint64_t>& bin_bytes) {
  w.put(count);
  w.put(min_v);
  w.put(max_v);
  w.put<std::uint8_t>(continuous ? 1 : 0);
  w.put_vector(edges);
  w.put_vector(edge_exact);
  w.put_vector(bin_bytes);
}

}  // namespace

void BinnedBitmapIndex::serialize(SerialWriter& w) const {
  std::vector<SerialWriter> bin_blobs;
  std::vector<std::uint64_t> bin_bytes;
  bin_blobs.reserve(bins_.size());
  bin_bytes.reserve(bins_.size());
  for (const WahBitVector& bv : bins_) {
    SerialWriter bw;
    bv.serialize(bw);
    bin_bytes.push_back(bw.size());
    bin_blobs.push_back(std::move(bw));
  }
  SerialWriter header;
  write_header_body(header, count_, min_, max_, continuous_, edges_,
                    edge_exact_, bin_bytes);
  w.put<std::uint64_t>(header.size());
  const auto header_bytes = header.take();
  w.put_raw(header_bytes);
  for (SerialWriter& bw : bin_blobs) {
    const auto blob = bw.take();
    w.put_raw(blob);
  }
}

std::uint64_t BinnedBitmapIndex::header_bytes() const {
  std::vector<std::uint64_t> bin_bytes(bins_.size(), 0);
  SerialWriter header;
  write_header_body(header, count_, min_, max_, continuous_, edges_,
                    edge_exact_, bin_bytes);
  return sizeof(std::uint64_t) + header.size();
}

Result<BinnedBitmapIndex> BinnedBitmapIndex::Deserialize(SerialReader& r) {
  BinnedBitmapIndex idx;
  std::uint64_t header_len = 0;
  PDC_RETURN_IF_ERROR(r.get(header_len));
  std::vector<std::uint64_t> bin_bytes;
  PDC_RETURN_IF_ERROR(r.get(idx.count_));
  PDC_RETURN_IF_ERROR(r.get(idx.min_));
  PDC_RETURN_IF_ERROR(r.get(idx.max_));
  std::uint8_t continuous = 0;
  PDC_RETURN_IF_ERROR(r.get(continuous));
  idx.continuous_ = continuous != 0;
  PDC_RETURN_IF_ERROR(r.get_vector(idx.edges_));
  PDC_RETURN_IF_ERROR(r.get_vector(idx.edge_exact_));
  PDC_RETURN_IF_ERROR(r.get_vector(bin_bytes));
  if (idx.count_ > 0 &&
      (idx.edges_.size() < 2 || bin_bytes.size() + 1 != idx.edges_.size() ||
       idx.edge_exact_.size() != bin_bytes.size())) {
    return Status::Corruption("bitmap index header inconsistent");
  }
  idx.bins_.reserve(bin_bytes.size());
  for (std::size_t b = 0; b < bin_bytes.size(); ++b) {
    PDC_ASSIGN_OR_RETURN(WahBitVector bv, WahBitVector::Deserialize(r));
    idx.bins_.push_back(std::move(bv));
  }
  return idx;
}

Result<PartitionedIndexView> PartitionedIndexView::ParseHeader(
    std::span<const std::uint8_t> prefix) {
  SerialReader r(prefix);
  std::uint64_t header_len = 0;
  PDC_RETURN_IF_ERROR(r.get(header_len));
  if (header_len > prefix.size() - sizeof(std::uint64_t)) {
    return Status::Corruption("index header prefix too short");
  }
  PartitionedIndexView view;
  PDC_RETURN_IF_ERROR(r.get(view.count_));
  PDC_RETURN_IF_ERROR(r.get(view.min_));
  PDC_RETURN_IF_ERROR(r.get(view.max_));
  std::uint8_t continuous = 0;
  PDC_RETURN_IF_ERROR(r.get(continuous));
  view.continuous_ = continuous != 0;
  PDC_RETURN_IF_ERROR(r.get_vector(view.edges_));
  PDC_RETURN_IF_ERROR(r.get_vector(view.edge_exact_));
  PDC_RETURN_IF_ERROR(r.get_vector(view.bin_bytes_));
  if (view.count_ > 0 &&
      (view.edges_.size() < 2 ||
       view.bin_bytes_.size() + 1 != view.edges_.size() ||
       view.edge_exact_.size() != view.bin_bytes_.size())) {
    return Status::Corruption("bitmap index header inconsistent");
  }
  view.bin_offset_.resize(view.bin_bytes_.size());
  std::uint64_t offset = sizeof(std::uint64_t) + header_len;
  for (std::size_t b = 0; b < view.bin_bytes_.size(); ++b) {
    view.bin_offset_[b] = offset;
    offset += view.bin_bytes_[b];
  }
  return view;
}

PartitionedIndexView::BinSelection PartitionedIndexView::select_bins(
    const ValueInterval& q) const {
  BinSelection selection;
  if (count_ == 0) return selection;
  classify_bins(edges_, min_, max_, continuous_, edge_exact_, q,
                selection.full, selection.partial);
  return selection;
}

Extent1D PartitionedIndexView::bin_extent(std::uint32_t b) const {
  return {bin_offset_[b], bin_bytes_[b]};
}

std::optional<std::uint32_t> PartitionedIndexView::delta_bin_of(
    double value) const noexcept {
  if (count_ == 0 || edges_.size() < 2 || bin_bytes_.empty()) {
    return std::nullopt;
  }
  // Strictly inside the observed range: the header's exact min/max stay
  // valid bounds, and NaN fails both comparisons.
  if (!(value > min_ && value < max_)) return std::nullopt;
  // Exactly on any grid edge: classify_bins' edge_exact relaxation (open
  // query bounds at an edge treated as aligned) would become unsound.
  const auto at = std::lower_bound(edges_.begin(), edges_.end(), value);
  if (at != edges_.end() && *at == value) return std::nullopt;
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), value);
  std::size_t bin =
      it == edges_.begin()
          ? 0
          : static_cast<std::size_t>(it - edges_.begin()) - 1;
  bin = std::min(bin, bin_bytes_.size() - 1);
  return static_cast<std::uint32_t>(bin);
}

Result<WahBitVector> PartitionedIndexView::DecodeBin(
    std::span<const std::uint8_t> bytes) {
  SerialReader r(bytes);
  return WahBitVector::Deserialize(r);
}

template BinnedBitmapIndex BinnedBitmapIndex::Build<float>(
    std::span<const float>, const IndexConfig&);
template BinnedBitmapIndex BinnedBitmapIndex::Build<double>(
    std::span<const double>, const IndexConfig&);
template BinnedBitmapIndex BinnedBitmapIndex::Build<std::int32_t>(
    std::span<const std::int32_t>, const IndexConfig&);
template BinnedBitmapIndex BinnedBitmapIndex::Build<std::uint32_t>(
    std::span<const std::uint32_t>, const IndexConfig&);
template BinnedBitmapIndex BinnedBitmapIndex::Build<std::int64_t>(
    std::span<const std::int64_t>, const IndexConfig&);
template BinnedBitmapIndex BinnedBitmapIndex::Build<std::uint64_t>(
    std::span<const std::uint64_t>, const IndexConfig&);

}  // namespace pdc::bitmap
