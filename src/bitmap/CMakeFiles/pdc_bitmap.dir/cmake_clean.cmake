file(REMOVE_RECURSE
  "CMakeFiles/pdc_bitmap.dir/binned_index.cc.o"
  "CMakeFiles/pdc_bitmap.dir/binned_index.cc.o.d"
  "CMakeFiles/pdc_bitmap.dir/wah.cc.o"
  "CMakeFiles/pdc_bitmap.dir/wah.cc.o.d"
  "libpdc_bitmap.a"
  "libpdc_bitmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdc_bitmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
