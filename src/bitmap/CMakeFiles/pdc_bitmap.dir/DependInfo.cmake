
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bitmap/binned_index.cc" "src/bitmap/CMakeFiles/pdc_bitmap.dir/binned_index.cc.o" "gcc" "src/bitmap/CMakeFiles/pdc_bitmap.dir/binned_index.cc.o.d"
  "/root/repo/src/bitmap/wah.cc" "src/bitmap/CMakeFiles/pdc_bitmap.dir/wah.cc.o" "gcc" "src/bitmap/CMakeFiles/pdc_bitmap.dir/wah.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/common/CMakeFiles/pdc_common.dir/DependInfo.cmake"
  "/root/repo/src/kernels/CMakeFiles/pdc_kernels.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
