file(REMOVE_RECURSE
  "libpdc_bitmap.a"
)
