# Empty compiler generated dependencies file for pdc_bitmap.
# This may be replaced when dependencies are built.
