#include "bitmap/delta_wah.h"

namespace pdc::bitmap {

WahBitVector bits_at(std::span<const std::uint64_t> positions,
                     std::uint64_t length, bool invert) {
  WahBitVector bv;
  std::uint64_t cursor = 0;
  for (const std::uint64_t pos : positions) {
    bv.append_run(invert, pos - cursor);
    bv.append_bit(!invert);
    cursor = pos + 1;
  }
  bv.append_run(invert, length - cursor);
  return bv;
}

Result<WahBitVector> combine_base_delta(const WahBitVector& base,
                                        std::span<const std::uint64_t> dirty,
                                        std::span<const std::uint64_t> bin_delta) {
  const std::uint64_t n = base.size();
  PDC_ASSIGN_OR_RETURN(
      WahBitVector masked,
      WahBitVector::And(base, bits_at(dirty, n, /*invert=*/true)));
  if (bin_delta.empty()) return masked;
  return WahBitVector::Or(masked, bits_at(bin_delta, n));
}

}  // namespace pdc::bitmap
