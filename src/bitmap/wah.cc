#include "bitmap/wah.h"

#include <algorithm>
#include <bit>

#include "kernels/kernels.h"

namespace pdc::bitmap {
namespace {

/// Streaming decoder over the complete (compressed) groups of a vector.
class RunDecoder {
 public:
  explicit RunDecoder(std::span<const std::uint32_t> words) : words_(words) {}

  /// Make sure a current run is loaded; false when exhausted.
  bool ensure() {
    while (groups_left_ == 0) {
      if (i_ >= words_.size()) return false;
      const std::uint32_t w = words_[i_++];
      if (w & 0x80000000u) {
        is_fill_ = true;
        fill_bit_ = (w & 0x40000000u) != 0;
        groups_left_ = w & 0x3FFFFFFFu;
      } else {
        is_fill_ = false;
        literal_ = w;
        groups_left_ = 1;
      }
    }
    return true;
  }

  void consume(std::uint64_t n) { groups_left_ -= n; }

  [[nodiscard]] bool is_fill() const { return is_fill_; }
  [[nodiscard]] bool fill_bit() const { return fill_bit_; }
  [[nodiscard]] std::uint64_t groups_left() const { return groups_left_; }
  [[nodiscard]] std::uint32_t literal_group() const {
    return is_fill_ ? (fill_bit_ ? 0x7FFFFFFFu : 0u) : literal_;
  }

  /// Number of consecutive literal words starting at the current run
  /// (current included); 0 when the current run is a fill.  Only valid
  /// after ensure() returned true.
  [[nodiscard]] std::size_t literal_stretch() const {
    if (is_fill_) return 0;
    std::size_t j = i_;  // the current literal lives at words_[i_ - 1]
    while (j < words_.size() && (words_[j] & 0x80000000u) == 0) ++j;
    return j - (i_ - 1);
  }

  [[nodiscard]] const std::uint32_t* literal_ptr() const {
    return words_.data() + (i_ - 1);
  }

  /// Consume the current literal plus the next `k - 1` literal words.
  void skip_literal_stretch(std::size_t k) {
    groups_left_ = 0;
    i_ += k - 1;
  }

 private:
  std::span<const std::uint32_t> words_;
  std::size_t i_ = 0;
  bool is_fill_ = false;
  bool fill_bit_ = false;
  std::uint32_t literal_ = 0;
  std::uint64_t groups_left_ = 0;
};

}  // namespace

void WahBitVector::push_group(std::uint32_t literal) {
  literal &= kLiteralMask;
  if (literal == 0 || literal == kLiteralMask) {
    const bool bit = literal != 0;
    // Try to extend a trailing fill of the same polarity.
    if (!words_.empty()) {
      std::uint32_t& last = words_.back();
      if ((last & kFillFlag) && ((last & kFillBit) != 0) == bit &&
          (last & kMaxFillGroups) < kMaxFillGroups) {
        ++last;
        return;
      }
    }
    words_.push_back(kFillFlag | (bit ? kFillBit : 0u) | 1u);
  } else {
    words_.push_back(literal);
  }
}

void WahBitVector::append_bit(bool bit) {
  if (bit) {
    active_ |= 1u << active_bits_;
    ++num_set_;
  }
  ++num_bits_;
  if (++active_bits_ == kGroupBits) {
    push_group(active_);
    active_ = 0;
    active_bits_ = 0;
  }
}

void WahBitVector::append_run(bool bit, std::uint64_t count) {
  // Fill the partial group first.
  while (count > 0 && active_bits_ != 0) {
    append_bit(bit);
    --count;
  }
  // Whole groups as fills.
  std::uint64_t groups = count / kGroupBits;
  count -= groups * kGroupBits;
  num_bits_ += groups * kGroupBits;
  if (bit) num_set_ += groups * kGroupBits;
  while (groups > 0) {
    // Extend trailing fill if possible, else start a new fill word.
    std::uint64_t room = 0;
    if (!words_.empty()) {
      const std::uint32_t last = words_.back();
      if ((last & kFillFlag) && ((last & kFillBit) != 0) == bit) {
        room = kMaxFillGroups - (last & kMaxFillGroups);
      }
    }
    if (room > 0) {
      const std::uint64_t take = std::min(room, groups);
      words_.back() += static_cast<std::uint32_t>(take);
      groups -= take;
    } else {
      const std::uint64_t take = std::min<std::uint64_t>(kMaxFillGroups, groups);
      words_.push_back(kFillFlag | (bit ? kFillBit : 0u) |
                       static_cast<std::uint32_t>(take));
      groups -= take;
    }
  }
  // Trailing partial bits.
  while (count > 0) {
    append_bit(bit);
    --count;
  }
}

void WahBitVector::for_each_set(
    const std::function<void(std::uint64_t)>& fn) const {
  std::uint64_t pos = 0;
  for (const std::uint32_t w : words_) {
    if (w & kFillFlag) {
      const std::uint64_t bits =
          static_cast<std::uint64_t>(w & kMaxFillGroups) * kGroupBits;
      if (w & kFillBit) {
        for (std::uint64_t i = 0; i < bits; ++i) fn(pos + i);
      }
      pos += bits;
    } else {
      std::uint32_t bits = w;
      while (bits != 0) {
        fn(pos + static_cast<std::uint64_t>(std::countr_zero(bits)));
        bits &= bits - 1;
      }
      pos += kGroupBits;
    }
  }
  std::uint32_t bits = active_;
  while (bits != 0) {
    fn(pos + static_cast<std::uint64_t>(std::countr_zero(bits)));
    bits &= bits - 1;
  }
}

std::vector<std::uint64_t> WahBitVector::to_positions() const {
  std::vector<std::uint64_t> out;
  out.reserve(static_cast<std::size_t>(num_set_));
  for_each_set([&out](std::uint64_t p) { out.push_back(p); });
  return out;
}

void WahBitVector::append_set_positions(std::uint64_t base,
                                        std::uint64_t clip_lo,
                                        std::uint64_t clip_hi,
                                        std::vector<std::uint64_t>& out) const {
  kernels::wah_expand(words_, active_, active_bits_, base, clip_lo, clip_hi,
                      out);
}

void WahBitVector::combine_literal_stretch(std::span<const std::uint32_t> a,
                                           std::span<const std::uint32_t> b,
                                           bool is_or) {
  constexpr std::size_t kChunk = 512;
  std::uint32_t buf[kChunk];
  for (std::size_t off = 0; off < a.size(); off += kChunk) {
    const std::size_t m = std::min(kChunk, a.size() - off);
    kernels::wah_combine_literals(a.data() + off, b.data() + off, buf, m,
                                  is_or);
    // Plain result words splice in bulk; all-0/all-1 results must go
    // through push_group so fills coalesce canonically.
    std::size_t s = 0;
    while (s < m) {
      if (buf[s] == 0 || buf[s] == kLiteralMask) {
        push_group(buf[s]);
        num_bits_ += kGroupBits;
        num_set_ += static_cast<std::uint32_t>(std::popcount(buf[s]));
        ++s;
      } else {
        std::size_t e = s + 1;
        while (e < m && buf[e] != 0 && buf[e] != kLiteralMask) ++e;
        words_.insert(words_.end(), buf + s, buf + e);
        num_bits_ += static_cast<std::uint64_t>(e - s) * kGroupBits;
        num_set_ += kernels::popcount_words(buf + s, e - s);
        s = e;
      }
    }
  }
}

template <bool kIsOr>
Result<WahBitVector> WahBitVector::Combine(const WahBitVector& a,
                                           const WahBitVector& b) {
  if (a.num_bits_ != b.num_bits_) {
    return Status::InvalidArgument("WAH combine: size mismatch");
  }
  WahBitVector out;
  RunDecoder da(a.words_);
  RunDecoder db(b.words_);
  while (da.ensure() && db.ensure()) {
    if (da.is_fill() && db.is_fill()) {
      const std::uint64_t n = std::min(da.groups_left(), db.groups_left());
      const bool bit = kIsOr ? (da.fill_bit() || db.fill_bit())
                             : (da.fill_bit() && db.fill_bit());
      out.append_run(bit, n * kGroupBits);
      da.consume(n);
      db.consume(n);
    } else {
      // Both streams sitting on literal runs: AND/OR the whole aligned
      // stretch through the SIMD kernel instead of word-at-a-time.
      const std::size_t stretch =
          std::min(da.literal_stretch(), db.literal_stretch());
      if (stretch >= 2) {
        out.combine_literal_stretch({da.literal_ptr(), stretch},
                                    {db.literal_ptr(), stretch}, kIsOr);
        da.skip_literal_stretch(stretch);
        db.skip_literal_stretch(stretch);
        continue;
      }
      const std::uint32_t g =
          kIsOr ? (da.literal_group() | db.literal_group())
                : (da.literal_group() & db.literal_group());
      out.push_group(g);
      out.num_bits_ += kGroupBits;
      out.num_set_ += std::popcount(g);
      da.consume(1);
      db.consume(1);
    }
  }
  if (da.ensure() || db.ensure()) {
    return Status::Internal("WAH combine: group streams diverged");
  }
  // Combine the partial trailing groups (equal lengths by the size check).
  out.active_ = kIsOr ? (a.active_ | b.active_) : (a.active_ & b.active_);
  out.active_bits_ = a.active_bits_;
  out.num_bits_ += a.active_bits_;
  out.num_set_ += std::popcount(out.active_);
  return out;
}

Result<WahBitVector> WahBitVector::And(const WahBitVector& a,
                                       const WahBitVector& b) {
  return Combine<false>(a, b);
}

Result<WahBitVector> WahBitVector::Or(const WahBitVector& a,
                                      const WahBitVector& b) {
  return Combine<true>(a, b);
}

void WahBitVector::serialize(SerialWriter& w) const {
  w.put(num_bits_);
  w.put(num_set_);
  w.put(active_);
  w.put(active_bits_);
  w.put_vector(words_);
}

void WahBitVector::serialize(GatherWriter& w) const {
  w.put(num_bits_);
  w.put(num_set_);
  w.put(active_);
  w.put(active_bits_);
  w.put_vector_ref(std::span<const std::uint32_t>(words_));
}

Status WahBitVector::check_invariants() const {
  std::uint64_t groups = 0;
  std::uint64_t set = 0;
  bool prev_fill = false;
  bool prev_fill_bit = false;
  bool prev_fill_full = false;
  for (const std::uint32_t w : words_) {
    if (w & kFillFlag) {
      const std::uint32_t count = w & kMaxFillGroups;
      if (count == 0) return Status::Corruption("WAH: zero-length fill word");
      const bool bit = (w & kFillBit) != 0;
      if (prev_fill && prev_fill_bit == bit && !prev_fill_full) {
        return Status::Corruption("WAH: uncoalesced same-polarity fills");
      }
      groups += count;
      if (bit) set += static_cast<std::uint64_t>(count) * kGroupBits;
      prev_fill = true;
      prev_fill_bit = bit;
      prev_fill_full = count == kMaxFillGroups;
    } else {
      if (w == 0 || w == kLiteralMask) {
        return Status::Corruption("WAH: literal word should be a fill");
      }
      groups += 1;
      set += static_cast<std::uint32_t>(std::popcount(w));
      prev_fill = false;
    }
  }
  if (active_bits_ >= kGroupBits) {
    return Status::Corruption("WAH: active group overflows 31 bits");
  }
  if ((active_ & ~kLiteralMask) != 0 || (active_ >> active_bits_) != 0) {
    return Status::Corruption("WAH: active bits beyond active length");
  }
  set += static_cast<std::uint32_t>(std::popcount(active_));
  if (groups * kGroupBits + active_bits_ != num_bits_) {
    return Status::Corruption("WAH: bit-count accounting mismatch");
  }
  if (set != num_set_) {
    return Status::Corruption("WAH: set-bit accounting mismatch");
  }
  return Status::Ok();
}

Result<WahBitVector> WahBitVector::Deserialize(SerialReader& r) {
  WahBitVector v;
  PDC_RETURN_IF_ERROR(r.get(v.num_bits_));
  PDC_RETURN_IF_ERROR(r.get(v.num_set_));
  PDC_RETURN_IF_ERROR(r.get(v.active_));
  PDC_RETURN_IF_ERROR(r.get(v.active_bits_));
  PDC_RETURN_IF_ERROR(r.get_vector(v.words_));
  if (v.active_bits_ >= kGroupBits || (v.active_ & ~kLiteralMask) != 0) {
    return Status::Corruption("WAH trailer invalid");
  }
  return v;
}

}  // namespace pdc::bitmap
