// Word-Aligned Hybrid (WAH) compressed bitvector.
//
// The compression scheme used by FastBit (Wu et al.), re-implemented from
// scratch: a sequence of 32-bit words where
//   - a *literal* word (MSB = 0) carries 31 raw bitmap bits, and
//   - a *fill* word (MSB = 1) carries a fill bit (bit 30) and a 30-bit
//     repeat count measured in 31-bit groups.
// Logical AND/OR operate directly on the compressed form, skipping over
// fills without decompression.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/serial.h"
#include "common/status.h"

namespace pdc::bitmap {

class WahBitVector {
 public:
  /// Append a single bit at the end.
  void append_bit(bool bit);

  /// Append `count` copies of `bit` (fast path for long runs).
  void append_run(bool bit, std::uint64_t count);

  /// Logical length in bits.
  [[nodiscard]] std::uint64_t size() const noexcept { return num_bits_; }

  /// Number of set bits.
  [[nodiscard]] std::uint64_t count() const noexcept { return num_set_; }

  /// Compressed footprint in bytes (words + trailer), as stored on disk.
  [[nodiscard]] std::uint64_t compressed_bytes() const noexcept {
    return (words_.size() + 1) * sizeof(std::uint32_t) + 2 * sizeof(std::uint64_t);
  }

  /// Invoke `fn(position)` for every set bit in ascending order.
  void for_each_set(const std::function<void(std::uint64_t)>& fn) const;

  /// All set-bit positions, ascending.
  [[nodiscard]] std::vector<std::uint64_t> to_positions() const;

  /// Append `base + position` for every set bit whose absolute position
  /// `base + position` lies in [clip_lo, clip_hi), ascending.  The
  /// kernel-backed bulk form of for_each_set + filter (the bin-decode hot
  /// path); SIMD/scalar per the active kernels backend, bit-identical.
  void append_set_positions(std::uint64_t base, std::uint64_t clip_lo,
                            std::uint64_t clip_hi,
                            std::vector<std::uint64_t>& out) const;

  /// Compressed word stream (complete groups), borrowed.  Exposed for the
  /// kernel differential tests and zero-copy serialization.
  [[nodiscard]] std::span<const std::uint32_t> words() const noexcept {
    return words_;
  }
  [[nodiscard]] std::uint32_t active_word() const noexcept { return active_; }
  [[nodiscard]] std::uint32_t active_bit_count() const noexcept {
    return active_bits_;
  }

  /// Bitwise AND / OR of two vectors of equal logical size.
  static Result<WahBitVector> And(const WahBitVector& a, const WahBitVector& b);
  static Result<WahBitVector> Or(const WahBitVector& a, const WahBitVector& b);

  void serialize(SerialWriter& w) const;
  /// Zero-copy serialize: the word payload rides as a borrowed span until
  /// the writer assembles.  Byte-identical to the SerialWriter overload;
  /// `*this` must outlive `w.take()`.
  void serialize(GatherWriter& w) const;
  static Result<WahBitVector> Deserialize(SerialReader& r);

  /// Debug invariant check (QueryCheck harness): word/bit/set-count
  /// accounting, fill canonicalization (no zero-length or uncoalesced
  /// same-polarity fills, no all-0/all-1 literal words) and trailer
  /// consistency.  Ok() for every vector produced by append_bit/append_run
  /// or And/Or; Corruption with a description otherwise.
  [[nodiscard]] Status check_invariants() const;

  bool operator==(const WahBitVector&) const = default;

 private:
  static constexpr std::uint32_t kGroupBits = 31;
  static constexpr std::uint32_t kFillFlag = 0x80000000u;
  static constexpr std::uint32_t kFillBit = 0x40000000u;
  static constexpr std::uint32_t kMaxFillGroups = 0x3FFFFFFFu;
  static constexpr std::uint32_t kLiteralMask = 0x7FFFFFFFu;

  /// Append one complete 31-bit group, coalescing fills.
  void push_group(std::uint32_t literal);

  /// Bulk-append the AND/OR of `n` literal words (kernel-backed): plain
  /// result words are inserted in one splice, all-0/all-1 results go
  /// through push_group so fills stay canonical.
  void combine_literal_stretch(std::span<const std::uint32_t> a,
                               std::span<const std::uint32_t> b, bool is_or);

  template <bool kIsOr>
  static Result<WahBitVector> Combine(const WahBitVector& a,
                                      const WahBitVector& b);

  std::vector<std::uint32_t> words_;  ///< complete groups, compressed
  std::uint32_t active_ = 0;          ///< partial trailing group (literal bits)
  std::uint32_t active_bits_ = 0;     ///< bits used in active_ (0..30)
  std::uint64_t num_bits_ = 0;
  std::uint64_t num_set_ = 0;
};

}  // namespace pdc::bitmap
