// Binned bitmap index over one region's values (FastBit-style, §III-D4).
//
// Values are partitioned into bins by value range (equi-depth edges chosen
// from a sample, mirroring FastBit's `precision=2` binning); each bin owns a
// WAH-compressed bitvector with one bit per element.  A range query then
// decomposes into
//   - bins fully inside the query interval: every set bit is a definite hit,
//   - the (at most two) boundary bins: set bits are *candidates* whose raw
//     values must be checked — the only data the query has to read.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "bitmap/wah.h"
#include "common/interval.h"
#include "common/serial.h"
#include "common/status.h"
#include "common/types.h"

namespace pdc::bitmap {

/// Index build parameters.
struct IndexConfig {
  /// Number of value bins (upper bound; clamped to num_elements/64 so tiny
  /// regions keep useful occupancy).  Fewer bins shrink the index but widen
  /// the candidate range.  The default approximates FastBit's precision=2,
  /// which yields O(100) distinct two-digit bin edges.
  std::uint32_t num_bins = 128;
  /// Sample size used to place equi-depth bin edges.
  std::uint64_t edge_sample = 4096;
  /// FastBit-style precision: snap bin edges to this many significant
  /// decimal digits, so query constants written with few digits (the
  /// paper's "2.1 < Energy < 2.2") align exactly with edges and need
  /// little or no candidate checking.  0 disables snapping.
  std::uint32_t precision = 2;
  std::uint64_t seed = 0xB17B17ULL;
};

/// Round `x` to `digits` significant decimal digits (FastBit precision).
[[nodiscard]] double snap_to_precision(double x, std::uint32_t digits) noexcept;

namespace detail {
/// All `digits`-significant-decimal grid points covering [lo, hi]
/// (0 < lo < hi), or empty if more than `max_edges` would be needed.
[[nodiscard]] std::vector<double> precision_grid(double lo, double hi,
                                                 std::uint32_t digits,
                                                 std::size_t max_edges);
/// Subsample `edges` down to at most `max_edges`, keeping the last edge.
[[nodiscard]] std::vector<double> thin_edges(std::vector<double> edges,
                                             std::size_t max_edges);
}  // namespace detail

/// Result of evaluating an interval against the index.
struct IndexProbe {
  /// Element positions (region-local) guaranteed to match.
  std::vector<std::uint64_t> definite;
  /// Element positions that MAY match; caller must check raw values.
  std::vector<std::uint64_t> candidates;
};

class BinnedBitmapIndex {
 public:
  BinnedBitmapIndex() = default;

  /// Build the index over one region's values.
  template <PdcElement T>
  static BinnedBitmapIndex Build(std::span<const T> data,
                                 const IndexConfig& config = {});

  /// Decompose a query interval into definite hits and candidates.
  [[nodiscard]] IndexProbe probe(const ValueInterval& q) const;

  /// Number of elements indexed.
  [[nodiscard]] std::uint64_t num_elements() const noexcept { return count_; }
  [[nodiscard]] std::size_t num_bins() const noexcept { return bins_.size(); }

  /// On-disk footprint (what the query pays to load the index).
  [[nodiscard]] std::uint64_t compressed_bytes() const noexcept;

  /// Partitioned wire format: [u64 header_len][header][bin 0]...[bin n-1].
  /// The header alone suffices to decide which bins a query needs (see
  /// PartitionedIndexView), so readers can fetch a small prefix plus only
  /// the overlapping bins — the way FastBit avoids loading whole indexes.
  void serialize(SerialWriter& w) const;
  static Result<BinnedBitmapIndex> Deserialize(SerialReader& r);

  /// Size in bytes of [u64 header_len][header] for this index.
  [[nodiscard]] std::uint64_t header_bytes() const;

 private:
  /// `edges_` has num_bins+1 ascending entries; bin i covers
  /// [edges_[i], edges_[i+1]) except the last bin, which is closed above.
  /// The first/last bins additionally absorb values outside the sampled
  /// edge range, bounded by the exact observed min_/max_.
  std::vector<double> edges_;
  std::vector<WahBitVector> bins_;
  std::uint64_t count_ = 0;
  double min_ = 0.0;  ///< exact observed minimum
  double max_ = 0.0;  ///< exact observed maximum
  /// Floating-point element type: open query bounds equal to a bin edge
  /// may be treated as aligned (value-at-edge is measure-zero).  Integer
  /// indexes keep strict edge semantics.
  bool continuous_ = true;
  /// edge_exact_[b] != 0 when some indexed value sits EXACTLY on bin b's
  /// left edge.  The measure-zero relaxation above is unsound for such
  /// bins (`x > edge` must not report the at-edge value as a definite
  /// hit), so they keep strict open-bound semantics.
  std::vector<std::uint8_t> edge_exact_;
};

/// Header-only view over a serialized index: plans which bins a query
/// needs and where their bytes live, without touching bin data.
class PartitionedIndexView {
 public:
  /// Parse from the first `header_bytes` of a serialized index.
  static Result<PartitionedIndexView> ParseHeader(
      std::span<const std::uint8_t> prefix);

  /// Which bins a query interval needs.
  struct BinSelection {
    std::vector<std::uint32_t> full;     ///< all set bits are definite hits
    std::vector<std::uint32_t> partial;  ///< set bits are candidates
  };
  [[nodiscard]] BinSelection select_bins(const ValueInterval& q) const;

  /// Byte extent of bin `b` within the serialized index blob.
  [[nodiscard]] Extent1D bin_extent(std::uint32_t b) const;

  /// Decode one bin previously located via bin_extent().
  static Result<WahBitVector> DecodeBin(std::span<const std::uint8_t> bytes);

  /// Bin a freshly-written value would fall into under this header's edge
  /// grid, for delta-WAH sidecar maintenance.  Returns nullopt when the
  /// assignment would be unsafe and the region index must go stale
  /// instead: NaN, values at or outside the observed [min, max] (the
  /// header's exact bounds would no longer bound the data), or values
  /// sitting exactly on a bin edge (the edge_exact relaxation recorded at
  /// build time would become unsound).
  [[nodiscard]] std::optional<std::uint32_t> delta_bin_of(
      double value) const noexcept;

  [[nodiscard]] std::uint64_t num_elements() const noexcept { return count_; }
  [[nodiscard]] std::size_t num_bins() const noexcept {
    return bin_bytes_.size();
  }

 private:
  std::uint64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  bool continuous_ = true;
  std::vector<double> edges_;
  std::vector<std::uint8_t> edge_exact_;   ///< value-on-edge flags (see index)
  std::vector<std::uint64_t> bin_bytes_;   ///< serialized size per bin
  std::vector<std::uint64_t> bin_offset_;  ///< absolute offset in the blob
};

extern template BinnedBitmapIndex BinnedBitmapIndex::Build<float>(
    std::span<const float>, const IndexConfig&);
extern template BinnedBitmapIndex BinnedBitmapIndex::Build<double>(
    std::span<const double>, const IndexConfig&);
extern template BinnedBitmapIndex BinnedBitmapIndex::Build<std::int32_t>(
    std::span<const std::int32_t>, const IndexConfig&);
extern template BinnedBitmapIndex BinnedBitmapIndex::Build<std::uint32_t>(
    std::span<const std::uint32_t>, const IndexConfig&);
extern template BinnedBitmapIndex BinnedBitmapIndex::Build<std::int64_t>(
    std::span<const std::int64_t>, const IndexConfig&);
extern template BinnedBitmapIndex BinnedBitmapIndex::Build<std::uint64_t>(
    std::span<const std::uint64_t>, const IndexConfig&);

}  // namespace pdc::bitmap
