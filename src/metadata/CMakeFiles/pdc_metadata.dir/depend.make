# Empty dependencies file for pdc_metadata.
# This may be replaced when dependencies are built.
