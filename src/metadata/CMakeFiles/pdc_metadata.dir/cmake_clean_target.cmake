file(REMOVE_RECURSE
  "libpdc_metadata.a"
)
