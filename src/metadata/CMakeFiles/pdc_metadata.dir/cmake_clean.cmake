file(REMOVE_RECURSE
  "CMakeFiles/pdc_metadata.dir/meta_store.cc.o"
  "CMakeFiles/pdc_metadata.dir/meta_store.cc.o.d"
  "libpdc_metadata.a"
  "libpdc_metadata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdc_metadata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
