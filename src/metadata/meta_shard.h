// Virtual-node partitioning of the metadata index across QueryServers
// (the DART placement model over the kumofs consistent-hash + N-replica
// idiom).
//
// The key space is split into *vnodes* by (attribute, lane, bucket):
//   - kPrefix lane, bucketed by the FIRST byte of the value string — owns
//     exact string lookups and prefix (`plate=53*`) walks;
//   - kSuffix lane, bucketed by the LAST byte — owns suffix (`*DEG`)
//     walks over the reversed-key twin trie;
//   - kNumeric lane, one bucket per attribute — owns the ordered numeric
//     map for equality/range conjuncts.
// Every query kind therefore maps to a small, statically computable vnode
// set: the client fans out to the owning servers only, never broadcasts.
// An empty affix pattern is the one degenerate case — it fans over all 256
// buckets of the attribute's lane.
//
// Placement is rendezvous hashing: replica set of vnode v = the
// `replicas` highest-hash servers under h(v, server).  Deterministic for a
// fixed (num_servers, vnodes, replicas) triple, and moving from S to S+1
// servers relocates only the vnodes the new server wins — consistent-hash
// behavior without a ring structure to maintain.
//
// A MetaShard is one server's resident partition: the AffixTrie postings
// of every vnode whose replica set contains the server, plus per-vnode
// epochs (bumped on every applied update batch) and a per-vnode high-water
// update sequence number (exactly-once application under retries, reroutes
// and bus duplication — mirroring TransferWriteRequest::write_seq).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/cost_model.h"
#include "common/status.h"
#include "common/types.h"
#include "metadata/affix_trie.h"
#include "metadata/meta_store.h"

namespace pdc::meta {

/// Which index lane a vnode bucket belongs to.
enum class MetaLane : std::uint8_t { kPrefix = 0, kSuffix = 1, kNumeric = 2 };

/// Ring geometry shared by the client router and every shard.
struct MetaRingConfig {
  std::uint32_t vnodes = 64;    ///< hash-space partitions
  std::uint32_t replicas = 2;   ///< copies of each vnode (clamped to servers)
  std::uint32_t num_servers = 1;
};

/// Stable 64-bit FNV-1a (placement must not depend on std::hash).
std::uint64_t meta_hash64(std::string_view bytes) noexcept;

/// The vnode owning (attribute, lane, bucket).
std::uint32_t vnode_of(std::string_view attribute, MetaLane lane,
                       std::uint8_t bucket, const MetaRingConfig& ring);

/// Replica servers of `vnode`, by descending rendezvous hash (the first
/// entry is the primary).  Size = min(replicas, num_servers).
std::vector<ServerId> replicas_of(std::uint32_t vnode,
                                  const MetaRingConfig& ring);

/// The vnodes a condition must consult (deduplicated, ascending).  Empty
/// means the condition provably matches nothing (e.g. a double-valued
/// affix pattern or a non-kEQ string condition) — not a broadcast.
std::vector<std::uint32_t> vnodes_of_condition(const MetaCondition& condition,
                                               const MetaRingConfig& ring);

/// The vnodes an (attribute, value) assignment is indexed into
/// (deduplicated, ascending) — the replicated-update routing set.
std::vector<std::uint32_t> vnodes_of_value(std::string_view attribute,
                                           const MetaValue& value,
                                           const MetaRingConfig& ring);

/// The numeric-lane fold of a value: doubles as-is, int64 cast to double
/// (the SAME fold MetaStore's ordered index applies, so both sides of the
/// differential agree on int64s straddling 2^53); nullopt for strings.
std::optional<double> meta_numeric_fold(const MetaValue& value);

/// One server's metadata partition.  Thread-safe (one mutex; shard calls
/// are micro-operations compared to data-path evaluation).
class MetaShard {
 public:
  MetaShard(const MetaRingConfig& ring, ServerId self);

  [[nodiscard]] const MetaRingConfig& ring() const noexcept { return ring_; }
  [[nodiscard]] ServerId self() const noexcept { return self_; }
  [[nodiscard]] bool owns(std::uint32_t vnode) const;

  /// Index one attribute assignment into every owned vnode it touches
  /// (build path; no epoch/seq bookkeeping).
  void index_attribute(ObjectId object, std::string_view attribute,
                       const MetaValue& value);

  /// Apply one replicated update batch to `vnode` exactly once: a seq at
  /// or below the vnode's high-water mark is acknowledged as a duplicate
  /// (`applied=false`) without re-indexing.  Each op replaces `old_value`
  /// (if any) with `new_value` in this vnode's lanes; the vnode epoch is
  /// bumped on application.  Returns the vnode epoch after the call.
  struct UpdateOp {
    ObjectId object = kInvalidObjectId;
    std::string attribute;
    std::optional<MetaValue> old_value;
    MetaValue new_value;
  };
  Result<std::uint64_t> apply(std::uint32_t vnode, std::uint64_t seq,
                              const std::vector<UpdateOp>& ops,
                              bool& applied);

  /// Evaluate one condition over the listed vnodes (all must be owned;
  /// FailedPrecondition otherwise, so a mis-routed query can never return
  /// a silently truncated posting list).  Appends sorted, deduplicated
  /// ids, records per-vnode epochs into `epochs`, charges trie probes and
  /// posting output to `ledger`, and accumulates the probe count.
  Status query(const MetaCondition& condition,
               std::span<const std::uint32_t> vnodes,
               std::vector<ObjectId>& out,
               std::vector<std::pair<std::uint32_t, std::uint64_t>>& epochs,
               CostLedger& ledger, std::uint64_t& probes) const;

  /// Evaluate a FUSED numeric conjunction: `interval` is the intersection
  /// of every range conjunct on `attribute` (they all route to the same
  /// numeric vnode, so the server sees them together).  Same ownership /
  /// epoch / ledger contract as query(), but one both-sided ordered-map
  /// walk instead of one half-open materialization per conjunct — what
  /// keeps `3502 <= PLATE <= 3504` output-bound at 1M objects.
  Status query_interval(
      std::string_view attribute, const ValueInterval& interval,
      std::span<const std::uint32_t> vnodes, std::vector<ObjectId>& out,
      std::vector<std::pair<std::uint32_t, std::uint64_t>>& epochs,
      CostLedger& ledger, std::uint64_t& probes) const;

  /// Current epoch of an owned vnode (1 until the first update).
  [[nodiscard]] std::uint64_t epoch(std::uint32_t vnode) const;
  [[nodiscard]] std::uint64_t num_postings() const;

 private:
  struct Vnode {
    AffixTrie trie;
    std::uint64_t epoch = 1;
    std::uint64_t applied_seq = 0;
  };

  /// Insert/remove `value` into exactly the lanes of `vnode` it maps to.
  void index_into(Vnode& vn, std::uint32_t vnode, ObjectId object,
                  std::string_view attribute, const MetaValue& value,
                  bool insert);

  MetaRingConfig ring_;
  ServerId self_;
  mutable std::mutex mu_;
  std::map<std::uint32_t, Vnode> vnodes_;  ///< owned vnodes only
};

/// Modeled cost of one shard-side probe/posting touch.  Chosen so a trie
/// walk costs microseconds while a million-object linear scan costs
/// milliseconds — the Fig. 5 gap the bench gate pins.
inline constexpr double kMetaProbeSeconds = 2.0e-7;

}  // namespace pdc::meta
