#include "metadata/meta_store.h"

#include <algorithm>
#include <mutex>

namespace pdc::meta {
namespace {

std::optional<double> numeric_value(const MetaValue& v) {
  if (const auto* d = std::get_if<double>(&v)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    return static_cast<double>(*i);
  }
  return std::nullopt;
}

void erase_id(std::vector<ObjectId>& ids, ObjectId id) {
  ids.erase(std::remove(ids.begin(), ids.end(), id), ids.end());
}

void insert_sorted(std::vector<ObjectId>& ids, ObjectId id) {
  const auto it = std::lower_bound(ids.begin(), ids.end(), id);
  if (it == ids.end() || *it != id) ids.insert(it, id);
}

}  // namespace

void MetaStore::set_attribute(ObjectId object, std::string_view attribute,
                              MetaValue value) {
  std::unique_lock lock(mu_);
  const std::string attr(attribute);
  auto& attrs = per_object_[object];
  AttrIndex& index = indexes_[attr];

  // Drop the old index entry if overwriting.
  const auto old = attrs.find(attr);
  if (old != attrs.end()) {
    if (const auto* s = std::get_if<std::string>(&old->second)) {
      erase_id(index.by_string[*s], object);
    } else if (const auto num = numeric_value(old->second)) {
      erase_id(index.by_number[*num], object);
    }
  }

  if (const auto* s = std::get_if<std::string>(&value)) {
    insert_sorted(index.by_string[*s], object);
  } else if (const auto num = numeric_value(value)) {
    insert_sorted(index.by_number[*num], object);
  }
  attrs[attr] = std::move(value);
}

std::optional<MetaValue> MetaStore::get_attribute(
    ObjectId object, std::string_view attribute) const {
  std::shared_lock lock(mu_);
  const auto obj = per_object_.find(object);
  if (obj == per_object_.end()) return std::nullopt;
  const auto attr = obj->second.find(std::string(attribute));
  if (attr == obj->second.end()) return std::nullopt;
  return attr->second;
}

std::map<std::string, MetaValue> MetaStore::attributes(ObjectId object) const {
  std::shared_lock lock(mu_);
  const auto obj = per_object_.find(object);
  if (obj == per_object_.end()) return {};
  return obj->second;
}

std::vector<ObjectId> MetaStore::match_one(
    const MetaCondition& condition) const {
  const auto idx = indexes_.find(condition.attribute);
  if (idx == indexes_.end()) return {};
  const AttrIndex& index = idx->second;

  if (const auto* s = std::get_if<std::string>(&condition.value)) {
    if (condition.op != QueryOp::kEQ) return {};  // strings: equality only
    const auto it = index.by_string.find(*s);
    return it == index.by_string.end() ? std::vector<ObjectId>{} : it->second;
  }

  const auto num = numeric_value(condition.value);
  if (!num) return {};
  const auto& tree = index.by_number;
  std::map<double, std::vector<ObjectId>>::const_iterator lo;
  std::map<double, std::vector<ObjectId>>::const_iterator hi;
  switch (condition.op) {
    case QueryOp::kEQ:
      lo = tree.find(*num);
      hi = lo == tree.end() ? lo : std::next(lo);
      break;
    case QueryOp::kGT:
      lo = tree.upper_bound(*num);
      hi = tree.end();
      break;
    case QueryOp::kGTE:
      lo = tree.lower_bound(*num);
      hi = tree.end();
      break;
    case QueryOp::kLT:
      lo = tree.begin();
      hi = tree.lower_bound(*num);
      break;
    case QueryOp::kLTE:
      lo = tree.begin();
      hi = tree.upper_bound(*num);
      break;
  }
  std::vector<ObjectId> out;
  for (auto it = lo; it != hi; ++it) {
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<ObjectId> MetaStore::query(
    std::span<const MetaCondition> conditions) const {
  std::shared_lock lock(mu_);
  if (conditions.empty()) return {};
  std::vector<ObjectId> result = match_one(conditions[0]);
  for (std::size_t i = 1; i < conditions.size() && !result.empty(); ++i) {
    const std::vector<ObjectId> next = match_one(conditions[i]);
    std::vector<ObjectId> merged;
    std::set_intersection(result.begin(), result.end(), next.begin(),
                          next.end(), std::back_inserter(merged));
    result = std::move(merged);
  }
  return result;
}

std::vector<ObjectId> MetaStore::query_tag(std::string_view attribute,
                                           const MetaValue& value) const {
  const MetaCondition c{std::string(attribute), QueryOp::kEQ, value};
  std::shared_lock lock(mu_);
  return match_one(c);
}

namespace {

void put_meta_value(SerialWriter& w, const MetaValue& value) {
  if (const auto* s = std::get_if<std::string>(&value)) {
    w.put<std::uint8_t>(0);
    w.put_string(*s);
  } else if (const auto* d = std::get_if<double>(&value)) {
    w.put<std::uint8_t>(1);
    w.put(*d);
  } else {
    w.put<std::uint8_t>(2);
    w.put(std::get<std::int64_t>(value));
  }
}

Status get_meta_value(SerialReader& r, MetaValue& out) {
  std::uint8_t tag = 0;
  PDC_RETURN_IF_ERROR(r.get(tag));
  switch (tag) {
    case 0: {
      std::string s;
      PDC_RETURN_IF_ERROR(r.get_string(s));
      out = std::move(s);
      return Status::Ok();
    }
    case 1: {
      double d = 0;
      PDC_RETURN_IF_ERROR(r.get(d));
      out = d;
      return Status::Ok();
    }
    case 2: {
      std::int64_t i = 0;
      PDC_RETURN_IF_ERROR(r.get(i));
      out = i;
      return Status::Ok();
    }
    default:
      return Status::Corruption("meta value tag invalid");
  }
}

}  // namespace

void MetaStore::serialize(SerialWriter& w) const {
  std::shared_lock lock(mu_);
  w.put<std::uint64_t>(per_object_.size());
  for (const auto& [object, attrs] : per_object_) {
    w.put(object);
    w.put<std::uint64_t>(attrs.size());
    for (const auto& [name, value] : attrs) {
      w.put_string(name);
      put_meta_value(w, value);
    }
  }
}

Status MetaStore::load(SerialReader& r) {
  {
    std::shared_lock lock(mu_);
    if (!per_object_.empty()) {
      return Status::FailedPrecondition("metadata store is not empty");
    }
  }
  std::uint64_t nobjects = 0;
  PDC_RETURN_IF_ERROR(r.get(nobjects));
  for (std::uint64_t o = 0; o < nobjects; ++o) {
    ObjectId object = 0;
    std::uint64_t nattrs = 0;
    PDC_RETURN_IF_ERROR(r.get(object));
    PDC_RETURN_IF_ERROR(r.get(nattrs));
    for (std::uint64_t a = 0; a < nattrs; ++a) {
      std::string name;
      MetaValue value;
      PDC_RETURN_IF_ERROR(r.get_string(name));
      PDC_RETURN_IF_ERROR(get_meta_value(r, value));
      set_attribute(object, name, std::move(value));  // rebuilds indexes
    }
  }
  return Status::Ok();
}

Status MetaStore::persist_to(pfs::PfsCluster& cluster,
                             std::string_view file) const {
  SerialWriter w;
  serialize(w);
  PDC_ASSIGN_OR_RETURN(pfs::PfsFile out, cluster.create(file));
  return out.write(0, w.bytes());
}

Status MetaStore::load_from(const pfs::PfsCluster& cluster,
                            std::string_view file) {
  PDC_ASSIGN_OR_RETURN(pfs::PfsFile in, cluster.open(file));
  PDC_ASSIGN_OR_RETURN(const std::uint64_t size, in.size());
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  PDC_RETURN_IF_ERROR(in.read(0, bytes, {}));
  SerialReader r(bytes);
  return load(r);
}

std::size_t MetaStore::num_objects() const {
  std::shared_lock lock(mu_);
  return per_object_.size();
}

std::size_t MetaStore::num_attributes() const {
  std::shared_lock lock(mu_);
  return indexes_.size();
}

}  // namespace pdc::meta
