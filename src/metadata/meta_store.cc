#include "metadata/meta_store.h"

#include <algorithm>
#include <mutex>

namespace pdc::meta {
namespace {

std::optional<double> numeric_value(const MetaValue& v) {
  if (const auto* d = std::get_if<double>(&v)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    return static_cast<double>(*i);
  }
  return std::nullopt;
}

void erase_id(std::vector<ObjectId>& ids, ObjectId id) {
  ids.erase(std::remove(ids.begin(), ids.end(), id), ids.end());
}

void insert_sorted(std::vector<ObjectId>& ids, ObjectId id) {
  const auto it = std::lower_bound(ids.begin(), ids.end(), id);
  if (it == ids.end() || *it != id) ids.insert(it, id);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

}  // namespace

std::optional<std::string> affix_pattern(const MetaValue& value) {
  if (const auto* s = std::get_if<std::string>(&value)) return *s;
  if (const auto* i = std::get_if<std::int64_t>(&value)) {
    return std::to_string(*i);
  }
  return std::nullopt;  // doubles never affix-match
}

bool value_matches(const MetaValue& value, const MetaCondition& condition) {
  if (condition.kind != MetaMatchKind::kValue) {
    const auto pattern = affix_pattern(condition.value);
    const auto subject = affix_pattern(value);
    if (!pattern || !subject) return false;
    return condition.kind == MetaMatchKind::kPrefix
               ? starts_with(*subject, *pattern)
               : ends_with(*subject, *pattern);
  }
  if (const auto* s = std::get_if<std::string>(&condition.value)) {
    if (condition.op != QueryOp::kEQ) return false;  // strings: kEQ only
    const auto* v = std::get_if<std::string>(&value);
    return v != nullptr && *v == *s;
  }
  const auto bound = numeric_value(condition.value);
  const auto v = numeric_value(value);
  if (!bound || !v) return false;
  switch (condition.op) {
    case QueryOp::kEQ: return *v == *bound;
    case QueryOp::kGT: return *v > *bound;
    case QueryOp::kGTE: return *v >= *bound;
    case QueryOp::kLT: return *v < *bound;
    case QueryOp::kLTE: return *v <= *bound;
  }
  return false;
}

void MetaStore::set_attribute(ObjectId object, std::string_view attribute,
                              MetaValue value) {
  std::unique_lock lock(mu_);
  const std::string attr(attribute);
  auto& attrs = per_object_[object];
  AttrIndex& index = indexes_[attr];

  // Drop the old index entry if overwriting.
  const auto old = attrs.find(attr);
  if (old != attrs.end()) {
    if (const auto* s = std::get_if<std::string>(&old->second)) {
      erase_id(index.by_string[*s], object);
    } else if (const auto num = numeric_value(old->second)) {
      erase_id(index.by_number[*num], object);
    }
  }

  if (const auto* s = std::get_if<std::string>(&value)) {
    insert_sorted(index.by_string[*s], object);
  } else if (const auto num = numeric_value(value)) {
    insert_sorted(index.by_number[*num], object);
  }
  attrs[attr] = std::move(value);
}

std::optional<MetaValue> MetaStore::get_attribute(
    ObjectId object, std::string_view attribute) const {
  std::shared_lock lock(mu_);
  const auto obj = per_object_.find(object);
  if (obj == per_object_.end()) return std::nullopt;
  const auto attr = obj->second.find(std::string(attribute));
  if (attr == obj->second.end()) return std::nullopt;
  return attr->second;
}

std::map<std::string, MetaValue> MetaStore::attributes(ObjectId object) const {
  std::shared_lock lock(mu_);
  const auto obj = per_object_.find(object);
  if (obj == per_object_.end()) return {};
  return obj->second;
}

std::vector<ObjectId> MetaStore::match_one(
    const MetaCondition& condition) const {
  if (condition.kind != MetaMatchKind::kValue) {
    // Affix kinds are answered by a full linear scan — this IS the oracle
    // the distributed trie is differentially tested (and benched) against.
    std::vector<ObjectId> out;
    for (const auto& [object, attrs] : per_object_) {
      const auto attr = attrs.find(condition.attribute);
      if (attr != attrs.end() && value_matches(attr->second, condition)) {
        out.push_back(object);
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  }
  const auto idx = indexes_.find(condition.attribute);
  if (idx == indexes_.end()) return {};
  const AttrIndex& index = idx->second;

  if (const auto* s = std::get_if<std::string>(&condition.value)) {
    if (condition.op != QueryOp::kEQ) return {};  // strings: equality only
    const auto it = index.by_string.find(*s);
    return it == index.by_string.end() ? std::vector<ObjectId>{} : it->second;
  }

  const auto num = numeric_value(condition.value);
  if (!num) return {};
  const auto& tree = index.by_number;
  std::map<double, std::vector<ObjectId>>::const_iterator lo;
  std::map<double, std::vector<ObjectId>>::const_iterator hi;
  switch (condition.op) {
    case QueryOp::kEQ:
      lo = tree.find(*num);
      hi = lo == tree.end() ? lo : std::next(lo);
      break;
    case QueryOp::kGT:
      lo = tree.upper_bound(*num);
      hi = tree.end();
      break;
    case QueryOp::kGTE:
      lo = tree.lower_bound(*num);
      hi = tree.end();
      break;
    case QueryOp::kLT:
      lo = tree.begin();
      hi = tree.lower_bound(*num);
      break;
    case QueryOp::kLTE:
      lo = tree.begin();
      hi = tree.upper_bound(*num);
      break;
  }
  std::vector<ObjectId> out;
  for (auto it = lo; it != hi; ++it) {
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t MetaStore::estimate_one(const MetaCondition& condition) const {
  if (condition.kind != MetaMatchKind::kValue) {
    // Affix estimates pay the scan: they have no index to size-probe.
    return match_one(condition).size();
  }
  const auto idx = indexes_.find(condition.attribute);
  if (idx == indexes_.end()) return 0;
  const AttrIndex& index = idx->second;
  if (const auto* s = std::get_if<std::string>(&condition.value)) {
    if (condition.op != QueryOp::kEQ) return 0;
    const auto it = index.by_string.find(*s);
    return it == index.by_string.end() ? 0 : it->second.size();
  }
  const auto num = numeric_value(condition.value);
  if (!num) return 0;
  const auto& tree = index.by_number;
  std::uint64_t total = 0;
  switch (condition.op) {
    case QueryOp::kEQ: {
      const auto it = tree.find(*num);
      return it == tree.end() ? 0 : it->second.size();
    }
    case QueryOp::kGT:
      for (auto it = tree.upper_bound(*num); it != tree.end(); ++it) {
        total += it->second.size();
      }
      return total;
    case QueryOp::kGTE:
      for (auto it = tree.lower_bound(*num); it != tree.end(); ++it) {
        total += it->second.size();
      }
      return total;
    case QueryOp::kLT:
      for (auto it = tree.begin(); it != tree.lower_bound(*num); ++it) {
        total += it->second.size();
      }
      return total;
    case QueryOp::kLTE:
      for (auto it = tree.begin(); it != tree.upper_bound(*num); ++it) {
        total += it->second.size();
      }
      return total;
  }
  return 0;
}

bool MetaStore::object_matches(ObjectId object,
                               const MetaCondition& condition) const {
  const auto obj = per_object_.find(object);
  if (obj == per_object_.end()) return false;
  const auto attr = obj->second.find(condition.attribute);
  if (attr == obj->second.end()) return false;
  return value_matches(attr->second, condition);
}

std::vector<ObjectId> MetaStore::query(
    std::span<const MetaCondition> conditions) const {
  std::shared_lock lock(mu_);
  if (conditions.empty()) return {};
  // Order conjuncts by estimated posting-list size: only the smallest list
  // is ever materialized; every other conjunct is verified per surviving
  // candidate.  A query whose first conjunct matches 3 objects costs
  // O(3 * conjuncts) probes no matter how popular the other conjuncts are.
  std::vector<std::pair<std::uint64_t, std::size_t>> order;
  order.reserve(conditions.size());
  for (std::size_t i = 0; i < conditions.size(); ++i) {
    const std::uint64_t estimate = estimate_one(conditions[i]);
    probes_.fetch_add(1, std::memory_order_relaxed);
    if (estimate == 0) return {};  // empty conjunct: intersection is empty
    order.emplace_back(estimate, i);
  }
  std::sort(order.begin(), order.end());
  std::vector<ObjectId> result = match_one(conditions[order.front().second]);
  probes_.fetch_add(result.size(), std::memory_order_relaxed);
  for (std::size_t k = 1; k < order.size(); ++k) {
    if (result.empty()) return {};
    const MetaCondition& condition = conditions[order[k].second];
    probes_.fetch_add(result.size(), std::memory_order_relaxed);
    std::erase_if(result, [&](ObjectId id) {
      return !object_matches(id, condition);
    });
  }
  return result;
}

std::vector<ObjectId> MetaStore::query_tag(std::string_view attribute,
                                           const MetaValue& value) const {
  const MetaCondition c{std::string(attribute), QueryOp::kEQ, value};
  std::shared_lock lock(mu_);
  return match_one(c);
}

void put_meta_value(SerialWriter& w, const MetaValue& value) {
  if (const auto* s = std::get_if<std::string>(&value)) {
    w.put<std::uint8_t>(0);
    w.put_string(*s);
  } else if (const auto* d = std::get_if<double>(&value)) {
    w.put<std::uint8_t>(1);
    w.put(*d);
  } else {
    w.put<std::uint8_t>(2);
    w.put(std::get<std::int64_t>(value));
  }
}

Status get_meta_value(SerialReader& r, MetaValue& out) {
  std::uint8_t tag = 0;
  PDC_RETURN_IF_ERROR(r.get(tag));
  switch (tag) {
    case 0: {
      std::string s;
      PDC_RETURN_IF_ERROR(r.get_string(s));
      out = std::move(s);
      return Status::Ok();
    }
    case 1: {
      double d = 0;
      PDC_RETURN_IF_ERROR(r.get(d));
      out = d;
      return Status::Ok();
    }
    case 2: {
      std::int64_t i = 0;
      PDC_RETURN_IF_ERROR(r.get(i));
      out = i;
      return Status::Ok();
    }
    default:
      return Status::Corruption("meta value tag invalid");
  }
}

void MetaStore::serialize(SerialWriter& w) const {
  std::shared_lock lock(mu_);
  w.put<std::uint64_t>(per_object_.size());
  for (const auto& [object, attrs] : per_object_) {
    w.put(object);
    w.put<std::uint64_t>(attrs.size());
    for (const auto& [name, value] : attrs) {
      w.put_string(name);
      put_meta_value(w, value);
    }
  }
}

Status MetaStore::load(SerialReader& r) {
  {
    std::shared_lock lock(mu_);
    if (!per_object_.empty()) {
      return Status::FailedPrecondition("metadata store is not empty");
    }
  }
  std::uint64_t nobjects = 0;
  PDC_RETURN_IF_ERROR(r.get(nobjects));
  for (std::uint64_t o = 0; o < nobjects; ++o) {
    ObjectId object = 0;
    std::uint64_t nattrs = 0;
    PDC_RETURN_IF_ERROR(r.get(object));
    PDC_RETURN_IF_ERROR(r.get(nattrs));
    for (std::uint64_t a = 0; a < nattrs; ++a) {
      std::string name;
      MetaValue value;
      PDC_RETURN_IF_ERROR(r.get_string(name));
      PDC_RETURN_IF_ERROR(get_meta_value(r, value));
      set_attribute(object, name, std::move(value));  // rebuilds indexes
    }
  }
  if (!r.exhausted()) {
    return Status::Corruption("metadata checkpoint has trailing bytes");
  }
  return Status::Ok();
}

Status MetaStore::persist_to(pfs::PfsCluster& cluster,
                             std::string_view file) const {
  SerialWriter w;
  serialize(w);
  PDC_ASSIGN_OR_RETURN(pfs::PfsFile out, cluster.create(file));
  return out.write(0, w.bytes());
}

Status MetaStore::load_from(const pfs::PfsCluster& cluster,
                            std::string_view file) {
  PDC_ASSIGN_OR_RETURN(pfs::PfsFile in, cluster.open(file));
  PDC_ASSIGN_OR_RETURN(const std::uint64_t size, in.size());
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  PDC_RETURN_IF_ERROR(in.read(0, bytes, {}));
  SerialReader r(bytes);
  return load(r);
}

std::size_t MetaStore::num_objects() const {
  std::shared_lock lock(mu_);
  return per_object_.size();
}

std::size_t MetaStore::num_attributes() const {
  std::shared_lock lock(mu_);
  return indexes_.size();
}

void MetaStore::for_each(
    const std::function<void(ObjectId,
                             const std::map<std::string, MetaValue>&)>& fn)
    const {
  std::shared_lock lock(mu_);
  for (const auto& [object, attrs] : per_object_) {
    fn(object, attrs);
  }
}

}  // namespace pdc::meta
