#include "metadata/meta_shard.h"

#include <algorithm>

namespace pdc::meta {
namespace {

std::optional<double> numeric_value(const MetaValue& v) {
  if (const auto* d = std::get_if<double>(&v)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    return static_cast<double>(*i);
  }
  return std::nullopt;
}

std::uint8_t first_bucket(std::string_view s) {
  return s.empty() ? 0 : static_cast<std::uint8_t>(s.front());
}

std::uint8_t last_bucket(std::string_view s) {
  return s.empty() ? 0 : static_cast<std::uint8_t>(s.back());
}

void sort_dedupe(std::vector<ObjectId>& ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
}

/// One lane entry of an attribute value: where it lives and how.
struct LaneEntry {
  MetaLane lane;
  std::uint8_t bucket;
};

/// Enumerate the lane entries of `value` into `fn(entry)`.
template <typename Fn>
void for_each_lane(const MetaValue& value, Fn&& fn) {
  if (const auto* s = std::get_if<std::string>(&value)) {
    fn(LaneEntry{MetaLane::kPrefix, first_bucket(*s)});
    fn(LaneEntry{MetaLane::kSuffix, last_bucket(*s)});
    return;
  }
  fn(LaneEntry{MetaLane::kNumeric, 0});
  if (const auto* i = std::get_if<std::int64_t>(&value)) {
    const std::string decimal = std::to_string(*i);
    fn(LaneEntry{MetaLane::kPrefix, first_bucket(decimal)});
    fn(LaneEntry{MetaLane::kSuffix, last_bucket(decimal)});
  }
}

}  // namespace

std::uint64_t meta_hash64(std::string_view bytes) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a 64
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::uint32_t vnode_of(std::string_view attribute, MetaLane lane,
                       std::uint8_t bucket, const MetaRingConfig& ring) {
  std::string key;
  key.reserve(attribute.size() + 3);
  key.append(attribute);
  key.push_back('\x1f');
  key.push_back(static_cast<char>(lane));
  key.push_back(static_cast<char>(bucket));
  return static_cast<std::uint32_t>(meta_hash64(key) %
                                    std::max<std::uint32_t>(1, ring.vnodes));
}

std::vector<ServerId> replicas_of(std::uint32_t vnode,
                                  const MetaRingConfig& ring) {
  const std::uint32_t servers = std::max<std::uint32_t>(1, ring.num_servers);
  const std::uint32_t copies =
      std::min(std::max<std::uint32_t>(1, ring.replicas), servers);
  // Rendezvous: rank servers by h(vnode, server) descending; ties (hash
  // collisions) break by server id for determinism.
  std::vector<std::pair<std::uint64_t, ServerId>> ranked;
  ranked.reserve(servers);
  for (ServerId s = 0; s < servers; ++s) {
    char key[8];
    key[0] = static_cast<char>(vnode);
    key[1] = static_cast<char>(vnode >> 8);
    key[2] = static_cast<char>(vnode >> 16);
    key[3] = static_cast<char>(vnode >> 24);
    key[4] = static_cast<char>(s);
    key[5] = static_cast<char>(s >> 8);
    key[6] = static_cast<char>(s >> 16);
    key[7] = static_cast<char>(s >> 24);
    ranked.emplace_back(meta_hash64({key, sizeof key}), s);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  std::vector<ServerId> out;
  out.reserve(copies);
  for (std::uint32_t i = 0; i < copies; ++i) out.push_back(ranked[i].second);
  return out;
}

std::vector<std::uint32_t> vnodes_of_condition(const MetaCondition& condition,
                                               const MetaRingConfig& ring) {
  std::vector<std::uint32_t> out;
  if (condition.kind == MetaMatchKind::kValue) {
    if (const auto* s = std::get_if<std::string>(&condition.value)) {
      if (condition.op != QueryOp::kEQ) return {};  // strings: kEQ only
      out.push_back(
          vnode_of(condition.attribute, MetaLane::kPrefix, first_bucket(*s),
                   ring));
      return out;
    }
    if (!numeric_value(condition.value)) return {};
    out.push_back(vnode_of(condition.attribute, MetaLane::kNumeric, 0, ring));
    return out;
  }
  const auto pattern = affix_pattern(condition.value);
  if (!pattern) return {};  // double-valued affix patterns match nothing
  const MetaLane lane = condition.kind == MetaMatchKind::kPrefix
                            ? MetaLane::kPrefix
                            : MetaLane::kSuffix;
  if (pattern->empty()) {
    // Match-anything affix: fan over every bucket of the lane.
    for (std::uint32_t b = 0; b < 256; ++b) {
      out.push_back(vnode_of(condition.attribute, lane,
                             static_cast<std::uint8_t>(b), ring));
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }
  const std::uint8_t bucket = condition.kind == MetaMatchKind::kPrefix
                                  ? first_bucket(*pattern)
                                  : last_bucket(*pattern);
  out.push_back(vnode_of(condition.attribute, lane, bucket, ring));
  return out;
}

std::vector<std::uint32_t> vnodes_of_value(std::string_view attribute,
                                           const MetaValue& value,
                                           const MetaRingConfig& ring) {
  std::vector<std::uint32_t> out;
  for_each_lane(value, [&](const LaneEntry& e) {
    out.push_back(vnode_of(attribute, e.lane, e.bucket, ring));
  });
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

MetaShard::MetaShard(const MetaRingConfig& ring, ServerId self)
    : ring_(ring), self_(self) {
  for (std::uint32_t v = 0; v < std::max<std::uint32_t>(1, ring_.vnodes);
       ++v) {
    const std::vector<ServerId> copies = replicas_of(v, ring_);
    if (std::find(copies.begin(), copies.end(), self_) != copies.end()) {
      vnodes_.emplace(v, Vnode{});
    }
  }
}

bool MetaShard::owns(std::uint32_t vnode) const {
  std::lock_guard lock(mu_);
  return vnodes_.contains(vnode);
}

void MetaShard::index_into(Vnode& vn, std::uint32_t vnode, ObjectId object,
                           std::string_view attribute, const MetaValue& value,
                           bool insert) {
  const auto apply = [&](const LaneEntry& entry, auto&& do_apply) {
    if (vnode_of(attribute, entry.lane, entry.bucket, ring_) == vnode) {
      do_apply();
    }
  };
  if (const auto* s = std::get_if<std::string>(&value)) {
    for_each_lane(value, [&](const LaneEntry& e) {
      apply(e, [&] {
        if (e.lane == MetaLane::kPrefix) {
          insert ? vn.trie.insert_string(attribute, *s, false, object)
                 : vn.trie.remove_string(attribute, *s, false, object);
        } else {
          insert ? vn.trie.insert_suffix(attribute, *s, false, object)
                 : vn.trie.remove_suffix(attribute, *s, false, object);
        }
      });
    });
    return;
  }
  const auto folded = numeric_value(value);
  const auto* i = std::get_if<std::int64_t>(&value);
  const std::string decimal = i != nullptr ? std::to_string(*i) : "";
  for_each_lane(value, [&](const LaneEntry& e) {
    apply(e, [&] {
      switch (e.lane) {
        case MetaLane::kNumeric:
          insert ? vn.trie.insert_number(attribute, *folded, object)
                 : vn.trie.remove_number(attribute, *folded, object);
          break;
        case MetaLane::kPrefix:
          insert ? vn.trie.insert_string(attribute, decimal, true, object)
                 : vn.trie.remove_string(attribute, decimal, true, object);
          break;
        case MetaLane::kSuffix:
          insert ? vn.trie.insert_suffix(attribute, decimal, true, object)
                 : vn.trie.remove_suffix(attribute, decimal, true, object);
          break;
      }
    });
  });
}

void MetaShard::index_attribute(ObjectId object, std::string_view attribute,
                                const MetaValue& value) {
  std::lock_guard lock(mu_);
  for (auto& [vnode, vn] : vnodes_) {
    index_into(vn, vnode, object, attribute, value, /*insert=*/true);
  }
}

Result<std::uint64_t> MetaShard::apply(std::uint32_t vnode, std::uint64_t seq,
                                       const std::vector<UpdateOp>& ops,
                                       bool& applied) {
  std::lock_guard lock(mu_);
  const auto it = vnodes_.find(vnode);
  if (it == vnodes_.end()) {
    return Status::FailedPrecondition(
        "meta update routed to a non-replica of vnode " +
        std::to_string(vnode));
  }
  Vnode& vn = it->second;
  if (seq <= vn.applied_seq) {
    applied = false;  // duplicate (retry/reroute/bus duplication)
    return vn.epoch;
  }
  for (const UpdateOp& op : ops) {
    if (op.old_value) {
      index_into(vn, vnode, op.object, op.attribute, *op.old_value,
                 /*insert=*/false);
    }
    index_into(vn, vnode, op.object, op.attribute, op.new_value,
               /*insert=*/true);
  }
  vn.applied_seq = seq;
  ++vn.epoch;
  applied = true;
  return vn.epoch;
}

std::optional<double> meta_numeric_fold(const MetaValue& value) {
  return numeric_value(value);
}

Status MetaShard::query(
    const MetaCondition& condition, std::span<const std::uint32_t> vnodes,
    std::vector<ObjectId>& out,
    std::vector<std::pair<std::uint32_t, std::uint64_t>>& epochs,
    CostLedger& ledger, std::uint64_t& probes) const {
  std::lock_guard lock(mu_);
  std::uint64_t visited = 0;
  for (const std::uint32_t vnode : vnodes) {
    const auto it = vnodes_.find(vnode);
    if (it == vnodes_.end()) {
      // Refusing outranks guessing: answering for a vnode we do not own
      // would return a silently truncated posting list.
      return Status::FailedPrecondition(
          "meta query routed to a non-replica of vnode " +
          std::to_string(vnode));
    }
    const Vnode& vn = it->second;
    switch (condition.kind) {
      case MetaMatchKind::kValue: {
        if (const auto* s = std::get_if<std::string>(&condition.value)) {
          if (condition.op == QueryOp::kEQ) {
            visited += vn.trie.exact_string(condition.attribute, *s, out);
          }
          break;
        }
        if (const auto folded = numeric_value(condition.value)) {
          visited += vn.trie.range_number(condition.attribute, condition.op,
                                          *folded, out);
        }
        break;
      }
      case MetaMatchKind::kPrefix:
      case MetaMatchKind::kSuffix: {
        const auto pattern = affix_pattern(condition.value);
        if (!pattern) break;
        visited += condition.kind == MetaMatchKind::kPrefix
                       ? vn.trie.match_prefix(condition.attribute, *pattern,
                                              out)
                       : vn.trie.match_suffix(condition.attribute, *pattern,
                                              out);
        break;
      }
    }
    epochs.emplace_back(vnode, vn.epoch);
  }
  sort_dedupe(out);
  probes += visited;
  ledger.add_cpu(static_cast<double>(visited + out.size()) *
                     kMetaProbeSeconds,
                 CpuStage::kScan);
  return Status::Ok();
}

Status MetaShard::query_interval(
    std::string_view attribute, const ValueInterval& interval,
    std::span<const std::uint32_t> vnodes, std::vector<ObjectId>& out,
    std::vector<std::pair<std::uint32_t, std::uint64_t>>& epochs,
    CostLedger& ledger, std::uint64_t& probes) const {
  std::lock_guard lock(mu_);
  std::uint64_t visited = 0;
  for (const std::uint32_t vnode : vnodes) {
    const auto it = vnodes_.find(vnode);
    if (it == vnodes_.end()) {
      return Status::FailedPrecondition(
          "meta query routed to a non-replica of vnode " +
          std::to_string(vnode));
    }
    const Vnode& vn = it->second;
    visited += vn.trie.range_interval(attribute, interval, out);
    epochs.emplace_back(vnode, vn.epoch);
  }
  sort_dedupe(out);
  probes += visited;
  ledger.add_cpu(static_cast<double>(visited + out.size()) *
                     kMetaProbeSeconds,
                 CpuStage::kScan);
  return Status::Ok();
}

std::uint64_t MetaShard::epoch(std::uint32_t vnode) const {
  std::lock_guard lock(mu_);
  const auto it = vnodes_.find(vnode);
  return it == vnodes_.end() ? 0 : it->second.epoch;
}

std::uint64_t MetaShard::num_postings() const {
  std::lock_guard lock(mu_);
  std::uint64_t total = 0;
  for (const auto& entry : vnodes_) total += entry.second.trie.num_postings();
  return total;
}

}  // namespace pdc::meta
