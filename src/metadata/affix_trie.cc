#include "metadata/affix_trie.h"

#include <algorithm>

namespace pdc::meta {
namespace {

std::string reversed(std::string_view s) {
  return {s.rbegin(), s.rend()};
}

void insert_sorted(std::vector<ObjectId>& ids, ObjectId id) {
  const auto it = std::lower_bound(ids.begin(), ids.end(), id);
  if (it == ids.end() || *it != id) ids.insert(it, id);
}

void erase_sorted(std::vector<ObjectId>& ids, ObjectId id) {
  const auto it = std::lower_bound(ids.begin(), ids.end(), id);
  if (it != ids.end() && *it == id) ids.erase(it);
}

/// Length of the common prefix of two strings.
std::size_t common_prefix(std::string_view a, std::string_view b) {
  const std::size_t n = std::min(a.size(), b.size());
  std::size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

void sort_dedupe(std::vector<ObjectId>& ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
}

}  // namespace

void AffixTrie::insert_key(Node& root, std::string_view key, bool int_origin,
                           ObjectId id) {
  Node* node = &root;
  std::string_view rest = key;
  for (;;) {
    if (rest.empty()) {
      insert_sorted(int_origin ? node->int_ids : node->str_ids, id);
      ++postings_;
      return;
    }
    // Find the child whose edge starts with rest[0].
    auto it = std::lower_bound(
        node->children.begin(), node->children.end(), rest[0],
        [](const std::unique_ptr<Node>& c, char b) { return c->edge[0] < b; });
    if (it == node->children.end() || (*it)->edge[0] != rest[0]) {
      auto child = std::make_unique<Node>();
      child->edge = std::string(rest);
      insert_sorted(int_origin ? child->int_ids : child->str_ids, id);
      node->children.insert(it, std::move(child));
      ++nodes_;
      ++postings_;
      return;
    }
    Node* child = it->get();
    const std::size_t shared = common_prefix(child->edge, rest);
    if (shared < child->edge.size()) {
      // Split the edge: child keeps the tail, a new interior node takes
      // the shared head and adopts the child.
      auto split = std::make_unique<Node>();
      split->edge = child->edge.substr(0, shared);
      child->edge = child->edge.substr(shared);
      split->children.push_back(std::move(*it));
      *it = std::move(split);
      child = it->get();
      ++nodes_;
    }
    node = child;
    rest = rest.substr(shared);
  }
}

void AffixTrie::remove_key(Node& root, std::string_view key, bool int_origin,
                           ObjectId id) {
  std::uint64_t probes = 0;
  // find_exact walks the const structure; removal only shrinks a posting
  // list in place (nodes are left behind — metadata churn is tiny compared
  // to the index, and empty nodes cost one pointer chase, not a rescan).
  const Node* found = find_exact(root, key, probes);
  if (found == nullptr) return;
  auto* node = const_cast<Node*>(found);
  std::vector<ObjectId>& ids = int_origin ? node->int_ids : node->str_ids;
  const std::size_t before = ids.size();
  erase_sorted(ids, id);
  postings_ -= before - ids.size();
}

const AffixTrie::Node* AffixTrie::find_exact(const Node& root,
                                             std::string_view key,
                                             std::uint64_t& probes) {
  const Node* node = &root;
  std::string_view rest = key;
  ++probes;
  while (!rest.empty()) {
    const Node* next = nullptr;
    for (const auto& child : node->children) {
      if (child->edge[0] == rest[0]) {
        next = child.get();
        break;
      }
    }
    ++probes;
    if (next == nullptr) return nullptr;
    if (rest.size() < next->edge.size() ||
        rest.substr(0, next->edge.size()) != next->edge) {
      return nullptr;
    }
    rest = rest.substr(next->edge.size());
    node = next;
  }
  return node;
}

void AffixTrie::collect_subtree(const Node& node, std::vector<ObjectId>& out,
                                std::uint64_t& probes) {
  ++probes;
  out.insert(out.end(), node.str_ids.begin(), node.str_ids.end());
  out.insert(out.end(), node.int_ids.begin(), node.int_ids.end());
  for (const auto& child : node.children) {
    collect_subtree(*child, out, probes);
  }
}

void AffixTrie::collect_prefix(const Node& root, std::string_view prefix,
                               std::vector<ObjectId>& out,
                               std::uint64_t& probes) {
  const Node* node = &root;
  std::string_view rest = prefix;
  while (!rest.empty()) {
    const Node* next = nullptr;
    for (const auto& child : node->children) {
      if (child->edge[0] == rest[0]) {
        next = child.get();
        break;
      }
    }
    ++probes;
    if (next == nullptr) return;  // nothing starts with `prefix`
    if (rest.size() <= next->edge.size()) {
      // The prefix ends inside this edge: it matches iff the edge starts
      // with the remainder, and then the whole subtree qualifies.
      if (next->edge.substr(0, rest.size()) != rest) return;
      collect_subtree(*next, out, probes);
      return;
    }
    if (rest.substr(0, next->edge.size()) != next->edge) return;
    rest = rest.substr(next->edge.size());
    node = next;
  }
  collect_subtree(*node, out, probes);
}

void AffixTrie::insert_string(std::string_view attribute,
                              std::string_view value, bool int_origin,
                              ObjectId id) {
  insert_key(attrs_[std::string(attribute)].forward, value, int_origin, id);
}

void AffixTrie::remove_string(std::string_view attribute,
                              std::string_view value, bool int_origin,
                              ObjectId id) {
  const auto it = attrs_.find(std::string(attribute));
  if (it != attrs_.end()) {
    remove_key(it->second.forward, value, int_origin, id);
  }
}

void AffixTrie::insert_suffix(std::string_view attribute,
                              std::string_view value, bool int_origin,
                              ObjectId id) {
  insert_key(attrs_[std::string(attribute)].reversed, reversed(value),
             int_origin, id);
}

void AffixTrie::remove_suffix(std::string_view attribute,
                              std::string_view value, bool int_origin,
                              ObjectId id) {
  const auto it = attrs_.find(std::string(attribute));
  if (it != attrs_.end()) {
    remove_key(it->second.reversed, reversed(value), int_origin, id);
  }
}

void AffixTrie::insert_number(std::string_view attribute, double value,
                              ObjectId id) {
  insert_sorted(attrs_[std::string(attribute)].numbers[value], id);
  ++postings_;
}

void AffixTrie::remove_number(std::string_view attribute, double value,
                              ObjectId id) {
  const auto it = attrs_.find(std::string(attribute));
  if (it == attrs_.end()) return;
  const auto num = it->second.numbers.find(value);
  if (num == it->second.numbers.end()) return;
  const std::size_t before = num->second.size();
  erase_sorted(num->second, id);
  postings_ -= before - num->second.size();
}

std::uint64_t AffixTrie::exact_string(std::string_view attribute,
                                      std::string_view value,
                                      std::vector<ObjectId>& out) const {
  std::uint64_t probes = 1;
  const auto it = attrs_.find(std::string(attribute));
  if (it == attrs_.end()) return probes;
  const Node* node = find_exact(it->second.forward, value, probes);
  if (node != nullptr) {
    out.insert(out.end(), node->str_ids.begin(), node->str_ids.end());
    sort_dedupe(out);
  }
  return probes;
}

std::uint64_t AffixTrie::match_prefix(std::string_view attribute,
                                      std::string_view prefix,
                                      std::vector<ObjectId>& out) const {
  std::uint64_t probes = 1;
  const auto it = attrs_.find(std::string(attribute));
  if (it == attrs_.end()) return probes;
  collect_prefix(it->second.forward, prefix, out, probes);
  sort_dedupe(out);
  return probes;
}

std::uint64_t AffixTrie::match_suffix(std::string_view attribute,
                                      std::string_view suffix,
                                      std::vector<ObjectId>& out) const {
  std::uint64_t probes = 1;
  const auto it = attrs_.find(std::string(attribute));
  if (it == attrs_.end()) return probes;
  collect_prefix(it->second.reversed, reversed(suffix), out, probes);
  sort_dedupe(out);
  return probes;
}

std::uint64_t AffixTrie::range_number(std::string_view attribute, QueryOp op,
                                      double bound,
                                      std::vector<ObjectId>& out) const {
  std::uint64_t probes = 1;
  const auto it = attrs_.find(std::string(attribute));
  if (it == attrs_.end()) return probes;
  const auto& tree = it->second.numbers;
  std::map<double, std::vector<ObjectId>>::const_iterator lo;
  std::map<double, std::vector<ObjectId>>::const_iterator hi;
  switch (op) {
    case QueryOp::kEQ:
      lo = tree.find(bound);
      hi = lo == tree.end() ? lo : std::next(lo);
      break;
    case QueryOp::kGT:
      lo = tree.upper_bound(bound);
      hi = tree.end();
      break;
    case QueryOp::kGTE:
      lo = tree.lower_bound(bound);
      hi = tree.end();
      break;
    case QueryOp::kLT:
      lo = tree.begin();
      hi = tree.lower_bound(bound);
      break;
    case QueryOp::kLTE:
      lo = tree.begin();
      hi = tree.upper_bound(bound);
      break;
  }
  for (auto iter = lo; iter != hi; ++iter) {
    ++probes;
    out.insert(out.end(), iter->second.begin(), iter->second.end());
  }
  sort_dedupe(out);
  return probes;
}

std::uint64_t AffixTrie::range_interval(std::string_view attribute,
                                        const ValueInterval& interval,
                                        std::vector<ObjectId>& out) const {
  std::uint64_t probes = 1;
  const auto it = attrs_.find(std::string(attribute));
  if (it == attrs_.end() || interval.empty()) return probes;
  const auto& tree = it->second.numbers;
  const auto lo = interval.lo_inclusive ? tree.lower_bound(interval.lo)
                                        : tree.upper_bound(interval.lo);
  const auto hi = interval.hi_inclusive ? tree.upper_bound(interval.hi)
                                        : tree.lower_bound(interval.hi);
  for (auto iter = lo; iter != hi; ++iter) {
    ++probes;
    out.insert(out.end(), iter->second.begin(), iter->second.end());
  }
  sort_dedupe(out);
  return probes;
}

}  // namespace pdc::meta
