// Adaptive radix (Patricia) trie over attribute values — the DART-style
// affix index behind the distributed metadata service (ROADMAP item 2).
//
// One AffixTrie instance holds every posting of one metadata *vnode*: for
// each attribute it keeps
//   - a path-compressed forward trie over value strings (exact + prefix),
//   - a reversed-key twin over the same strings (suffix: `*DEG` reverses
//     to a prefix walk), and
//   - an ordered numeric map (int64 folded into double keys exactly like
//     MetaStore::AttrIndex, so both sides of the differential agree on
//     values straddling 2^53).
//
// Affix (prefix/suffix) matching is defined over string values AND the
// decimal stringification of int64 values ("plate=53*" matches the int64
// 5340); doubles never participate in affix matching (their shortest
// round-trip representation is not a stable search key).  Exact string
// equality matches only string-origin postings — the int64 5340 is not
// equal to the string "5340", exactly as in the MetaStore oracle.
//
// Every query reports the number of trie/map nodes it visited ("probes"),
// which is what the shard charges to the cost model: traversal work is
// O(key length + output), independent of the total object count — the
// near-flat 10^4 -> 10^6 latency property the bench gate pins.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/interval.h"
#include "common/types.h"

namespace pdc::meta {

class AffixTrie {
 public:
  // ---- maintenance (string lanes carry an int-origin flag) ----
  void insert_string(std::string_view attribute, std::string_view value,
                     bool int_origin, ObjectId id);
  void remove_string(std::string_view attribute, std::string_view value,
                     bool int_origin, ObjectId id);
  void insert_suffix(std::string_view attribute, std::string_view value,
                     bool int_origin, ObjectId id);
  void remove_suffix(std::string_view attribute, std::string_view value,
                     bool int_origin, ObjectId id);
  void insert_number(std::string_view attribute, double value, ObjectId id);
  void remove_number(std::string_view attribute, double value, ObjectId id);

  // ---- queries: append matches (then sort+dedupe) into `out`, return the
  // number of nodes visited ----
  /// String-origin postings whose value equals `value` exactly.
  std::uint64_t exact_string(std::string_view attribute,
                             std::string_view value,
                             std::vector<ObjectId>& out) const;
  /// Postings (string or int origin) whose value starts with `prefix`.
  std::uint64_t match_prefix(std::string_view attribute,
                             std::string_view prefix,
                             std::vector<ObjectId>& out) const;
  /// Postings (string or int origin) whose value ends with `suffix`.
  std::uint64_t match_suffix(std::string_view attribute,
                             std::string_view suffix,
                             std::vector<ObjectId>& out) const;
  /// Numeric postings satisfying `value <op> bound` (QueryOp semantics of
  /// MetaStore::match_one: kEQ/kGT/kGTE/kLT/kLTE over folded doubles).
  std::uint64_t range_number(std::string_view attribute, QueryOp op,
                             double bound, std::vector<ObjectId>& out) const;
  /// Numeric postings inside `interval` — a FUSED conjunction of range
  /// conditions on one attribute.  One ordered-map walk bounded on both
  /// sides, so a closed range never materializes a half-open side's
  /// posting list (the difference between O(output) and O(objects)).
  std::uint64_t range_interval(std::string_view attribute,
                               const ValueInterval& interval,
                               std::vector<ObjectId>& out) const;

  [[nodiscard]] std::uint64_t num_postings() const noexcept {
    return postings_;
  }
  [[nodiscard]] std::uint64_t num_nodes() const noexcept { return nodes_; }

 private:
  /// Path-compressed trie node.  `edge` is the compressed label from the
  /// parent; children are kept sorted by the first byte of their edge.
  struct Node {
    std::string edge;
    std::vector<ObjectId> str_ids;  ///< string-origin postings, ascending
    std::vector<ObjectId> int_ids;  ///< int64-origin postings, ascending
    std::vector<std::unique_ptr<Node>> children;
  };

  struct AttrIndex {
    Node forward;   ///< keyed by value
    Node reversed;  ///< keyed by reversed value
    std::map<double, std::vector<ObjectId>> numbers;
  };

  void insert_key(Node& root, std::string_view key, bool int_origin,
                  ObjectId id);
  void remove_key(Node& root, std::string_view key, bool int_origin,
                  ObjectId id);
  /// Walk `key` from `root`; null when no node spells exactly `key`.
  static const Node* find_exact(const Node& root, std::string_view key,
                                std::uint64_t& probes);
  /// Collect every posting at or below the node reached by `prefix` (the
  /// node may be reached mid-edge).
  static void collect_prefix(const Node& root, std::string_view prefix,
                             std::vector<ObjectId>& out,
                             std::uint64_t& probes);
  static void collect_subtree(const Node& node, std::vector<ObjectId>& out,
                              std::uint64_t& probes);

  std::unordered_map<std::string, AttrIndex> attrs_;
  std::uint64_t postings_ = 0;
  std::uint64_t nodes_ = 0;
};

}  // namespace pdc::meta
