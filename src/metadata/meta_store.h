// Object metadata management (SoMeta-lite, paper §II and §VI-C).
//
// Every object carries a set of named attributes (strings or numbers).
// Metadata objects are small and kept entirely in memory, pre-loaded at
// server start (paper: "pre-loaded at server start time and stored as
// in-memory objects").  Two inverted indexes — a hash index for string
// equality and an ordered index for numeric equality/range — make metadata
// queries (e.g. "RADEG=153.17 AND DECDEG=23.06") resolve in micro-seconds
// instead of a full traversal, which is exactly the advantage Fig. 5
// attributes to PDC over the HDF5 file-walk.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <variant>
#include <vector>

#include "common/serial.h"
#include "common/status.h"
#include "common/types.h"
#include "pfs/pfs.h"

namespace pdc::meta {

/// Attribute value: text or numeric.
using MetaValue = std::variant<std::string, double, std::int64_t>;

/// How a condition's value matches an attribute (affix search, DART-style).
/// Affix kinds match string values and the decimal stringification of
/// int64 values ("plate=53*" matches the int64 5340); doubles never affix-
/// match.  A `*` in a value is a literal byte, never a wildcard — the kind
/// field IS the wildcard.
enum class MetaMatchKind : std::uint8_t {
  kValue = 0,  ///< exact / range on the typed value (op applies)
  kPrefix,     ///< value starts with the pattern (op ignored)
  kSuffix,     ///< value ends with the pattern (op ignored)
};

/// One conjunct of a metadata query.  String values support kEQ only.
struct MetaCondition {
  std::string attribute;
  QueryOp op = QueryOp::kEQ;
  MetaValue value;
  MetaMatchKind kind = MetaMatchKind::kValue;
};

/// The affix pattern of a condition: string values as-is, int64 values as
/// decimal text; nullopt for doubles (never affix-matched).
std::optional<std::string> affix_pattern(const MetaValue& value);

/// Does one attribute value satisfy `condition`?  The single definition of
/// condition semantics — the linear-scan oracle, the candidate-probe fast
/// path and the sharded trie all agree by construction or by test against
/// this function.
bool value_matches(const MetaValue& value, const MetaCondition& condition);

/// Wire/persistence encoding of one MetaValue (tag byte + payload); shared
/// by the MetaStore checkpoint format and the kMetaQuery/kMetaUpdate
/// messages.
void put_meta_value(SerialWriter& w, const MetaValue& value);
Status get_meta_value(SerialReader& r, MetaValue& out);

class MetaStore {
 public:
  /// Set (or overwrite) one attribute of an object.
  void set_attribute(ObjectId object, std::string_view attribute,
                     MetaValue value);

  [[nodiscard]] std::optional<MetaValue> get_attribute(
      ObjectId object, std::string_view attribute) const;

  /// All attributes of one object (copy).
  [[nodiscard]] std::map<std::string, MetaValue> attributes(
      ObjectId object) const;

  /// Objects satisfying the conjunction of all `conditions`, ascending ids.
  /// Unknown attributes match nothing.
  [[nodiscard]] std::vector<ObjectId> query(
      std::span<const MetaCondition> conditions) const;

  /// Paper's PDCquery_tag: objects whose `attribute` equals `value`.
  [[nodiscard]] std::vector<ObjectId> query_tag(std::string_view attribute,
                                                const MetaValue& value) const;

  [[nodiscard]] std::size_t num_objects() const;
  [[nodiscard]] std::size_t num_attributes() const;

  /// Visit every object's attribute map under the read lock (snapshot
  /// iteration for shard builds).  `fn` must not call back into the store.
  void for_each(const std::function<void(ObjectId,
                                         const std::map<std::string,
                                                        MetaValue>&)>& fn)
      const;

  /// Index probes charged by queries since construction (or the last
  /// reset): one per posting-list size estimate, plus one per materialized
  /// posting entry, plus one per candidate re-check.  Pins the conjunct-
  /// ordering optimization — a tiny first conjunct must keep the probe
  /// count near its own size, not the largest list's.
  [[nodiscard]] std::uint64_t index_probes() const noexcept {
    return probes_.load(std::memory_order_relaxed);
  }
  void reset_index_probes() noexcept {
    probes_.store(0, std::memory_order_relaxed);
  }

  // ---- fault tolerance (paper §II: metadata "is periodically persisted
  // to the storage system") ----
  /// Serialize every object's attributes (indexes rebuild on load).
  void serialize(SerialWriter& w) const;
  /// Restore into an EMPTY store.
  Status load(SerialReader& r);
  /// Checkpoint to / restore from a PFS file.
  Status persist_to(pfs::PfsCluster& cluster, std::string_view file) const;
  Status load_from(const pfs::PfsCluster& cluster, std::string_view file);

 private:
  /// Objects matching one condition, ascending (unlocked).
  [[nodiscard]] std::vector<ObjectId> match_one(
      const MetaCondition& condition) const;
  /// Estimated posting-list size of one condition without materializing it
  /// (unlocked).  Exact for kValue conditions; affix kinds pay their
  /// linear scan here (they ARE the linear-scan oracle).
  [[nodiscard]] std::uint64_t estimate_one(
      const MetaCondition& condition) const;
  /// Does `object` satisfy `condition`? (unlocked, per-candidate probe).
  [[nodiscard]] bool object_matches(ObjectId object,
                                    const MetaCondition& condition) const;

  struct AttrIndex {
    // String equality.
    std::unordered_map<std::string, std::vector<ObjectId>> by_string;
    // Numeric equality and ranges (int64 attrs are folded into double keys;
    // exact for |v| < 2^53, ample for scientific metadata).
    std::map<double, std::vector<ObjectId>> by_number;
  };

  mutable std::shared_mutex mu_;
  mutable std::atomic<std::uint64_t> probes_{0};
  std::unordered_map<ObjectId, std::map<std::string, MetaValue>> per_object_;
  std::unordered_map<std::string, AttrIndex> indexes_;
};

}  // namespace pdc::meta
