// Object metadata management (SoMeta-lite, paper §II and §VI-C).
//
// Every object carries a set of named attributes (strings or numbers).
// Metadata objects are small and kept entirely in memory, pre-loaded at
// server start (paper: "pre-loaded at server start time and stored as
// in-memory objects").  Two inverted indexes — a hash index for string
// equality and an ordered index for numeric equality/range — make metadata
// queries (e.g. "RADEG=153.17 AND DECDEG=23.06") resolve in micro-seconds
// instead of a full traversal, which is exactly the advantage Fig. 5
// attributes to PDC over the HDF5 file-walk.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <variant>
#include <vector>

#include "common/serial.h"
#include "common/status.h"
#include "common/types.h"
#include "pfs/pfs.h"

namespace pdc::meta {

/// Attribute value: text or numeric.
using MetaValue = std::variant<std::string, double, std::int64_t>;

/// One conjunct of a metadata query.  String values support kEQ only.
struct MetaCondition {
  std::string attribute;
  QueryOp op = QueryOp::kEQ;
  MetaValue value;
};

class MetaStore {
 public:
  /// Set (or overwrite) one attribute of an object.
  void set_attribute(ObjectId object, std::string_view attribute,
                     MetaValue value);

  [[nodiscard]] std::optional<MetaValue> get_attribute(
      ObjectId object, std::string_view attribute) const;

  /// All attributes of one object (copy).
  [[nodiscard]] std::map<std::string, MetaValue> attributes(
      ObjectId object) const;

  /// Objects satisfying the conjunction of all `conditions`, ascending ids.
  /// Unknown attributes match nothing.
  [[nodiscard]] std::vector<ObjectId> query(
      std::span<const MetaCondition> conditions) const;

  /// Paper's PDCquery_tag: objects whose `attribute` equals `value`.
  [[nodiscard]] std::vector<ObjectId> query_tag(std::string_view attribute,
                                                const MetaValue& value) const;

  [[nodiscard]] std::size_t num_objects() const;
  [[nodiscard]] std::size_t num_attributes() const;

  // ---- fault tolerance (paper §II: metadata "is periodically persisted
  // to the storage system") ----
  /// Serialize every object's attributes (indexes rebuild on load).
  void serialize(SerialWriter& w) const;
  /// Restore into an EMPTY store.
  Status load(SerialReader& r);
  /// Checkpoint to / restore from a PFS file.
  Status persist_to(pfs::PfsCluster& cluster, std::string_view file) const;
  Status load_from(const pfs::PfsCluster& cluster, std::string_view file);

 private:
  /// Objects matching one condition, ascending (unlocked).
  [[nodiscard]] std::vector<ObjectId> match_one(
      const MetaCondition& condition) const;

  struct AttrIndex {
    // String equality.
    std::unordered_map<std::string, std::vector<ObjectId>> by_string;
    // Numeric equality and ranges (int64 attrs are folded into double keys;
    // exact for |v| < 2^53, ample for scientific metadata).
    std::map<double, std::vector<ObjectId>> by_number;
  };

  mutable std::shared_mutex mu_;
  std::unordered_map<ObjectId, std::map<std::string, MetaValue>> per_object_;
  std::unordered_map<std::string, AttrIndex> indexes_;
};

}  // namespace pdc::meta
