#include "server/region_pipeline.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <span>
#include <type_traits>
#include <utility>

#include "bitmap/binned_index.h"
#include "bitmap/delta_wah.h"
#include "common/log.h"
#include "kernels/kernels.h"
#include "obj/type_dispatch.h"
#include "server/region_assignment.h"

namespace pdc::server {
namespace {

/// Scan a region buffer for matches within the global element range
/// `want` (a sub-extent of `region_extent`); appends global positions.
void scan_buffer(PdcType type, const std::uint8_t* bytes,
                 Extent1D region_extent, Extent1D want,
                 const ValueInterval& interval,
                 std::vector<std::uint64_t>& out) {
  obj::dispatch_type(type, [&](auto tag) {
    using T = decltype(tag);
    const T* values = reinterpret_cast<const T*>(bytes) +
                      (want.offset - region_extent.offset);
    kernels::scan_interval(std::span<const T>(values, want.count), interval,
                           want.offset, out);
  });
}

/// Check `interval` against the value at buffer-local index `local`.
bool check_value(PdcType type, const std::uint8_t* bytes, std::uint64_t local,
                 const ValueInterval& interval) {
  return obj::dispatch_type(type, [&](auto tag) {
    using T = decltype(tag);
    return interval.contains(static_cast<double>(
        reinterpret_cast<const T*>(bytes)[local]));
  });
}

/// Smallest T whose double value is >= b; nullopt when b exceeds every T.
/// The scan path compares (double)element against the double bound, so the
/// sorted path must search with a bound *rounded to the element domain in
/// the right direction* — a plain static_cast<T>(b) rounds to nearest and
/// silently moves the cutoff (e.g. (float)(1.0 + 1e-12) == 1.0f, flipping
/// whether elements equal to 1.0f pass a `> 1.0 + 1e-12` query).
template <typename T>
std::optional<T> smallest_key_geq(double b) {
  if constexpr (std::is_floating_point_v<T>) {
    T t = static_cast<T>(b);  // round-to-nearest
    if (static_cast<double>(t) < b) {
      t = std::nextafter(t, std::numeric_limits<T>::infinity());
    }
    return t;  // +inf is fine: it selects exactly the +inf elements
  } else {
    const double c = std::ceil(b);
    if (c > static_cast<double>(std::numeric_limits<T>::max())) {
      return std::nullopt;
    }
    if (c < static_cast<double>(std::numeric_limits<T>::lowest())) {
      return std::numeric_limits<T>::lowest();
    }
    return static_cast<T>(c);
  }
}

/// Largest T whose double value is <= b; nullopt when b is below every T.
template <typename T>
std::optional<T> largest_key_leq(double b) {
  if constexpr (std::is_floating_point_v<T>) {
    T t = static_cast<T>(b);
    if (static_cast<double>(t) > b) {
      t = std::nextafter(t, -std::numeric_limits<T>::infinity());
    }
    return t;
  } else {
    const double f = std::floor(b);
    if (f < static_cast<double>(std::numeric_limits<T>::lowest())) {
      return std::nullopt;
    }
    if (f > static_cast<double>(std::numeric_limits<T>::max())) {
      return std::numeric_limits<T>::max();
    }
    return static_cast<T>(f);
  }
}

/// Local [first, last) index range of values satisfying `interval` in a
/// sorted buffer of `count` elements.  Exact in the double domain: agrees
/// element-for-element with the scan path's contains((double)v) predicate.
std::pair<std::uint64_t, std::uint64_t> sorted_range(
    PdcType type, const std::uint8_t* bytes, std::uint64_t count,
    const ValueInterval& interval) {
  return obj::dispatch_type(type, [&](auto tag) {
    using T = decltype(tag);
    const std::span<const T> values(reinterpret_cast<const T*>(bytes), count);
    std::uint64_t lo_idx = 0;
    if (std::isfinite(interval.lo)) {
      if (interval.lo_inclusive) {
        // First v with (double)v >= lo.  Every such v is >= the smallest
        // representable key >= lo (no T lives in (key_prev, lo)).
        const auto key = smallest_key_geq<T>(interval.lo);
        lo_idx = key ? kernels::lower_bound_index(values, *key) : count;
      } else {
        // First v with (double)v > lo: strictly past the largest key <= lo.
        const auto key = largest_key_leq<T>(interval.lo);
        lo_idx = key ? kernels::upper_bound_index(values, *key) : 0;
      }
    }
    std::uint64_t hi_idx = count;
    if (std::isfinite(interval.hi)) {
      if (interval.hi_inclusive) {
        const auto key = largest_key_leq<T>(interval.hi);
        hi_idx = key ? kernels::upper_bound_index(values, *key) : 0;
      } else {
        const auto key = smallest_key_geq<T>(interval.hi);
        hi_idx = key ? kernels::lower_bound_index(values, *key) : count;
      }
    }
    if (hi_idx < lo_idx) hi_idx = lo_idx;
    return std::pair<std::uint64_t, std::uint64_t>(lo_idx, hi_idx);
  });
}

}  // namespace

RegionChoice classify_region(const hist::MergeableHistogram& histogram,
                             const ValueInterval& interval,
                             const AdaptiveKnobs& knobs) noexcept {
  if (!histogram.may_overlap(interval)) return RegionChoice::kPruned;
  if (histogram.covers(interval)) return RegionChoice::kAllHit;
  if (!knobs.has_index) return RegionChoice::kScan;
  // Dense regions: streaming the region costs one sequential read and a
  // scan; probing would decode most bins AND point-read many candidates.
  // Sparse regions: the index touches only the few relevant bins.
  const double selectivity =
      histogram.estimate(interval).selectivity_mid(histogram.total_count());
  return selectivity >= knobs.dense_read_threshold ? RegionChoice::kScan
                                                   : RegionChoice::kIndex;
}

PipelineConfig pipeline_config(Strategy strategy, bool sorted_driver) noexcept {
  switch (strategy) {
    case Strategy::kFullScan:
      return {AccessPathKind::kScan, /*prune=*/false,
              /*all_hit_fetches=*/false, "phase.region_scan"};
    case Strategy::kHistogram:
      return {AccessPathKind::kScan, /*prune=*/true,
              /*all_hit_fetches=*/true, "phase.histogram_prune"};
    case Strategy::kHistogramIndex:
      return {AccessPathKind::kIndexProbe, /*prune=*/true,
              /*all_hit_fetches=*/false, "phase.histogram_prune"};
    case Strategy::kSortedHistogram:
      if (sorted_driver) {
        return {AccessPathKind::kSortedBoundary, /*prune=*/true,
                /*all_hit_fetches=*/false, "phase.sorted_boundary"};
      }
      // No replica available: degrade to the histogram scan config.
      return {AccessPathKind::kScan, /*prune=*/true,
              /*all_hit_fetches=*/true, "phase.histogram_prune"};
    case Strategy::kAdaptive:
      return {AccessPathKind::kAdaptive, /*prune=*/true,
              /*all_hit_fetches=*/false, "phase.adaptive_plan"};
  }
  return {};
}

void RegionPipeline::annotate_task_span(obs::ScopedSpan& span,
                                        const CostLedger& task_ledger) {
  if (span.id() == 0) return;
  const exec::TaskInfo task = exec::current_task();
  if (task.in_task) {
    span.arg("worker", static_cast<double>(
                           static_cast<std::int64_t>(task.worker)));
    span.arg("stolen", task.stolen ? 1.0 : 0.0);
  }
  span.arg("io_s", task_ledger.io_seconds());
  span.arg("cpu_s", task_ledger.cpu_seconds());
}

Status RegionPipeline::fan_out_join(std::size_t tasks,
                                    const obs::TraceContext& phase,
                                    const char* span_name, CostLedger& ledger,
                                    const TaskBody& body) {
  std::vector<Status> statuses(tasks);
  std::vector<CostLedger> ledgers(tasks);
  exec::parallel_for(env_.pool, tasks, [&](std::size_t i) {
    obs::ScopedSpan task_span(phase, span_name, *env_.actor);
    statuses[i] = body(i, ledgers[i], task_span);
    annotate_task_span(task_span, ledgers[i]);
  });
  for (const Status& s : statuses) PDC_RETURN_IF_ERROR(s);
  ledger.merge_parallel(ledgers, eval_threads());
  return Status::Ok();
}

Status RegionPipeline::run(const obj::ObjectDescriptor& object,
                           const ValueInterval& interval, Extent1D constraint,
                           ServerId identity, const PipelineConfig& config,
                           CostLedger& ledger,
                           std::vector<std::uint64_t>& positions,
                           std::vector<Extent1D>& extents,
                           RegionChoiceCounts& counts,
                           const obs::TraceContext& trace) {
  // Staleness accounting: the response reports the highest data epoch this
  // evaluation saw, so clients can tell which snapshot answered them.
  for (const RegionIndex r :
       regions_of_server(object, identity, env_.num_servers)) {
    counts.max_data_epoch =
        std::max(counts.max_data_epoch, object.regions[r].data_epoch);
  }
  switch (config.access) {
    case AccessPathKind::kScan:
      return run_scan(object, interval, constraint, config, identity, ledger,
                      positions, counts, trace);
    case AccessPathKind::kIndexProbe:
      return run_index(object, interval, constraint, identity, ledger,
                       positions, counts, trace);
    case AccessPathKind::kSortedBoundary:
      return run_sorted(object, interval, identity, ledger, extents, counts,
                        trace);
    case AccessPathKind::kAdaptive:
      return run_adaptive(object, interval, constraint, identity, ledger,
                          positions, counts, trace);
  }
  return Status::InvalidArgument("unknown access path");
}

Status RegionPipeline::run_scan(const obj::ObjectDescriptor& object,
                                const ValueInterval& interval,
                                Extent1D constraint,
                                const PipelineConfig& config,
                                ServerId identity, CostLedger& ledger,
                                std::vector<std::uint64_t>& positions,
                                RegionChoiceCounts& /*counts*/,
                                const obs::TraceContext& trace) {
  const CostModel& cost = env_.store->cluster().config().cost;
  const bool prune = config.prune;
  const std::vector<RegionIndex> regions =
      regions_of_server(object, identity, env_.num_servers);
  obs::ScopedSpan phase(trace, config.phase_name, *env_.actor);
  phase.arg("regions", static_cast<double>(regions.size()));
  phase.arg("identity", static_cast<double>(identity));
  // One pool task per region (fetch through the cache + scan).  Each task
  // fills its own slot, so concatenating slots in region-index order below
  // reproduces the serial loop bit-exactly: per-region hit lists are
  // ascending and region extents are disjoint ascending.
  std::vector<std::vector<std::uint64_t>> hits(regions.size());
  PDC_RETURN_IF_ERROR(fan_out_join(
      regions.size(), phase.context(), "region", ledger,
      [&](std::size_t i, CostLedger& task_ledger,
          obs::ScopedSpan& region_span) -> Status {
        region_span.arg("region", static_cast<double>(regions[i]));
        const RegionIndex r = regions[i];
        const obj::RegionDescriptor& region = object.regions[r];
        Extent1D want = region.extent;
        if (constraint.count > 0) {
          want = want.intersect(constraint);
          if (want.empty()) return Status::Ok();
        }
        if (prune && !region.histogram.may_overlap(interval)) {
          region_span.arg("pruned", 1.0);
          return Status::Ok();  // eliminated by min/max — no I/O at all
        }
        const bool all_hits = prune && region.histogram.covers(interval);
        // Fetch through the cache (populates it for later queries/get-data).
        PDC_ASSIGN_OR_RETURN(
            RegionCache::Buffer buffer,
            fetch_region(object, r, task_ledger, /*cacheable=*/true,
                         region_span.context()));
        if (all_hits) {
          region_span.arg("all_hits", 1.0);
          // Histogram proves every element matches: skip the scan.
          kernels::append_range(hits[i], want.offset, want.end());
          return Status::Ok();
        }
        task_ledger.add_cpu(
            cost.scan_cost(want.count * object.element_size()),
            CpuStage::kScan);
        scan_buffer(object.type, buffer->data(), region.extent, want,
                    interval, hits[i]);
        return Status::Ok();
      }));
  for (const std::vector<std::uint64_t>& h : hits) {
    positions.insert(positions.end(), h.begin(), h.end());
  }
  return Status::Ok();
}

Status RegionPipeline::scan_group(const obj::ObjectDescriptor& object,
                                  const ValueInterval& interval,
                                  const std::vector<ScanItem>& items,
                                  CostLedger& ledger,
                                  std::vector<std::uint64_t>& positions,
                                  const obs::TraceContext& trace) {
  const CostModel& cost = env_.store->cluster().config().cost;
  obs::ScopedSpan scan_phase(trace, "phase.region_scan", *env_.actor);
  scan_phase.arg("regions", static_cast<double>(items.size()));
  std::vector<std::vector<std::uint64_t>> hits(items.size());
  PDC_RETURN_IF_ERROR(fan_out_join(
      items.size(), scan_phase.context(), "region_fetch", ledger,
      [&](std::size_t i, CostLedger& task_ledger,
          obs::ScopedSpan& region_span) -> Status {
        region_span.arg("region", static_cast<double>(items[i].region));
        const obj::RegionDescriptor& region = object.regions[items[i].region];
        const Extent1D want = items[i].want;
        PDC_ASSIGN_OR_RETURN(
            RegionCache::Buffer buffer,
            fetch_region(object, items[i].region, task_ledger,
                         /*cacheable=*/true, region_span.context()));
        task_ledger.add_cpu(
            cost.scan_cost(want.count * object.element_size()),
            CpuStage::kScan);
        scan_buffer(object.type, buffer->data(), region.extent, want,
                    interval, hits[i]);
        return Status::Ok();
      }));
  for (const std::vector<std::uint64_t>& h : hits) {
    positions.insert(positions.end(), h.begin(), h.end());
  }
  return Status::Ok();
}

Status RegionPipeline::plan_region_bins(const obj::ObjectDescriptor& object,
                                        RegionIndex r,
                                        const ValueInterval& interval,
                                        std::vector<PlannedBin>& planned,
                                        obs::ScopedSpan& region_span) {
  const obj::RegionDescriptor& region = object.regions[r];
  PDC_ASSIGN_OR_RETURN(
      bitmap::PartitionedIndexView view,
      bitmap::PartitionedIndexView::ParseHeader(region.index_header));
  const auto selection = view.select_bins(interval);
  std::vector<std::pair<std::uint32_t, bool>> bins;
  bins.reserve(selection.full.size() + selection.partial.size());
  for (const std::uint32_t b : selection.full) bins.emplace_back(b, true);
  for (const std::uint32_t b : selection.partial) {
    bins.emplace_back(b, false);
  }
  std::sort(bins.begin(), bins.end());
  region_span.arg("bins", static_cast<double>(bins.size()));
  for (const auto& [b, full] : bins) {
    Extent1D e = view.bin_extent(b);
    e.offset += region.index_offset;
    // Previously-read bins are served from the server's index cache; an
    // entry cached under an older index epoch (pre-compaction) misses.
    const RegionCache::Key key{object.id,
                               static_cast<RegionIndex>(r * 2048 + b)};
    planned.push_back(
        {r, b, full, env_.index_cache->get(key, region.index_epoch), e});
  }
  return Status::Ok();
}

Status RegionPipeline::read_missing_bins(const obj::ObjectDescriptor& object,
                                         std::vector<PlannedBin>& planned,
                                         CostLedger& ledger,
                                         const obs::TraceContext& trace) {
  std::vector<Extent1D> missing_extents;
  std::vector<std::size_t> missing_index;
  for (std::size_t i = 0; i < planned.size(); ++i) {
    if (planned[i].cached == nullptr) {
      missing_extents.push_back(planned[i].extent);
      missing_index.push_back(i);
    }
  }
  if (missing_extents.empty()) return Status::Ok();
  PDC_ASSIGN_OR_RETURN(pfs::PfsFile index_file,
                       env_.store->cluster().open(object.index_file));
  std::vector<std::shared_ptr<std::vector<std::uint8_t>>> buffers;
  std::vector<std::span<std::uint8_t>> dests;
  buffers.reserve(missing_extents.size());
  for (const Extent1D& e : missing_extents) {
    buffers.push_back(std::make_shared<std::vector<std::uint8_t>>(
        static_cast<std::size_t>(e.count)));
    dests.emplace_back(*buffers.back());
  }
  PDC_RETURN_IF_ERROR(pfs::aggregated_read(index_file, missing_extents, dests,
                                           env_.index_aggregation,
                                           read_ctx(ledger, trace)));
  for (std::size_t k = 0; k < missing_index.size(); ++k) {
    PlannedBin& p = planned[missing_index[k]];
    p.cached = buffers[k];
    env_.index_cache->put(
        {object.id, static_cast<RegionIndex>(p.region * 2048 + p.bin)},
        buffers[k], object.regions[p.region].index_epoch);
  }
  return Status::Ok();
}

Status RegionPipeline::decode_bins(const obj::ObjectDescriptor& object,
                                   Extent1D constraint,
                                   std::vector<PlannedBin>& planned,
                                   CostLedger& ledger,
                                   std::vector<std::uint64_t>& positions,
                                   std::vector<std::uint64_t>& candidates,
                                   const obs::TraceContext& trace) {
  const CostModel& cost = env_.store->cluster().config().cost;
  // One task per planned bin; definite hits and candidates land in
  // per-task slots, concatenated afterwards.  Order does not matter for
  // correctness: positions get a final sort and candidates are sorted
  // before the aggregated value check.
  std::vector<std::vector<std::uint64_t>> definite(planned.size());
  std::vector<std::vector<std::uint64_t>> partial(planned.size());
  PDC_RETURN_IF_ERROR(fan_out_join(
      planned.size(), trace, "bin", ledger,
      [&](std::size_t i, CostLedger& task_ledger,
          obs::ScopedSpan& bin_span) -> Status {
        bin_span.arg("region", static_cast<double>(planned[i].region));
        bin_span.arg("bin", static_cast<double>(planned[i].bin));
        PDC_ASSIGN_OR_RETURN(
            bitmap::WahBitVector bv,
            bitmap::PartitionedIndexView::DecodeBin(*planned[i].cached));
        task_ledger.add_cpu(static_cast<double>(planned[i].cached->size()) /
                                cost.index_decode_bandwidth_bps,
                            CpuStage::kDecode);
        const obj::RegionDescriptor& region =
            object.regions[planned[i].region];
        if (!region.delta.empty()) {
          // Overwritten positions: mask the base bitmap's dirty bits and
          // add the delta bits of positions whose current value is in this
          // bin.  Delta-absorbed values are strictly bin-interior (see
          // delta_bin_of), so full-bin "definite hit" semantics still hold.
          PDC_ASSIGN_OR_RETURN(
              bv, bitmap::combine_base_delta(
                      bv, region.delta.dirty_positions(),
                      region.delta.bin_positions(planned[i].bin)));
          task_ledger.add_cpu(
              static_cast<double>(region.delta.entries.size() * 8) /
                  cost.index_decode_bandwidth_bps,
              CpuStage::kDecode);
        }
        Extent1D want = region.extent;
        if (constraint.count > 0) want = want.intersect(constraint);
        auto& sink = planned[i].full ? definite[i] : partial[i];
        // Kernel-backed bulk expansion (for_each_set + clip filter).
        bv.append_set_positions(region.extent.offset, want.offset, want.end(),
                                sink);
        return Status::Ok();
      }));
  for (std::size_t i = 0; i < planned.size(); ++i) {
    positions.insert(positions.end(), definite[i].begin(), definite[i].end());
    candidates.insert(candidates.end(), partial[i].begin(), partial[i].end());
  }
  return Status::Ok();
}

Status RegionPipeline::check_candidates(const obj::ObjectDescriptor& object,
                                        const ValueInterval& interval,
                                        std::vector<std::uint64_t>& candidates,
                                        CostLedger& ledger,
                                        std::vector<std::uint64_t>& positions,
                                        const obs::TraceContext& trace) {
  const CostModel& cost = env_.store->cluster().config().cost;
  obs::ScopedSpan check_phase(trace, "phase.candidate_check", *env_.actor);
  check_phase.arg("candidates", static_cast<double>(candidates.size()));
  std::sort(candidates.begin(), candidates.end());
  const std::size_t elem_size = object.element_size();
  // Candidate values are fetched with the wide-gap policy: merging nearby
  // candidates into one larger read costs extra bytes but far fewer op
  // latencies (the block-read philosophy of §III-E).
  std::vector<std::uint8_t> values(candidates.size() * elem_size);
  PDC_RETURN_IF_ERROR(
      env_.store->read_values_at(object, candidates, values, env_.aggregation,
                                 read_ctx(ledger, check_phase.context())));
  ledger.add_cpu(cost.scan_cost(values.size()), CpuStage::kScan);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (check_value(object.type, values.data(), i, interval)) {
      positions.push_back(candidates[i]);
    }
  }
  return Status::Ok();
}

Status RegionPipeline::run_index(const obj::ObjectDescriptor& object,
                                 const ValueInterval& interval,
                                 Extent1D constraint, ServerId identity,
                                 CostLedger& ledger,
                                 std::vector<std::uint64_t>& positions,
                                 RegionChoiceCounts& counts,
                                 const obs::TraceContext& trace) {
  if (object.index_file.empty()) {
    return Status::FailedPrecondition("object has no bitmap index: " +
                                      object.name);
  }

  // Pass 1 — plan.  Index headers (bin edges + sizes) travel with region
  // metadata, so classifying bins needs no storage round trip.  Collect the
  // byte extents of every needed bin across ALL surviving regions, then
  // issue one aggregated read over the index file.
  std::vector<PlannedBin> planned;
  std::vector<ScanItem> stale_items;
  obs::ScopedSpan prune_phase(trace, "phase.histogram_prune", *env_.actor);
  for (const RegionIndex r :
       regions_of_server(object, identity, env_.num_servers)) {
    obs::ScopedSpan region_span(prune_phase.context(), "region", *env_.actor);
    region_span.arg("region", static_cast<double>(r));
    const obj::RegionDescriptor& region = object.regions[r];
    Extent1D want = region.extent;
    if (constraint.count > 0) {
      want = want.intersect(constraint);
      if (want.empty()) continue;
    }
    if (!region.histogram.may_overlap(interval)) {
      region_span.arg("pruned", 1.0);
      continue;
    }
    if (region.histogram.covers(interval)) {
      region_span.arg("all_hits", 1.0);
      // Histogram proves the whole region matches: no index I/O needed.
      // (Histograms are maintained on every write, so this stays sound
      // even when the region's bitmap index is stale.)
      kernels::append_range(positions, want.offset, want.end());
      continue;
    }
    if (!region.index_fresh()) {
      // The bitmap index lags the region's data (append / missed
      // maintenance / unsafe delta): fall back to fetch+scan for this
      // region only; fresh regions still probe their bins.
      region_span.arg("stale", 1.0);
      ++counts.stale;
      ++counts.scanned;
      stale_items.push_back({r, want});
      continue;
    }
    PDC_RETURN_IF_ERROR(
        plan_region_bins(object, r, interval, planned, region_span));
  }
  prune_phase.arg("planned_bins", static_cast<double>(planned.size()));
  prune_phase.arg("stale_regions", static_cast<double>(stale_items.size()));
  prune_phase.close();

  if (!stale_items.empty()) {
    PDC_RETURN_IF_ERROR(
        scan_group(object, interval, stale_items, ledger, positions, trace));
  }

  if (!planned.empty()) {
    obs::ScopedSpan decode_phase(trace, "phase.bin_decode", *env_.actor);
    decode_phase.arg("bins", static_cast<double>(planned.size()));
    // Read the uncached bins in one aggregated pass, then decode.
    PDC_RETURN_IF_ERROR(
        read_missing_bins(object, planned, ledger, decode_phase.context()));
    std::vector<std::uint64_t> candidates;
    PDC_RETURN_IF_ERROR(decode_bins(object, constraint, planned, ledger,
                                    positions, candidates,
                                    decode_phase.context()));
    log_debug("HI server ", env_.id, ": obj ", object.id, " bins=",
              planned.size(), " definite=", positions.size(),
              " candidates=", candidates.size());
    decode_phase.close();
    if (!candidates.empty()) {
      PDC_RETURN_IF_ERROR(check_candidates(object, interval, candidates,
                                           ledger, positions, trace));
    }
  }
  std::sort(positions.begin(), positions.end());
  return Status::Ok();
}

Status RegionPipeline::run_sorted(const obj::ObjectDescriptor& replica,
                                  const ValueInterval& interval,
                                  ServerId identity, CostLedger& ledger,
                                  std::vector<Extent1D>& extents,
                                  RegionChoiceCounts& /*counts*/,
                                  const obs::TraceContext& trace) {
  const CostModel& cost = env_.store->cluster().config().cost;
  const std::vector<RegionIndex> regions =
      regions_of_server(replica, identity, env_.num_servers);
  obs::ScopedSpan phase(trace, "phase.sorted_boundary", *env_.actor);
  phase.arg("regions", static_cast<double>(regions.size()));
  phase.arg("identity", static_cast<double>(identity));
  // Boundary regions fetch + binary-search in parallel; the extent list is
  // then assembled serially in region-index order so cross-region
  // coalescing sees the same adjacency as the serial loop.
  std::vector<Extent1D> found(regions.size());  // count == 0: no hit
  PDC_RETURN_IF_ERROR(fan_out_join(
      regions.size(), phase.context(), "region", ledger,
      [&](std::size_t i, CostLedger& task_ledger,
          obs::ScopedSpan& region_span) -> Status {
        region_span.arg("region", static_cast<double>(regions[i]));
        const RegionIndex r = regions[i];
        const obj::RegionDescriptor& region = replica.regions[r];
        if (!region.histogram.may_overlap(interval)) {
          region_span.arg("pruned", 1.0);
          return Status::Ok();
        }
        if (region.histogram.covers(interval)) {
          region_span.arg("all_hits", 1.0);
          found[i] = region.extent;  // interior region: all elements match
          return Status::Ok();
        }
        // Boundary region: fetch (cached) and binary-search the range.
        PDC_ASSIGN_OR_RETURN(
            RegionCache::Buffer buffer,
            fetch_region(replica, r, task_ledger, /*cacheable=*/true,
                         region_span.context()));
        const auto [lo, hi] = sorted_range(replica.type, buffer->data(),
                                           region.extent.count, interval);
        // Binary search touches O(log n) elements.
        task_ledger.add_cpu(
            cost.scan_cost(
                2 * 64 * replica.element_size() *
                static_cast<std::uint64_t>(
                    std::ceil(std::log2(static_cast<double>(
                        std::max<std::uint64_t>(2, region.extent.count)))))),
            CpuStage::kScan);
        if (hi > lo) found[i] = {region.extent.offset + lo, hi - lo};
        return Status::Ok();
      }));
  for (const Extent1D& hit : found) {
    if (hit.count == 0) continue;
    // Coalesce extents adjacent across region boundaries.
    if (!extents.empty() && extents.back().end() == hit.offset) {
      extents.back().count += hit.count;
    } else {
      extents.push_back(hit);
    }
  }
  return Status::Ok();
}

Status RegionPipeline::run_adaptive(const obj::ObjectDescriptor& object,
                                    const ValueInterval& interval,
                                    Extent1D constraint, ServerId identity,
                                    CostLedger& ledger,
                                    std::vector<std::uint64_t>& positions,
                                    RegionChoiceCounts& counts,
                                    const obs::TraceContext& trace) {
  const AdaptiveKnobs knobs{env_.dense_read_threshold,
                            !object.index_file.empty()};
  const std::vector<RegionIndex> regions =
      regions_of_server(object, identity, env_.num_servers);

  // Plan — classify every region from its histogram (serial: pure metadata
  // work, one "region" span per region like the other strategies).
  std::vector<ScanItem> scan_items;
  std::vector<PlannedBin> planned;
  obs::ScopedSpan plan_phase(trace, "phase.adaptive_plan", *env_.actor);
  plan_phase.arg("regions", static_cast<double>(regions.size()));
  plan_phase.arg("identity", static_cast<double>(identity));
  for (const RegionIndex r : regions) {
    obs::ScopedSpan region_span(plan_phase.context(), "region", *env_.actor);
    region_span.arg("region", static_cast<double>(r));
    const obj::RegionDescriptor& region = object.regions[r];
    Extent1D want = region.extent;
    if (constraint.count > 0) {
      want = want.intersect(constraint);
      if (want.empty()) continue;
    }
    RegionChoice c = classify_region(region.histogram, interval, knobs);
    if (c == RegionChoice::kIndex && !region.index_fresh()) {
      // The region's base+delta index lags its data epoch (append, missed
      // maintenance window, or unsafe delta assignment): scan instead.
      c = RegionChoice::kScan;
      ++counts.stale;
      region_span.arg("stale", 1.0);
    }
    counts.tally(c);
    switch (c) {
      case RegionChoice::kPruned:
        region_span.arg("pruned", 1.0);
        break;
      case RegionChoice::kAllHit:
        region_span.arg("all_hits", 1.0);
        // Answered from metadata alone (like the index path): no I/O.
        kernels::append_range(positions, want.offset, want.end());
        break;
      case RegionChoice::kScan:
        region_span.arg("scan", 1.0);
        scan_items.push_back({r, want});
        break;
      case RegionChoice::kIndex:
        PDC_RETURN_IF_ERROR(
            plan_region_bins(object, r, interval, planned, region_span));
        break;
    }
  }
  plan_phase.arg("scanned", static_cast<double>(scan_items.size()));
  plan_phase.arg("indexed", static_cast<double>(counts.indexed));
  plan_phase.arg("allhit", static_cast<double>(counts.allhit));
  plan_phase.arg("planned_bins", static_cast<double>(planned.size()));
  plan_phase.close();

  // Scan group: dense (or index-stale) regions stream through the cache
  // like PDC-H.
  if (!scan_items.empty()) {
    PDC_RETURN_IF_ERROR(
        scan_group(object, interval, scan_items, ledger, positions, trace));
  }

  // Index group: sparse regions probe their WAH bins like PDC-HI.
  if (!planned.empty()) {
    obs::ScopedSpan decode_phase(trace, "phase.bin_decode", *env_.actor);
    decode_phase.arg("bins", static_cast<double>(planned.size()));
    PDC_RETURN_IF_ERROR(
        read_missing_bins(object, planned, ledger, decode_phase.context()));
    std::vector<std::uint64_t> candidates;
    PDC_RETURN_IF_ERROR(decode_bins(object, constraint, planned, ledger,
                                    positions, candidates,
                                    decode_phase.context()));
    decode_phase.close();
    if (!candidates.empty()) {
      PDC_RETURN_IF_ERROR(check_candidates(object, interval, candidates,
                                           ledger, positions, trace));
    }
  }

  // Collector: the three groups interleave in region space, so the final
  // order is restored here (uncharged, like the index path's final sort).
  std::sort(positions.begin(), positions.end());
  return Status::Ok();
}

Status RegionPipeline::restrict(const obj::ObjectDescriptor& object,
                                const ValueInterval& interval,
                                bool full_scan_mode, CostLedger& ledger,
                                std::vector<std::uint64_t>& positions,
                                const obs::TraceContext& trace) {
  obs::ScopedSpan phase(trace, "phase.restrict", *env_.actor);
  phase.arg("object", static_cast<double>(object.id));
  phase.arg("positions_in", static_cast<double>(positions.size()));
  const CostModel& cost = env_.store->cluster().config().cost;
  const std::size_t elem_size = object.element_size();

  // Split the ascending position list into per-region groups serially
  // (cheap), then check the groups in parallel.  Groups are disjoint
  // ascending, so concatenating the per-group keep lists in group order
  // reproduces the serial result bit-exactly.
  struct Group {
    std::size_t begin;
    std::size_t end;
    RegionIndex region;
  };
  std::vector<Group> groups;
  std::size_t i = 0;
  while (i < positions.size()) {
    const RegionIndex r = region_of_position(object, positions[i]);
    std::size_t j = i;
    while (j < positions.size() &&
           region_of_position(object, positions[j]) == r) {
      ++j;
    }
    groups.push_back({i, j, r});
    i = j;
  }

  std::vector<std::vector<std::uint64_t>> kept_parts(groups.size());
  PDC_RETURN_IF_ERROR(fan_out_join(
      groups.size(), phase.context(), "region_check", ledger,
      [&](std::size_t gi, CostLedger& task_ledger,
          obs::ScopedSpan& group_span) -> Status {
        group_span.arg("region", static_cast<double>(groups[gi].region));
        const std::span<const std::uint64_t> group(
            &positions[groups[gi].begin], groups[gi].end - groups[gi].begin);
        const RegionIndex r = groups[gi].region;
        const obj::RegionDescriptor& region = object.regions[r];
        std::vector<std::uint64_t>& kept = kept_parts[gi];

        if (!full_scan_mode) {
          if (!region.histogram.may_overlap(interval)) {
            return Status::Ok();  // drop group
          }
          if (region.histogram.covers(interval)) {
            kept.insert(kept.end(), group.begin(), group.end());
            return Status::Ok();
          }
        }

        RegionCache::Buffer buffer =
            env_.data_cache->get({object.id, r}, region.data_epoch);
        // Treat the group as dense when it holds many positions OR when its
        // positions span most of the region anyway: the aggregated point
        // read would coalesce into a near-whole-region read, so reading the
        // region through the cache costs the same now and is free next time.
        const std::uint64_t span_bytes =
            group.empty() ? 0
                          : (group.back() - group.front() + 1) * elem_size;
        const bool dense =
            full_scan_mode ||
            static_cast<double>(group.size()) >
                env_.dense_read_threshold *
                    static_cast<double>(region.extent.count) ||
            span_bytes * 2 >= region.extent.count * elem_size;
        if (buffer == nullptr && dense) {
          PDC_ASSIGN_OR_RETURN(
              buffer, fetch_region(object, r, task_ledger,
                                   /*cacheable=*/true, group_span.context()));
          if (full_scan_mode) {
            // The baseline scans the whole region regardless of selectivity.
            task_ledger.add_cpu(
                cost.scan_cost(region.extent.count * elem_size),
                CpuStage::kScan);
          }
        }
        if (buffer != nullptr) {
          task_ledger.add_cpu(static_cast<double>(group.size() * elem_size) /
                                  cost.memcpy_bandwidth_bps,
                              CpuStage::kScan);
          for (const std::uint64_t pos : group) {
            if (check_value(object.type, buffer->data(),
                            pos - region.extent.offset, interval)) {
              kept.push_back(pos);
            }
          }
        } else {
          // Sparse group, cold region: aggregated point reads.
          std::vector<std::uint8_t> values(group.size() * elem_size);
          PDC_RETURN_IF_ERROR(env_.store->read_values_at(
              object, group, values, env_.aggregation,
              read_ctx(task_ledger, group_span.context())));
          task_ledger.add_cpu(cost.scan_cost(values.size()), CpuStage::kScan);
          for (std::size_t k = 0; k < group.size(); ++k) {
            if (check_value(object.type, values.data(), k, interval)) {
              kept.push_back(group[k]);
            }
          }
        }
        return Status::Ok();
      }));

  std::vector<std::uint64_t> kept;
  kept.reserve(positions.size());
  for (const std::vector<std::uint64_t>& part : kept_parts) {
    kept.insert(kept.end(), part.begin(), part.end());
  }
  positions = std::move(kept);
  phase.arg("positions_out", static_cast<double>(positions.size()));
  return Status::Ok();
}

Result<RegionCache::Buffer> RegionPipeline::fetch_region(
    const obj::ObjectDescriptor& object, RegionIndex region,
    CostLedger& ledger, bool cacheable, const obs::TraceContext& trace) {
  const RegionCache::Key key{object.id, region};
  const obj::RegionDescriptor& desc = object.regions[region];
  if (RegionCache::Buffer hit = env_.data_cache->get(key, desc.data_epoch)) {
    return hit;
  }
  log_debug("server ", env_.id, " cache MISS obj ", object.id, " region ",
            region);
  auto buffer = std::make_shared<std::vector<std::uint8_t>>(
      static_cast<std::size_t>(desc.extent.count * object.element_size()));
  PDC_RETURN_IF_ERROR(
      env_.store->read_region(object, region, *buffer, read_ctx(ledger, trace)));
  RegionCache::Buffer shared = std::move(buffer);
  if (cacheable) env_.data_cache->put(key, shared, desc.data_epoch);
  return shared;
}

}  // namespace pdc::server
