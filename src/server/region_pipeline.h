// Composable per-region evaluation pipeline (paper §III-C/D, refactored).
//
// Every strategy evaluates its driver conjunct as the same five-operator
// pipeline over the regions one server identity owns:
//
//   RegionSource --> Pruner --> AccessPath --> Predicate --> Collector
//   (assignment,     (histogram  (scan |        (interval     (ordered slot
//    cache/PFS       min/max,     WAH-bin probe  check)        concat +
//    fetch policy)   all-hit      | sorted                     ledger merge +
//                    short-       boundary                     span emission)
//                    circuit)     search)
//
// A strategy is a declarative `PipelineConfig` (see `pipeline_config`),
// not a separate code path: the region fan-out/join, per-task CostLedger
// merge, and span-emission boilerplate live in exactly one place
// (`RegionPipeline::fan_out_join`).  The access paths themselves are small
// operators reused across configs — PDC-A composes the scan and index
// paths region-by-region.
//
// `Strategy::kAdaptive` (PDC-A) picks an access path *per region* from the
// region histogram alone via `classify_region`, a pure function of
// (histogram, interval, knobs): prune if disjoint, all-hit if covered,
// else scan when the estimated selectivity crosses `dense_read_threshold`
// (dense regions are cheaper to stream than to probe bin-by-bin), index
// otherwise.  Choices are deterministic — same inputs, same choice vector.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/cost_model.h"
#include "common/exec_pool.h"
#include "common/interval.h"
#include "common/status.h"
#include "common/types.h"
#include "histogram/histogram.h"
#include "obj/object_store.h"
#include "obs/trace.h"
#include "pfs/read_aggregator.h"
#include "server/region_cache.h"
#include "server/wire.h"

namespace pdc::server {

/// Per-region access-path decision.  `kPruned` covers every region that
/// contributes no work (histogram-disjoint or constrained away); only the
/// other three are reported in EvalResponse / OpStats.
enum class RegionChoice : std::uint8_t {
  kPruned = 0,  ///< histogram disjoint from the interval (or no overlap)
  kAllHit,      ///< histogram proves every element matches
  kScan,        ///< fetch the region and scan it
  kIndex,       ///< probe the region's WAH bitmap bins
};

/// Knobs `classify_region` depends on — nothing else, so the choice vector
/// is reproducible from (histogram, interval, knobs) alone.
struct AdaptiveKnobs {
  /// Estimated-selectivity crossover: at or above this fraction the region
  /// is streamed (scan); below it the bitmap index is probed.  Shares
  /// `ServerOptions::dense_read_threshold` semantics: the point where
  /// point-wise access stops beating a whole-region read.
  double dense_read_threshold = 0.25;
  /// False when the object has no bitmap index: everything not pruned or
  /// covered degenerates to scan.
  bool has_index = false;
};

/// PDC-A's per-region decision rule.  Pure and deterministic.
[[nodiscard]] RegionChoice classify_region(
    const hist::MergeableHistogram& histogram, const ValueInterval& interval,
    const AdaptiveKnobs& knobs) noexcept;

/// Per-region choice tally carried back in EvalResponse (all strategies
/// report it; for the fixed strategies it is degenerate by construction).
struct RegionChoiceCounts {
  std::uint64_t scanned = 0;
  std::uint64_t indexed = 0;
  std::uint64_t allhit = 0;
  /// Regions whose bitmap index lagged the data epoch and therefore fell
  /// back to scan (they also count under `scanned`).
  std::uint64_t stale = 0;
  /// Highest data epoch among the regions this evaluation visited; 1 on a
  /// never-written object.
  std::uint64_t max_data_epoch = 0;

  void tally(RegionChoice c) noexcept {
    switch (c) {
      case RegionChoice::kPruned: break;
      case RegionChoice::kAllHit: ++allhit; break;
      case RegionChoice::kScan: ++scanned; break;
      case RegionChoice::kIndex: ++indexed; break;
    }
  }
};

/// Which access-path operator the pipeline runs on surviving regions.
enum class AccessPathKind : std::uint8_t {
  kScan,            ///< fetch + linear scan (PDC-F / PDC-H)
  kIndexProbe,      ///< WAH bitmap bins: decode + candidate check (PDC-HI)
  kSortedBoundary,  ///< binary search on the sorted replica (PDC-SH)
  kAdaptive,        ///< per-region classify_region choice (PDC-A)
};

/// A strategy expressed as operator configuration.
struct PipelineConfig {
  AccessPathKind access = AccessPathKind::kScan;
  /// Pruner enabled: histogram min/max eliminates disjoint regions and
  /// covered regions short-circuit the predicate entirely.
  bool prune = false;
  /// All-hit regions still fetch (and cache) their data.  Only the plain
  /// scan path does this (PDC-H warms the cache for get-data); the index
  /// and sorted paths answer all-hit regions from metadata alone.
  bool all_hit_fetches = false;
  /// Phase span emitted around the driver evaluation.
  const char* phase_name = "phase.region_scan";
};

/// Strategy -> operator configuration.  `sorted_driver` selects the
/// replica boundary-search path for kSortedHistogram; without a replica it
/// degrades to the histogram scan config (same fallback as before).
[[nodiscard]] PipelineConfig pipeline_config(Strategy strategy,
                                             bool sorted_driver) noexcept;

/// The evaluation pipeline of one QueryServer.  Owns no state beyond the
/// environment references; every `run`/`restrict` call is independent.
class RegionPipeline {
 public:
  /// Everything the operators need from the owning server.  All pointers
  /// are non-owning and must outlive the pipeline.
  struct Env {
    const obj::ObjectStore* store = nullptr;
    exec::ThreadPool* pool = nullptr;  ///< null = serial fan-out
    ServerId id = 0;
    std::uint32_t num_servers = 1;
    pfs::AggregationPolicy aggregation;
    pfs::AggregationPolicy index_aggregation;
    double dense_read_threshold = 0.25;
    RegionCache* data_cache = nullptr;
    RegionCache* index_cache = nullptr;
    const std::string* actor = nullptr;  ///< span actor label
  };

  explicit RegionPipeline(const Env& env) : env_(env) {}

  /// Evaluate the driver conjunct over the regions `identity` owns.
  /// Appends ascending original-space positions (scan/index/adaptive) or
  /// replica-space extents (sorted boundary) and tallies the per-region
  /// access-path choices into `counts`.
  Status run(const obj::ObjectDescriptor& object,
             const ValueInterval& interval, Extent1D constraint,
             ServerId identity, const PipelineConfig& config,
             CostLedger& ledger, std::vector<std::uint64_t>& positions,
             std::vector<Extent1D>& extents, RegionChoiceCounts& counts,
             const obs::TraceContext& trace);

  /// Predicate operator applied at already-selected locations (the AND
  /// short-circuit): restrict ascending `positions` to those whose value
  /// in `object` satisfies `interval`.
  Status restrict(const obj::ObjectDescriptor& object,
                  const ValueInterval& interval, bool full_scan_mode,
                  CostLedger& ledger, std::vector<std::uint64_t>& positions,
                  const obs::TraceContext& trace);

  /// RegionSource: region bytes through the data cache; `cacheable=false`
  /// bypasses insertion.  Shared with the server's get-data path.
  Result<RegionCache::Buffer> fetch_region(
      const obj::ObjectDescriptor& object, RegionIndex region,
      CostLedger& ledger, bool cacheable,
      const obs::TraceContext& trace = {});

  /// Modeled cores for parallel cost accounting.
  [[nodiscard]] std::uint32_t eval_threads() const noexcept {
    return env_.pool != nullptr ? env_.pool->size() : 1;
  }

 private:
  /// One bitmap bin selected by the planner for reading/decoding.
  struct PlannedBin {
    RegionIndex region;
    std::uint32_t bin;
    bool full;  ///< full bin: set bits are hits; else candidates
    RegionCache::Buffer cached;  ///< non-null: no read needed
    Extent1D extent;             ///< byte extent in the index file
  };

  /// One region assigned to the scan access path (dense under PDC-A, or
  /// an index-stale fallback under PDC-HI/PDC-A).
  struct ScanItem {
    RegionIndex region;
    Extent1D want;
  };

  /// Task body: fills its slot(s), charges `task_ledger`, annotates the
  /// already-open task span.  Returned status joins via fan_out_join.
  using TaskBody =
      std::function<Status(std::size_t, CostLedger&, obs::ScopedSpan&)>;

  /// THE region fan-out/join: one pool task per item, each under its own
  /// `span_name` span annotated with worker/cost, statuses joined, and the
  /// per-task ledgers folded with CostLedger::merge_parallel so simulated
  /// time reports max(critical task, work/threads).  Every parallel region
  /// loop in the server goes through here.
  Status fan_out_join(std::size_t tasks, const obs::TraceContext& phase,
                      const char* span_name, CostLedger& ledger,
                      const TaskBody& body);

  // Access-path operators (driver evaluation).
  Status run_scan(const obj::ObjectDescriptor& object,
                  const ValueInterval& interval, Extent1D constraint,
                  const PipelineConfig& config, ServerId identity,
                  CostLedger& ledger, std::vector<std::uint64_t>& positions,
                  RegionChoiceCounts& counts, const obs::TraceContext& trace);
  Status run_index(const obj::ObjectDescriptor& object,
                   const ValueInterval& interval, Extent1D constraint,
                   ServerId identity, CostLedger& ledger,
                   std::vector<std::uint64_t>& positions,
                   RegionChoiceCounts& counts, const obs::TraceContext& trace);
  Status run_sorted(const obj::ObjectDescriptor& replica,
                    const ValueInterval& interval, ServerId identity,
                    CostLedger& ledger, std::vector<Extent1D>& extents,
                    RegionChoiceCounts& counts,
                    const obs::TraceContext& trace);
  Status run_adaptive(const obj::ObjectDescriptor& object,
                      const ValueInterval& interval, Extent1D constraint,
                      ServerId identity, CostLedger& ledger,
                      std::vector<std::uint64_t>& positions,
                      RegionChoiceCounts& counts,
                      const obs::TraceContext& trace);

  /// Fetch + scan a group of regions in parallel (the PDC-A dense group
  /// and the index paths' stale-region fallback share this).
  Status scan_group(const obj::ObjectDescriptor& object,
                    const ValueInterval& interval,
                    const std::vector<ScanItem>& items, CostLedger& ledger,
                    std::vector<std::uint64_t>& positions,
                    const obs::TraceContext& trace);

  // Index-probe stages, shared by run_index and run_adaptive.
  /// Plan the bins of one surviving region (header parse + bin selection +
  /// index-cache lookup); annotates the region span with the bin count.
  Status plan_region_bins(const obj::ObjectDescriptor& object, RegionIndex r,
                          const ValueInterval& interval,
                          std::vector<PlannedBin>& planned,
                          obs::ScopedSpan& region_span);
  /// One aggregated read over the index file for every uncached planned
  /// bin; inserts the buffers into the index cache.
  Status read_missing_bins(const obj::ObjectDescriptor& object,
                           std::vector<PlannedBin>& planned,
                           CostLedger& ledger, const obs::TraceContext& trace);
  /// Decode planned bins in parallel; definite hits append to `positions`,
  /// boundary-bin bits to `candidates` (both unsorted here — the index
  /// paths sort at the end).
  Status decode_bins(const obj::ObjectDescriptor& object, Extent1D constraint,
                     std::vector<PlannedBin>& planned, CostLedger& ledger,
                     std::vector<std::uint64_t>& positions,
                     std::vector<std::uint64_t>& candidates,
                     const obs::TraceContext& trace);
  /// Check candidate positions against the actual values (aggregated point
  /// reads); survivors append to `positions`.
  Status check_candidates(const obj::ObjectDescriptor& object,
                          const ValueInterval& interval,
                          std::vector<std::uint64_t>& candidates,
                          CostLedger& ledger,
                          std::vector<std::uint64_t>& positions,
                          const obs::TraceContext& trace);

  /// Annotate a task span with the executing pool worker and the task
  /// ledger's cost split; no-op when untraced.
  static void annotate_task_span(obs::ScopedSpan& span,
                                 const CostLedger& task_ledger);

  [[nodiscard]] pfs::ReadContext read_ctx(
      CostLedger& ledger, const obs::TraceContext& trace = {}) const {
    return {&ledger, env_.num_servers, trace};
  }

  Env env_;
};

}  // namespace pdc::server
