file(REMOVE_RECURSE
  "CMakeFiles/pdc_server.dir/query_server.cc.o"
  "CMakeFiles/pdc_server.dir/query_server.cc.o.d"
  "CMakeFiles/pdc_server.dir/region_pipeline.cc.o"
  "CMakeFiles/pdc_server.dir/region_pipeline.cc.o.d"
  "CMakeFiles/pdc_server.dir/wire.cc.o"
  "CMakeFiles/pdc_server.dir/wire.cc.o.d"
  "libpdc_server.a"
  "libpdc_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdc_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
