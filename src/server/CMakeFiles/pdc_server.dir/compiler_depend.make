# Empty compiler generated dependencies file for pdc_server.
# This may be replaced when dependencies are built.
