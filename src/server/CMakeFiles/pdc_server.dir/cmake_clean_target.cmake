file(REMOVE_RECURSE
  "libpdc_server.a"
)
