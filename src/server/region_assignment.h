// Load-balanced region-to-server assignment (paper §III-C: "different
// regions of the queried object are assigned to the servers in a
// load-balanced fashion").
//
// Round-robin by region index.  Large objects (>= one region per server)
// use owner(r) = r mod num_servers, so same-dimension objects (VPIC's
// Energy/x/y/z) align: the server that owns Energy region r also owns x
// region r, and cross-object position checks stay cache-local.  Small
// objects (e.g. the BOSS catalog's single-region spectra) are offset by
// their object id so they spread over the fleet instead of piling onto
// server 0.  Both the client and every server compute this independently,
// so after the initial metadata broadcast no server-to-server communication
// is needed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "obj/object_store.h"

namespace pdc::server {

/// Ownership offset: 0 for objects large enough to spread on their own.
[[nodiscard]] inline std::uint32_t assignment_offset(
    const obj::ObjectDescriptor& object, std::uint32_t num_servers) noexcept {
  return object.regions.size() >= num_servers
             ? 0u
             : static_cast<std::uint32_t>(object.id % num_servers);
}

[[nodiscard]] inline ServerId owner_of_region(
    const obj::ObjectDescriptor& object, RegionIndex region,
    std::uint32_t num_servers) noexcept {
  return static_cast<ServerId>(
      (assignment_offset(object, num_servers) + region) % num_servers);
}

/// Region indexes of `object` owned by `server`.
[[nodiscard]] inline std::vector<RegionIndex> regions_of_server(
    const obj::ObjectDescriptor& object, ServerId server,
    std::uint32_t num_servers) {
  std::vector<RegionIndex> mine;
  const std::uint32_t offset = assignment_offset(object, num_servers);
  const RegionIndex first = static_cast<RegionIndex>(
      (server + num_servers - offset) % num_servers);
  for (RegionIndex r = first;
       r < static_cast<RegionIndex>(object.regions.size());
       r += num_servers) {
    mine.push_back(r);
  }
  return mine;
}

/// Region index containing element `position` of `object`.
[[nodiscard]] inline RegionIndex region_of_position(
    const obj::ObjectDescriptor& object, std::uint64_t position) noexcept {
  return static_cast<RegionIndex>(position / object.region_size_elements);
}

/// Degraded-mode re-planning: distribute the region assignments of `dead`
/// server identities over the `alive` servers, round-robin for balance.
/// Returns, per alive server (indexed as in `alive`), the list of dead
/// identities whose regions that server must evaluate on their behalf.
/// Identity-based reassignment keeps owner_of_region() stable — only who
/// *executes* an identity's share changes, so client and survivors agree
/// without any server-to-server communication.
[[nodiscard]] inline std::vector<std::vector<ServerId>> plan_reassignment(
    std::span<const ServerId> dead, std::span<const ServerId> alive) {
  std::vector<std::vector<ServerId>> extra(alive.size());
  if (alive.empty()) return extra;
  for (std::size_t i = 0; i < dead.size(); ++i) {
    extra[i % alive.size()].push_back(dead[i]);
  }
  return extra;
}

/// Split ascending `positions` into per-server sublists based on which
/// server owns the containing region of `object`.
[[nodiscard]] inline std::vector<std::vector<std::uint64_t>>
partition_positions(const obj::ObjectDescriptor& object,
                    std::span<const std::uint64_t> positions,
                    std::uint32_t num_servers) {
  std::vector<std::vector<std::uint64_t>> parts(num_servers);
  for (const std::uint64_t pos : positions) {
    parts[owner_of_region(object, region_of_position(object, pos),
                          num_servers)]
        .push_back(pos);
  }
  return parts;
}

}  // namespace pdc::server
