// Per-server region data cache (paper §V: 64 GB memory cap per server;
// §VI-A: "an increasing number of the regions' data are cached in the PDC
// servers' memory ... reducing the overall cost").
//
// LRU by bytes.  Entries are shared_ptr so a region being evicted while a
// reader still holds it stays alive until the reader drops it.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/types.h"

namespace pdc::server {

class RegionCache {
 public:
  using Key = std::pair<ObjectId, RegionIndex>;
  using Buffer = std::shared_ptr<const std::vector<std::uint8_t>>;

  /// `capacity_bytes` = 0 disables caching entirely.
  explicit RegionCache(std::uint64_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  /// Returns the cached buffer or nullptr; refreshes LRU position on hit.
  /// `epoch` is the caller's view of the region's current epoch (data
  /// epoch for data buffers, index epoch for index bytes): an entry cached
  /// under a different epoch was invalidated by a write — it is dropped
  /// and the lookup misses, so stale bytes can never be served.
  [[nodiscard]] Buffer get(const Key& key, std::uint64_t epoch = 0) {
    std::lock_guard lock(mu_);
    const auto it = entries_.find(key);
    if (it == entries_.end()) return nullptr;
    if (it->second.epoch != epoch) {
      bytes_ -= it->second.buffer->size();
      lru_.erase(it->second.lru_it);
      entries_.erase(it);
      ++invalidations_;
      return nullptr;
    }
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    ++hits_;
    return it->second.buffer;
  }

  /// Insert (or refresh) a buffer; evicts LRU entries beyond capacity.
  /// Refreshing an existing key replaces its buffer (the new bytes are the
  /// current ones — keeping the old buffer would serve stale data forever)
  /// and reconciles `bytes_` with the size difference before evicting.
  void put(const Key& key, Buffer buffer, std::uint64_t epoch = 0) {
    if (capacity_ == 0 || !buffer) return;
    std::lock_guard lock(mu_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      bytes_ -= it->second.buffer->size();
      bytes_ += buffer->size();
      it->second.buffer = std::move(buffer);
      it->second.epoch = epoch;
    } else {
      lru_.push_front(key);
      bytes_ += buffer->size();
      entries_.emplace(key, Entry{std::move(buffer), lru_.begin(), epoch});
    }
    while (bytes_ > capacity_ && !lru_.empty()) {
      const Key victim = lru_.back();
      lru_.pop_back();
      const auto vit = entries_.find(victim);
      bytes_ -= vit->second.buffer->size();
      entries_.erase(vit);
      ++evictions_;
    }
  }

  void clear() {
    std::lock_guard lock(mu_);
    entries_.clear();
    lru_.clear();
    bytes_ = 0;
  }

  [[nodiscard]] std::uint64_t bytes() const {
    std::lock_guard lock(mu_);
    return bytes_;
  }
  [[nodiscard]] std::size_t entries() const {
    std::lock_guard lock(mu_);
    return entries_.size();
  }
  [[nodiscard]] std::uint64_t hits() const {
    std::lock_guard lock(mu_);
    return hits_;
  }
  [[nodiscard]] std::uint64_t evictions() const {
    std::lock_guard lock(mu_);
    return evictions_;
  }
  [[nodiscard]] std::uint64_t invalidations() const {
    std::lock_guard lock(mu_);
    return invalidations_;
  }

 private:
  struct Entry {
    Buffer buffer;
    std::list<Key>::iterator lru_it;
    std::uint64_t epoch = 0;
  };

  mutable std::mutex mu_;
  std::uint64_t capacity_;
  std::uint64_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t invalidations_ = 0;
  std::list<Key> lru_;
  std::map<Key, Entry> entries_;
};

}  // namespace pdc::server
