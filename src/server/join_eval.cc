// QueryServer::join_eval — one epoch of a cross-object epsilon join
// (ROADMAP item 4; zones algorithm after Nieto-Santisteban et al.).
//
// Every participant runs this handler for the same (join_id, epoch):
//
//   1. Candidate production: evaluate each side's value pre-filter with the
//      ordinary local pipeline (locations on), gather the matching values,
//      and turn them into (zone, value, pos) tuples.
//   2. Partition + ship: bucket the tuples per participant — kZoneShuffle
//      routes each tuple to the owner of its (band-expanded) zone,
//      kBroadcast ships both sides verbatim to every peer — and deliver
//      the remote buckets exactly-once over the exchange lane.
//      Self-destined tuples stay local and cost no bus bytes.
//   3. Collect: block until every other participant's stream is complete
//      (all batches + EOS), bounded by the exchange deadline.
//   4. Zone join: group the held tuples by owned zone and sort-merge join
//      each zone (pool fan-out, per-task ledgers merged with the
//      work-stealing bound).  Pairs are emitted in the BUILD tuple's zone,
//      so each pair materializes on exactly one server.
//
// Both strategies assemble identical per-zone candidate sets, so their
// results are byte-identical — kBroadcast is the trivially-correct
// baseline kZoneShuffle is differentially tested against.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <unordered_map>

#include "obj/type_dispatch.h"
#include "server/query_server.h"
#include "server/zone_join.h"

namespace pdc::server {
namespace {

/// One owned zone's build/probe tuples awaiting the merge join.
struct ZoneInput {
  std::vector<rpc::JoinTuple> a;
  std::vector<rpc::JoinTuple> b;
};

}  // namespace

Status QueryServer::produce_join_candidates(
    ObjectId object_id, const ValueInterval& filter, Strategy eval_strategy,
    const std::vector<ServerId>& identities, double zone_height,
    CostLedger& ledger, std::vector<rpc::JoinTuple>& out,
    const obs::TraceContext& trace) {
  PDC_ASSIGN_OR_RETURN(const obj::ObjectDescriptor* object,
                       store_.get(object_id));
  // Candidate production is an ordinary single-conjunct evaluation with
  // locations.  kSortedHistogram degrades to kHistogram: join production
  // needs original positions, which would force the replica permutation
  // read anyway — the histogram path gets them directly.
  EvalRequest shim;
  shim.strategy = eval_strategy == Strategy::kSortedHistogram
                      ? Strategy::kHistogram
                      : eval_strategy;
  shim.need_locations = true;
  AndTerm term;
  term.conjuncts.push_back({object_id, filter});
  shim.terms.push_back(term);

  const std::size_t elem = object->element_size();
  std::uint64_t regions_evaluated = 0;
  RegionChoiceCounts counts;
  for (const ServerId identity : identities) {
    std::vector<std::uint64_t> positions;
    std::vector<Extent1D> extents;
    PDC_RETURN_IF_ERROR(eval_term(term, shim, identity, ledger, positions,
                                  extents, regions_evaluated, counts, trace));
    std::vector<std::uint8_t> raw(positions.size() * elem);
    PDC_RETURN_IF_ERROR(gather_values(*object, positions, raw, ledger, trace));
    out.reserve(out.size() + positions.size());
    for (std::size_t i = 0; i < positions.size(); ++i) {
      const double v = obj::dispatch_type(object->type, [&](auto tag) {
        using T = decltype(tag);
        T x;
        std::memcpy(&x, raw.data() + i * elem, sizeof(T));
        return static_cast<double>(x);
      });
      // Non-finite values can never satisfy |va - vb| <= eps (NaN fails
      // every comparison; an infinity's distance to anything is infinite
      // or NaN) — exactly as in the element-wise oracle, so skipping them
      // before zoning changes nothing but the shuffle volume.
      if (!std::isfinite(v)) continue;
      out.push_back({zone_of(v, zone_height), v, positions[i]});
    }
  }
  return Status::Ok();
}

JoinEvalResponse QueryServer::join_eval(const JoinEvalRequest& request,
                                        const obs::TraceContext& trace) {
  obs::ScopedSpan span(trace, "server.join_eval", actor_);
  JoinEvalResponse response;
  if (const Status s =
          validate_join_params(request.epsilon, request.zone_height);
      !s.ok()) {
    response.status = s;
    return response;
  }
  const std::vector<ServerId>& participants = request.participants;
  if (std::find(participants.begin(), participants.end(), options_.id) ==
      participants.end()) {
    response.status = Status::InvalidArgument(
        "server is not a participant of this join epoch");
    return response;
  }
  const bool multi = participants.size() > 1;
  if (multi && options_.exchange == nullptr) {
    response.status = Status::FailedPrecondition(
        "multi-server join on a deployment without an exchange port");
    return response;
  }

  const CostModel& cost = store_.cluster().config().cost;
  CostLedger ledger;
  std::vector<ServerId> identities = request.act_as;
  if (identities.empty()) identities.push_back(options_.id);

  // --- 1. Candidate production. ---
  std::vector<rpc::JoinTuple> local_a;
  std::vector<rpc::JoinTuple> local_b;
  Status s = produce_join_candidates(request.object_a, request.filter_a,
                                     request.eval_strategy, identities,
                                     request.zone_height, ledger, local_a,
                                     span.context());
  if (s.ok()) {
    s = produce_join_candidates(request.object_b, request.filter_b,
                                request.eval_strategy, identities,
                                request.zone_height, ledger, local_b,
                                span.context());
  }
  if (!s.ok()) {
    response.status = s;
    return response;
  }
  response.candidates_a = local_a.size();
  response.candidates_b = local_b.size();

  // --- 2. Partition into per-participant outboxes. ---
  //
  // kZoneShuffle: a build tuple goes to the owner of its zone; a probe
  // tuple is duplicated into every zone of its epsilon band (its `zone`
  // field carries the TARGET zone) and routed to that zone's owner.
  // kBroadcast: both sides go verbatim to every participant; the receiver
  // band-expands locally and keeps only its owned zones.
  const std::size_t p = participants.size();
  std::unordered_map<ServerId, std::size_t> slot;
  for (std::size_t i = 0; i < p; ++i) slot.emplace(participants[i], i);
  std::vector<std::vector<rpc::JoinTuple>> out_a(p);
  std::vector<std::vector<rpc::JoinTuple>> out_b(p);
  if (request.strategy == JoinStrategy::kZoneShuffle) {
    for (const rpc::JoinTuple& t : local_a) {
      out_a[slot.at(zone_owner(t.zone, participants))].push_back(t);
    }
    for (const rpc::JoinTuple& t : local_b) {
      const auto [first, last] =
          zone_band(t.value, request.epsilon, request.zone_height);
      for (std::int64_t z = first; z <= last; ++z) {
        out_b[slot.at(zone_owner(z, participants))].push_back(
            {z, t.value, t.pos});
      }
    }
  } else {
    for (std::size_t i = 0; i < p; ++i) {
      out_a[i] = local_a;
      out_b[i] = local_b;
    }
  }
  std::uint64_t moved = 0;
  for (std::size_t i = 0; i < p; ++i) {
    moved += (out_a[i].size() + out_b[i].size()) * sizeof(rpc::JoinTuple);
  }
  ledger.add_cpu(static_cast<double>(moved) / cost.memcpy_bandwidth_bps,
                 CpuStage::kMerge);

  // --- Ship the remote buckets (exactly-once), then collect. ---
  const std::size_t self_slot = slot.at(options_.id);
  rpc::ShuffleStats stats;
  if (multi) {
    const std::size_t cap =
        std::max<std::uint32_t>(1, options_.exchange_batch_tuples);
    std::vector<rpc::OutboundFrame> frames;
    for (std::size_t i = 0; i < p; ++i) {
      if (i == self_slot) continue;
      std::uint32_t seq = 0;
      const auto batch_side = [&](const std::vector<rpc::JoinTuple>& tuples,
                                  std::uint8_t side) {
        for (std::size_t off = 0; off < tuples.size(); off += cap) {
          const std::size_t n = std::min(cap, tuples.size() - off);
          rpc::ExchangeFrame f;
          f.kind = rpc::ExchangeFrameKind::kBatch;
          f.join_id = request.join_id;
          f.epoch = request.epoch;
          f.from = options_.id;
          f.seq = seq++;
          f.side = side;
          f.tuples = std::span<const rpc::JoinTuple>(tuples.data() + off, n);
          frames.push_back({participants[i], f.seq, f.serialize()});
        }
      };
      batch_side(out_a[i], rpc::kSideA);
      batch_side(out_b[i], rpc::kSideB);
      rpc::ExchangeFrame eos;
      eos.kind = rpc::ExchangeFrameKind::kEos;
      eos.join_id = request.join_id;
      eos.epoch = request.epoch;
      eos.from = options_.id;
      eos.seq = rpc::kEosSeq;
      eos.batches_total = seq;
      frames.push_back({participants[i], eos.seq, eos.serialize()});
    }
    const bool shipped = options_.exchange->ship(request.join_id,
                                                 request.epoch, frames, stats);
    response.shuffle_bytes_sent = stats.bytes_sent;
    response.shuffle_msgs_sent = stats.msgs_sent;
    response.shuffle_retransmits = stats.retransmits;
    response.shuffle_rounds = 1;
    if (!shipped) {
      options_.exchange->forget(request.join_id);
      response.status =
          Status::Unavailable("join shuffle was not acknowledged in time");
      return response;
    }
  }

  std::vector<rpc::JoinTuple> have_a = std::move(out_a[self_slot]);
  std::vector<rpc::JoinTuple> have_b = std::move(out_b[self_slot]);
  if (multi) {
    auto collected = options_.exchange->collect(request.join_id,
                                                request.epoch, participants);
    if (!collected.has_value()) {
      options_.exchange->forget(request.join_id);
      response.status =
          Status::Unavailable("join shuffle collect timed out");
      return response;
    }
    have_a.insert(have_a.end(), collected->a.begin(), collected->a.end());
    have_b.insert(have_b.end(), collected->b.begin(), collected->b.end());
  }

  // --- 4. Group the held tuples by owned zone and join each zone. ---
  //
  // Ownership is re-checked on every tuple: a mis-routed or stale frame can
  // only be dropped here, never double-counted.  Under kBroadcast we hold
  // the full global streams, so this filter IS the partitioning step.
  std::map<std::int64_t, ZoneInput> zones;
  for (const rpc::JoinTuple& t : have_a) {
    if (zone_owner(t.zone, participants) != options_.id) continue;
    zones[t.zone].a.push_back(t);
  }
  if (request.strategy == JoinStrategy::kZoneShuffle) {
    for (const rpc::JoinTuple& t : have_b) {
      if (zone_owner(t.zone, participants) != options_.id) continue;
      zones[t.zone].b.push_back(t);
    }
  } else {
    for (const rpc::JoinTuple& t : have_b) {
      const auto [first, last] =
          zone_band(t.value, request.epsilon, request.zone_height);
      for (std::int64_t z = first; z <= last; ++z) {
        if (zone_owner(z, participants) != options_.id) continue;
        zones[z].b.push_back({z, t.value, t.pos});
      }
    }
  }

  std::vector<std::int64_t> zone_ids;
  std::vector<ZoneInput*> inputs;
  zone_ids.reserve(zones.size());
  inputs.reserve(zones.size());
  for (auto& [z, in] : zones) {
    zone_ids.push_back(z);
    inputs.push_back(&in);
  }
  std::vector<std::vector<JoinPairWire>> pair_lists(zone_ids.size());
  std::vector<CostLedger> task_ledgers(zone_ids.size());
  exec::parallel_for(options_.pool, zone_ids.size(), [&](std::size_t i) {
    ZoneInput& in = *inputs[i];
    // Sort + band merge over the zone's tuples, then the pair write-out.
    task_ledgers[i].add_cpu(
        cost.scan_cost((in.a.size() + in.b.size()) * sizeof(rpc::JoinTuple)),
        CpuStage::kMerge);
    pair_lists[i] =
        zone_merge_join(std::move(in.a), std::move(in.b), request.epsilon);
    task_ledgers[i].add_cpu(
        static_cast<double>(pair_lists[i].size() * sizeof(JoinPairWire)) /
            cost.memcpy_bandwidth_bps,
        CpuStage::kMerge);
  });
  ledger.merge_parallel(task_ledgers,
                        options_.pool != nullptr ? options_.pool->size() : 1);

  std::uint64_t total_pairs = 0;
  for (std::size_t i = 0; i < zone_ids.size(); ++i) {
    // Empty zones are elided: both strategies compute identical per-zone
    // pair sets, so the surviving zone list is strategy-independent too.
    if (pair_lists[i].empty()) continue;
    total_pairs += pair_lists[i].size();
    response.zones.push_back({zone_ids[i], std::move(pair_lists[i])});
  }
  response.ledger = LedgerSummary::from(ledger);
  response.status = Status::Ok();
  if (multi) options_.exchange->forget(request.join_id);
  if (trace.enabled()) {
    span.arg("candidates_a", static_cast<double>(response.candidates_a));
    span.arg("candidates_b", static_cast<double>(response.candidates_b));
    span.arg("zones", static_cast<double>(response.zones.size()));
    span.arg("pairs", static_cast<double>(total_pairs));
    span.arg("shuffle_bytes", static_cast<double>(stats.bytes_sent));
    span.arg("shuffle_msgs", static_cast<double>(stats.msgs_sent));
    span.arg("retransmits", static_cast<double>(stats.retransmits));
    span.arg("elapsed_s", response.ledger.elapsed());
  }
  return response;
}

}  // namespace pdc::server
