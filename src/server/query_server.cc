#include "server/query_server.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"
#include "obj/type_dispatch.h"
#include "server/region_assignment.h"
#include "sortrep/sorted_replica.h"

namespace pdc::server {
namespace {

/// Scan a region buffer for matches within the global element range
/// `want` (a sub-extent of `region_extent`); appends global positions.
void scan_buffer(PdcType type, const std::uint8_t* bytes,
                 Extent1D region_extent, Extent1D want,
                 const ValueInterval& interval,
                 std::vector<std::uint64_t>& out) {
  obj::dispatch_type(type, [&](auto tag) {
    using T = decltype(tag);
    const T* values = reinterpret_cast<const T*>(bytes);
    for (std::uint64_t pos = want.offset; pos < want.end(); ++pos) {
      if (interval.contains(
              static_cast<double>(values[pos - region_extent.offset]))) {
        out.push_back(pos);
      }
    }
  });
}

/// Check `interval` against the value at buffer-local index `local`.
bool check_value(PdcType type, const std::uint8_t* bytes, std::uint64_t local,
                 const ValueInterval& interval) {
  return obj::dispatch_type(type, [&](auto tag) {
    using T = decltype(tag);
    return interval.contains(static_cast<double>(
        reinterpret_cast<const T*>(bytes)[local]));
  });
}

/// Local [first, last) index range of values satisfying `interval` in a
/// sorted buffer of `count` elements.
std::pair<std::uint64_t, std::uint64_t> sorted_range(
    PdcType type, const std::uint8_t* bytes, std::uint64_t count,
    const ValueInterval& interval) {
  return obj::dispatch_type(type, [&](auto tag) {
    using T = decltype(tag);
    const T* values = reinterpret_cast<const T*>(bytes);
    const T* end = values + count;
    const T* lo_it = values;
    if (std::isfinite(interval.lo)) {
      const T lo_val = static_cast<T>(interval.lo);
      lo_it = interval.lo_inclusive ? std::lower_bound(values, end, lo_val)
                                    : std::upper_bound(values, end, lo_val);
    }
    const T* hi_it = end;
    if (std::isfinite(interval.hi)) {
      const T hi_val = static_cast<T>(interval.hi);
      hi_it = interval.hi_inclusive ? std::upper_bound(values, end, hi_val)
                                    : std::lower_bound(values, end, hi_val);
    }
    if (hi_it < lo_it) hi_it = lo_it;
    return std::pair<std::uint64_t, std::uint64_t>(
        static_cast<std::uint64_t>(lo_it - values),
        static_cast<std::uint64_t>(hi_it - values));
  });
}

/// Union of two ascending position lists, deduplicated.
std::vector<std::uint64_t> merge_union(std::vector<std::uint64_t> a,
                                       std::vector<std::uint64_t> b) {
  std::vector<std::uint64_t> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

}  // namespace

std::vector<std::uint8_t> QueryServer::handle(
    std::span<const std::uint8_t> payload, const obs::TraceContext& trace) {
  const auto type = peek_request_type(payload);
  if (!type.ok()) {
    EvalResponse resp;
    resp.status = type.status();
    return resp.serialize();
  }
  SerialReader reader(payload);
  if (*type == RequestType::kEvalQuery) {
    auto request = EvalRequest::Deserialize(reader);
    if (!request.ok()) {
      EvalResponse resp;
      resp.status = request.status();
      return resp.serialize();
    }
    return eval(*request, trace).serialize();
  }
  if (*type == RequestType::kMetrics) {
    return metrics_snapshot().serialize();
  }
  auto request = GetDataRequest::Deserialize(reader);
  if (!request.ok()) {
    GetDataResponse resp;
    resp.status = request.status();
    return resp.serialize();
  }
  return get_data(*request, trace).serialize();
}

void QueryServer::register_metrics() {
  if (options_.metrics == nullptr) return;
  eval_requests_metric_ = &options_.metrics->counter(actor_ + ".eval_requests");
  getdata_requests_metric_ =
      &options_.metrics->counter(actor_ + ".getdata_requests");
  bytes_read_metric_ = &options_.metrics->counter(actor_ + ".bytes_read");
  read_ops_metric_ = &options_.metrics->counter(actor_ + ".read_ops");
  eval_latency_metric_ =
      &options_.metrics->histogram(actor_ + ".eval_seconds");
  options_.metrics->gauge_fn(actor_ + ".cache_bytes", [this] {
    return static_cast<double>(cache_.bytes());
  });
  options_.metrics->gauge_fn(actor_ + ".cache_entries", [this] {
    return static_cast<double>(cache_.entries());
  });
  options_.metrics->gauge_fn(actor_ + ".cache_hits", [this] {
    return static_cast<double>(cache_.hits());
  });
  options_.metrics->gauge_fn(actor_ + ".index_cache_bytes", [this] {
    return static_cast<double>(index_cache_.bytes());
  });
}

MetricsResponse QueryServer::metrics_snapshot() const {
  MetricsResponse response;
  if (options_.metrics == nullptr) {
    response.status =
        Status::FailedPrecondition("server has no metrics registry");
    return response;
  }
  response.snapshot = options_.metrics->snapshot();
  response.status = Status::Ok();
  return response;
}

void QueryServer::annotate_task_span(obs::ScopedSpan& span,
                                     const CostLedger& task_ledger) {
  if (span.id() == 0) return;
  const exec::TaskInfo task = exec::current_task();
  if (task.in_task) {
    span.arg("worker", static_cast<double>(
                           static_cast<std::int64_t>(task.worker)));
    span.arg("stolen", task.stolen ? 1.0 : 0.0);
  }
  span.arg("io_s", task_ledger.io_seconds());
  span.arg("cpu_s", task_ledger.cpu_seconds());
}

EvalResponse QueryServer::eval(const EvalRequest& request,
                               const obs::TraceContext& trace) {
  if (eval_requests_metric_ != nullptr) eval_requests_metric_->add();
  obs::ScopedSpan eval_span(trace, "server.eval", actor_);
  EvalResponse response;
  CostLedger ledger;
  std::uint64_t regions_evaluated = 0;
  // The identities whose region shares we evaluate: normally just our own;
  // in degraded mode the client adds dead servers' identities (re-planned
  // region assignment — see region_assignment.h::plan_reassignment).
  std::vector<ServerId> identities = request.act_as;
  if (identities.empty()) identities.push_back(options_.id);
  std::vector<std::uint64_t> all_positions;
  bool first_term = true;
  for (const AndTerm& term : request.terms) {
    std::vector<std::uint64_t> term_positions;
    std::vector<Extent1D> term_extents;
    for (const ServerId identity : identities) {
      const Status s =
          eval_term(term, request, identity, ledger, term_positions,
                    term_extents, regions_evaluated, eval_span.context());
      if (!s.ok()) {
        response.status = s;
        return response;
      }
    }
    if (identities.size() > 1) {
      // Per-identity sublists are each ascending; restore the global order.
      std::sort(term_positions.begin(), term_positions.end());
    }
    if (first_term) {
      all_positions = std::move(term_positions);
      response.sorted_extents = std::move(term_extents);
      first_term = false;
    } else {
      // OR across terms: merge + dedupe (paper: merge sort on results).
      ledger.add_cpu(store_.cluster().config().cost.scan_cost(
                         (all_positions.size() + term_positions.size()) *
                         sizeof(std::uint64_t)),
                     CpuStage::kMerge);
      all_positions = merge_union(std::move(all_positions),
                                  std::move(term_positions));
      response.sorted_extents.clear();  // extents only valid single-term
    }
  }

  // Sorted single-conjunct fast path: hits are counted from extents and
  // positions may not have been materialized.
  if (!response.sorted_extents.empty() && all_positions.empty()) {
    for (const Extent1D& e : response.sorted_extents) {
      response.num_hits += e.count;
    }
    if (!request.terms.empty()) {
      response.replica_id = request.terms.front().driver_replica;
    }
  } else {
    response.num_hits = all_positions.size();
  }
  if (request.need_locations) {
    response.has_positions = true;
    response.positions = std::move(all_positions);
  }
  response.ledger = LedgerSummary::from(ledger);
  response.status = Status::Ok();
  if (bytes_read_metric_ != nullptr) {
    bytes_read_metric_->add(response.ledger.bytes_read);
    read_ops_metric_->add(response.ledger.read_ops);
    // Simulated per-request latency: the same modeled elapsed time the
    // client folds into OpStats, so snapshots are deterministic.
    eval_latency_metric_->observe(response.ledger.elapsed());
  }
  if (trace.enabled()) {
    // The span carries the FINAL ledger split (post merge_parallel
    // rescaling), so span-summed stage times reconcile with the response
    // summary the client folds into OpStats.
    eval_span.arg("io_s", response.ledger.io_seconds);
    eval_span.arg("cpu_s", response.ledger.cpu_seconds);
    eval_span.arg("scan_s", response.ledger.scan_seconds);
    eval_span.arg("decode_s", response.ledger.decode_seconds);
    eval_span.arg("merge_s", response.ledger.merge_seconds);
    eval_span.arg("elapsed_s", response.ledger.elapsed());
    eval_span.arg("bytes", static_cast<double>(response.ledger.bytes_read));
    eval_span.arg("ops", static_cast<double>(response.ledger.read_ops));
    eval_span.arg("regions_evaluated",
                  static_cast<double>(regions_evaluated));
    eval_span.arg("identities", static_cast<double>(identities.size()));
    eval_span.arg("num_hits", static_cast<double>(response.num_hits));
  }
  return response;
}

Status QueryServer::eval_term(const AndTerm& term, const EvalRequest& request,
                              ServerId identity, CostLedger& ledger,
                              std::vector<std::uint64_t>& out_positions,
                              std::vector<Extent1D>& out_extents,
                              std::uint64_t& regions_evaluated,
                              const obs::TraceContext& trace) {
  if (term.conjuncts.empty()) {
    return Status::InvalidArgument("AND-term with no conjuncts");
  }
  // Work on identity-local lists; the internal logic relies on ascending
  // order, which only holds within one identity's region share.
  std::vector<std::uint64_t> positions;
  std::vector<Extent1D> sorted_extents;
  const Conjunct& driver = term.conjuncts.front();
  PDC_ASSIGN_OR_RETURN(const obj::ObjectDescriptor* driver_obj,
                       store_.get(driver.object));

  const bool sorted_driver =
      request.strategy == Strategy::kSortedHistogram &&
      term.driver_replica != kInvalidObjectId;

  if (sorted_driver) {
    PDC_ASSIGN_OR_RETURN(const obj::ObjectDescriptor* replica,
                         store_.get(term.driver_replica));
    regions_evaluated +=
        regions_of_server(*replica, identity, options_.num_servers).size();
    std::vector<Extent1D> extents;
    PDC_RETURN_IF_ERROR(eval_driver_sorted(*replica, driver.interval,
                                           identity, ledger, extents, trace));

    // Extents-only results are valid ONLY for a single-term request: the
    // OR merge in eval() operates on positions and discards extents, so a
    // multi-term query must materialize the driver hits or the whole first
    // term would vanish from the union.
    const bool need_positions = request.need_locations ||
                                term.conjuncts.size() > 1 ||
                                request.terms.size() > 1 ||
                                request.region_constraint.count > 0;
    if (!need_positions) {
      out_extents.insert(out_extents.end(), extents.begin(), extents.end());
      return Status::Ok();
    }
    // Map replica-space extents to original positions (contiguous
    // permutation reads), then sort ascending.
    for (const Extent1D& e : extents) {
      PDC_ASSIGN_OR_RETURN(
          std::vector<std::uint64_t> original,
          sortrep::map_to_source_positions(store_, *replica, e,
                                           read_ctx(ledger, trace)));
      positions.insert(positions.end(), original.begin(), original.end());
    }
    ledger.add_cpu(store_.cluster().config().cost.scan_cost(
                       positions.size() * sizeof(std::uint64_t)),
                   CpuStage::kMerge);
    std::sort(positions.begin(), positions.end());
    if (request.region_constraint.count > 0) {
      std::erase_if(positions, [&](std::uint64_t p) {
        return !request.region_constraint.contains(p);
      });
      // The extents describe the UNCONSTRAINED sorted hit range; after the
      // position filter they no longer match the result and must not be
      // reported — eval() counts hits from extents whenever positions are
      // empty, so a server whose share was filtered out entirely would
      // otherwise report phantom hits.
    } else {
      sorted_extents = std::move(extents);
    }
  } else {
    regions_evaluated +=
        regions_of_server(*driver_obj, identity, options_.num_servers).size();
    switch (request.strategy) {
      case Strategy::kFullScan:
        PDC_RETURN_IF_ERROR(eval_driver_scan(*driver_obj, driver.interval,
                                             request.region_constraint,
                                             /*prune=*/false, identity,
                                             ledger, positions, trace));
        break;
      case Strategy::kHistogram:
      case Strategy::kSortedHistogram:  // no replica available: histogram
        PDC_RETURN_IF_ERROR(eval_driver_scan(*driver_obj, driver.interval,
                                             request.region_constraint,
                                             /*prune=*/true, identity,
                                             ledger, positions, trace));
        break;
      case Strategy::kHistogramIndex:
        PDC_RETURN_IF_ERROR(eval_driver_index(*driver_obj, driver.interval,
                                              request.region_constraint,
                                              identity, ledger, positions,
                                              trace));
        break;
    }
  }

  log_debug("server ", options_.id, " as ", identity, " driver done: positions=",
            positions.size(), " extents=", sorted_extents.size(),
            " io=", ledger.io_seconds(), " ops=", ledger.read_ops());
  // AND short-circuit: evaluate remaining conjuncts only at the selected
  // locations; stop early if nothing is left (paper §III-C).
  for (std::size_t c = 1; c < term.conjuncts.size() && !positions.empty();
       ++c) {
    PDC_ASSIGN_OR_RETURN(const obj::ObjectDescriptor* object,
                         store_.get(term.conjuncts[c].object));
    if (object->num_elements != driver_obj->num_elements) {
      return Status::InvalidArgument(
          "multi-object query requires identical dimensions");
    }
    PDC_RETURN_IF_ERROR(restrict_positions(
        *object, term.conjuncts[c].interval,
        request.strategy == Strategy::kFullScan, ledger, positions, trace));
  }
  if (term.conjuncts.size() > 1) sorted_extents.clear();
  out_positions.insert(out_positions.end(), positions.begin(),
                       positions.end());
  out_extents.insert(out_extents.end(), sorted_extents.begin(),
                     sorted_extents.end());
  return Status::Ok();
}

Status QueryServer::eval_driver_scan(const obj::ObjectDescriptor& object,
                                     const ValueInterval& interval,
                                     Extent1D constraint, bool prune,
                                     ServerId identity, CostLedger& ledger,
                                     std::vector<std::uint64_t>& positions,
                                     const obs::TraceContext& trace) {
  const CostModel& cost = store_.cluster().config().cost;
  const std::vector<RegionIndex> regions =
      regions_of_server(object, identity, options_.num_servers);
  obs::ScopedSpan phase(
      trace, prune ? "phase.histogram_prune" : "phase.region_scan", actor_);
  phase.arg("regions", static_cast<double>(regions.size()));
  phase.arg("identity", static_cast<double>(identity));
  // One pool task per region (fetch through the cache + scan).  Each task
  // fills its own slot, so concatenating slots in region-index order below
  // reproduces the serial loop bit-exactly: per-region hit lists are
  // ascending and region extents are disjoint ascending.
  std::vector<Status> statuses(regions.size());
  std::vector<CostLedger> ledgers(regions.size());
  std::vector<std::vector<std::uint64_t>> hits(regions.size());
  exec::parallel_for(options_.pool, regions.size(), [&](std::size_t i) {
    obs::ScopedSpan region_span(phase.context(), "region", actor_);
    region_span.arg("region", static_cast<double>(regions[i]));
    statuses[i] = [&]() -> Status {
      const RegionIndex r = regions[i];
      const obj::RegionDescriptor& region = object.regions[r];
      Extent1D want = region.extent;
      if (constraint.count > 0) {
        want = want.intersect(constraint);
        if (want.empty()) return Status::Ok();
      }
      if (prune && !region.histogram.may_overlap(interval)) {
        region_span.arg("pruned", 1.0);
        return Status::Ok();  // region eliminated by min/max — no I/O at all
      }
      const bool all_hits = prune && region.histogram.covers(interval);
      // Fetch through the cache (populates it for later queries/get-data).
      PDC_ASSIGN_OR_RETURN(
          RegionCache::Buffer buffer,
          fetch_region(object, r, ledgers[i], /*cacheable=*/true,
                       region_span.context()));
      if (all_hits) {
        region_span.arg("all_hits", 1.0);
        // Histogram proves every element matches: skip the per-element scan.
        for (std::uint64_t p = want.offset; p < want.end(); ++p) {
          hits[i].push_back(p);
        }
        return Status::Ok();
      }
      ledgers[i].add_cpu(cost.scan_cost(want.count * object.element_size()),
                         CpuStage::kScan);
      scan_buffer(object.type, buffer->data(), region.extent, want, interval,
                  hits[i]);
      return Status::Ok();
    }();
    annotate_task_span(region_span, ledgers[i]);
  });
  for (const Status& s : statuses) PDC_RETURN_IF_ERROR(s);
  ledger.merge_parallel(ledgers, eval_threads());
  for (const std::vector<std::uint64_t>& h : hits) {
    positions.insert(positions.end(), h.begin(), h.end());
  }
  return Status::Ok();
}

Status QueryServer::eval_driver_index(const obj::ObjectDescriptor& object,
                                      const ValueInterval& interval,
                                      Extent1D constraint, ServerId identity,
                                      CostLedger& ledger,
                                      std::vector<std::uint64_t>& positions,
                                      const obs::TraceContext& trace) {
  if (object.index_file.empty()) {
    return Status::FailedPrecondition("object has no bitmap index: " +
                                      object.name);
  }
  const CostModel& cost = store_.cluster().config().cost;
  PDC_ASSIGN_OR_RETURN(pfs::PfsFile index_file,
                       store_.cluster().open(object.index_file));

  // Pass 1 — plan.  Index headers (bin edges + sizes) travel with region
  // metadata, so classifying bins needs no storage round trip.  Collect the
  // byte extents of every needed bin across ALL surviving regions, then
  // issue one aggregated read over the index file.
  struct PlannedBin {
    RegionIndex region;
    std::uint32_t bin;
    bool full;  ///< full bin: set bits are hits; else candidates
    RegionCache::Buffer cached;  ///< non-null: no read needed
    Extent1D extent;             ///< byte extent in the index file
  };
  std::vector<PlannedBin> planned;
  obs::ScopedSpan prune_phase(trace, "phase.histogram_prune", actor_);
  for (const RegionIndex r :
       regions_of_server(object, identity, options_.num_servers)) {
    obs::ScopedSpan region_span(prune_phase.context(), "region", actor_);
    region_span.arg("region", static_cast<double>(r));
    const obj::RegionDescriptor& region = object.regions[r];
    Extent1D want = region.extent;
    if (constraint.count > 0) {
      want = want.intersect(constraint);
      if (want.empty()) continue;
    }
    if (!region.histogram.may_overlap(interval)) {
      region_span.arg("pruned", 1.0);
      continue;
    }
    if (region.histogram.covers(interval)) {
      region_span.arg("all_hits", 1.0);
      // Histogram proves the whole region matches: no index I/O needed.
      for (std::uint64_t p = want.offset; p < want.end(); ++p) {
        positions.push_back(p);
      }
      continue;
    }
    PDC_ASSIGN_OR_RETURN(
        bitmap::PartitionedIndexView view,
        bitmap::PartitionedIndexView::ParseHeader(region.index_header));
    const auto selection = view.select_bins(interval);
    std::vector<std::pair<std::uint32_t, bool>> bins;
    bins.reserve(selection.full.size() + selection.partial.size());
    for (const std::uint32_t b : selection.full) bins.emplace_back(b, true);
    for (const std::uint32_t b : selection.partial) {
      bins.emplace_back(b, false);
    }
    std::sort(bins.begin(), bins.end());
    region_span.arg("bins", static_cast<double>(bins.size()));
    for (const auto& [b, full] : bins) {
      Extent1D e = view.bin_extent(b);
      e.offset += region.index_offset;
      // Previously-read bins are served from the server's index cache.
      const RegionCache::Key key{object.id,
                                 static_cast<RegionIndex>(r * 2048 + b)};
      planned.push_back({r, b, full, index_cache_.get(key), e});
    }
  }
  prune_phase.arg("planned_bins", static_cast<double>(planned.size()));
  prune_phase.close();

  if (!planned.empty()) {
    obs::ScopedSpan decode_phase(trace, "phase.bin_decode", actor_);
    decode_phase.arg("bins", static_cast<double>(planned.size()));
    // Read the uncached bins in one aggregated pass.
    std::vector<Extent1D> missing_extents;
    std::vector<std::size_t> missing_index;
    for (std::size_t i = 0; i < planned.size(); ++i) {
      if (planned[i].cached == nullptr) {
        missing_extents.push_back(planned[i].extent);
        missing_index.push_back(i);
      }
    }
    if (!missing_extents.empty()) {
      std::vector<std::shared_ptr<std::vector<std::uint8_t>>> buffers;
      std::vector<std::span<std::uint8_t>> dests;
      buffers.reserve(missing_extents.size());
      for (const Extent1D& e : missing_extents) {
        buffers.push_back(std::make_shared<std::vector<std::uint8_t>>(
            static_cast<std::size_t>(e.count)));
        dests.emplace_back(*buffers.back());
      }
      PDC_RETURN_IF_ERROR(pfs::aggregated_read(
          index_file, missing_extents, dests, options_.index_aggregation,
          read_ctx(ledger, decode_phase.context())));
      for (std::size_t k = 0; k < missing_index.size(); ++k) {
        PlannedBin& p = planned[missing_index[k]];
        p.cached = buffers[k];
        index_cache_.put({object.id,
                          static_cast<RegionIndex>(p.region * 2048 + p.bin)},
                         buffers[k]);
      }
    }

    // Pass 2 — decode bins in parallel (one task per planned bin); definite
    // hits and candidates land in per-task slots, concatenated afterwards.
    // Order does not matter for correctness: positions get a final sort and
    // candidates are sorted before the aggregated value check.
    std::vector<Status> statuses(planned.size());
    std::vector<CostLedger> ledgers(planned.size());
    std::vector<std::vector<std::uint64_t>> definite(planned.size());
    std::vector<std::vector<std::uint64_t>> partial(planned.size());
    exec::parallel_for(options_.pool, planned.size(), [&](std::size_t i) {
      obs::ScopedSpan bin_span(decode_phase.context(), "bin", actor_);
      bin_span.arg("region", static_cast<double>(planned[i].region));
      bin_span.arg("bin", static_cast<double>(planned[i].bin));
      statuses[i] = [&]() -> Status {
        PDC_ASSIGN_OR_RETURN(
            bitmap::WahBitVector bv,
            bitmap::PartitionedIndexView::DecodeBin(*planned[i].cached));
        ledgers[i].add_cpu(static_cast<double>(planned[i].cached->size()) /
                               cost.index_decode_bandwidth_bps,
                           CpuStage::kDecode);
        const obj::RegionDescriptor& region =
            object.regions[planned[i].region];
        Extent1D want = region.extent;
        if (constraint.count > 0) want = want.intersect(constraint);
        auto& sink = planned[i].full ? definite[i] : partial[i];
        const std::uint64_t base = region.extent.offset;
        bv.for_each_set([&sink, base, &want](std::uint64_t local) {
          const std::uint64_t pos = base + local;
          if (want.contains(pos)) sink.push_back(pos);
        });
        return Status::Ok();
      }();
      annotate_task_span(bin_span, ledgers[i]);
    });
    for (const Status& s : statuses) PDC_RETURN_IF_ERROR(s);
    ledger.merge_parallel(ledgers, eval_threads());
    std::vector<std::uint64_t> candidates;
    for (std::size_t i = 0; i < planned.size(); ++i) {
      positions.insert(positions.end(), definite[i].begin(), definite[i].end());
      candidates.insert(candidates.end(), partial[i].begin(),
                        partial[i].end());
    }

    log_debug("HI server ", options_.id, ": obj ", object.id, " bins=",
              planned.size(), " definite=", positions.size(),
              " candidates=", candidates.size());
    decode_phase.close();
    if (!candidates.empty()) {
      obs::ScopedSpan check_phase(trace, "phase.candidate_check", actor_);
      check_phase.arg("candidates", static_cast<double>(candidates.size()));
      std::sort(candidates.begin(), candidates.end());
      const std::size_t elem_size = object.element_size();
      // Candidate values are fetched with the wide-gap policy: merging
      // nearby candidates into one larger read costs extra bytes but far
      // fewer op latencies (the block-read philosophy of §III-E).
      std::vector<std::uint8_t> values(candidates.size() * elem_size);
      PDC_RETURN_IF_ERROR(
          store_.read_values_at(object, candidates, values,
                                options_.aggregation,
                                read_ctx(ledger, check_phase.context())));
      ledger.add_cpu(cost.scan_cost(values.size()), CpuStage::kScan);
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (check_value(object.type, values.data(), i, interval)) {
          positions.push_back(candidates[i]);
        }
      }
    }
  }
  std::sort(positions.begin(), positions.end());
  return Status::Ok();
}

Status QueryServer::eval_driver_sorted(const obj::ObjectDescriptor& replica,
                                       const ValueInterval& interval,
                                       ServerId identity, CostLedger& ledger,
                                       std::vector<Extent1D>& extents,
                                       const obs::TraceContext& trace) {
  const CostModel& cost = store_.cluster().config().cost;
  const std::vector<RegionIndex> regions =
      regions_of_server(replica, identity, options_.num_servers);
  obs::ScopedSpan phase(trace, "phase.sorted_boundary", actor_);
  phase.arg("regions", static_cast<double>(regions.size()));
  phase.arg("identity", static_cast<double>(identity));
  // Boundary regions fetch + binary-search in parallel; the extent list is
  // then assembled serially in region-index order so cross-region
  // coalescing sees the same adjacency as the serial loop.
  std::vector<Status> statuses(regions.size());
  std::vector<CostLedger> ledgers(regions.size());
  std::vector<Extent1D> found(regions.size());  // count == 0: no hit
  exec::parallel_for(options_.pool, regions.size(), [&](std::size_t i) {
    obs::ScopedSpan region_span(phase.context(), "region", actor_);
    region_span.arg("region", static_cast<double>(regions[i]));
    statuses[i] = [&]() -> Status {
      const RegionIndex r = regions[i];
      const obj::RegionDescriptor& region = replica.regions[r];
      if (!region.histogram.may_overlap(interval)) {
        region_span.arg("pruned", 1.0);
        return Status::Ok();
      }
      if (region.histogram.covers(interval)) {
        region_span.arg("all_hits", 1.0);
        found[i] = region.extent;  // interior region: all elements match
        return Status::Ok();
      }
      // Boundary region: fetch (cached) and binary-search the range.
      PDC_ASSIGN_OR_RETURN(
          RegionCache::Buffer buffer,
          fetch_region(replica, r, ledgers[i], /*cacheable=*/true,
                       region_span.context()));
      const auto [lo, hi] = sorted_range(replica.type, buffer->data(),
                                         region.extent.count, interval);
      // Binary search touches O(log n) elements.
      ledgers[i].add_cpu(
          cost.scan_cost(
              2 * 64 * replica.element_size() *
              static_cast<std::uint64_t>(
                  std::ceil(std::log2(static_cast<double>(
                      std::max<std::uint64_t>(2, region.extent.count)))))),
          CpuStage::kScan);
      if (hi > lo) found[i] = {region.extent.offset + lo, hi - lo};
      return Status::Ok();
    }();
    annotate_task_span(region_span, ledgers[i]);
  });
  for (const Status& s : statuses) PDC_RETURN_IF_ERROR(s);
  ledger.merge_parallel(ledgers, eval_threads());
  for (const Extent1D& hit : found) {
    if (hit.count == 0) continue;
    // Coalesce extents adjacent across region boundaries.
    if (!extents.empty() && extents.back().end() == hit.offset) {
      extents.back().count += hit.count;
    } else {
      extents.push_back(hit);
    }
  }
  return Status::Ok();
}

Status QueryServer::restrict_positions(const obj::ObjectDescriptor& object,
                                       const ValueInterval& interval,
                                       bool full_scan_mode, CostLedger& ledger,
                                       std::vector<std::uint64_t>& positions,
                                       const obs::TraceContext& trace) {
  obs::ScopedSpan phase(trace, "phase.restrict", actor_);
  phase.arg("object", static_cast<double>(object.id));
  phase.arg("positions_in", static_cast<double>(positions.size()));
  const CostModel& cost = store_.cluster().config().cost;
  const std::size_t elem_size = object.element_size();

  // Split the ascending position list into per-region groups serially
  // (cheap), then check the groups in parallel.  Groups are disjoint
  // ascending, so concatenating the per-group keep lists in group order
  // reproduces the serial result bit-exactly.
  struct Group {
    std::size_t begin;
    std::size_t end;
    RegionIndex region;
  };
  std::vector<Group> groups;
  std::size_t i = 0;
  while (i < positions.size()) {
    const RegionIndex r = region_of_position(object, positions[i]);
    std::size_t j = i;
    while (j < positions.size() &&
           region_of_position(object, positions[j]) == r) {
      ++j;
    }
    groups.push_back({i, j, r});
    i = j;
  }

  std::vector<Status> statuses(groups.size());
  std::vector<CostLedger> ledgers(groups.size());
  std::vector<std::vector<std::uint64_t>> kept_parts(groups.size());
  exec::parallel_for(options_.pool, groups.size(), [&](std::size_t gi) {
    obs::ScopedSpan group_span(phase.context(), "region_check", actor_);
    group_span.arg("region", static_cast<double>(groups[gi].region));
    statuses[gi] = [&]() -> Status {
      const std::span<const std::uint64_t> group(
          &positions[groups[gi].begin], groups[gi].end - groups[gi].begin);
      const RegionIndex r = groups[gi].region;
      const obj::RegionDescriptor& region = object.regions[r];
      std::vector<std::uint64_t>& kept = kept_parts[gi];
      CostLedger& task_ledger = ledgers[gi];

      if (!full_scan_mode) {
        if (!region.histogram.may_overlap(interval)) {
          return Status::Ok();  // drop group
        }
        if (region.histogram.covers(interval)) {
          kept.insert(kept.end(), group.begin(), group.end());
          return Status::Ok();
        }
      }

      RegionCache::Buffer buffer = cache_.get({object.id, r});
      // Treat the group as dense when it holds many positions OR when its
      // positions span most of the region anyway: the aggregated point read
      // would coalesce into a near-whole-region read, so reading the region
      // through the cache costs the same now and is free next time.
      const std::uint64_t span_bytes =
          group.empty() ? 0
                        : (group.back() - group.front() + 1) * elem_size;
      const bool dense =
          full_scan_mode ||
          static_cast<double>(group.size()) >
              options_.dense_read_threshold *
                  static_cast<double>(region.extent.count) ||
          span_bytes * 2 >= region.extent.count * elem_size;
      if (buffer == nullptr && dense) {
        PDC_ASSIGN_OR_RETURN(
            buffer, fetch_region(object, r, task_ledger, /*cacheable=*/true,
                                 group_span.context()));
        if (full_scan_mode) {
          // The baseline scans the whole region regardless of selectivity.
          task_ledger.add_cpu(cost.scan_cost(region.extent.count * elem_size),
                              CpuStage::kScan);
        }
      }
      if (buffer != nullptr) {
        task_ledger.add_cpu(static_cast<double>(group.size() * elem_size) /
                                cost.memcpy_bandwidth_bps,
                            CpuStage::kScan);
        for (const std::uint64_t pos : group) {
          if (check_value(object.type, buffer->data(),
                          pos - region.extent.offset, interval)) {
            kept.push_back(pos);
          }
        }
      } else {
        // Sparse group, cold region: aggregated point reads.
        std::vector<std::uint8_t> values(group.size() * elem_size);
        PDC_RETURN_IF_ERROR(store_.read_values_at(
            object, group, values, options_.aggregation,
            read_ctx(task_ledger, group_span.context())));
        task_ledger.add_cpu(cost.scan_cost(values.size()), CpuStage::kScan);
        for (std::size_t k = 0; k < group.size(); ++k) {
          if (check_value(object.type, values.data(), k, interval)) {
            kept.push_back(group[k]);
          }
        }
      }
      return Status::Ok();
    }();
    annotate_task_span(group_span, ledgers[gi]);
  });
  for (const Status& s : statuses) PDC_RETURN_IF_ERROR(s);
  ledger.merge_parallel(ledgers, eval_threads());

  std::vector<std::uint64_t> kept;
  kept.reserve(positions.size());
  for (const std::vector<std::uint64_t>& part : kept_parts) {
    kept.insert(kept.end(), part.begin(), part.end());
  }
  positions = std::move(kept);
  phase.arg("positions_out", static_cast<double>(positions.size()));
  return Status::Ok();
}

Result<RegionCache::Buffer> QueryServer::fetch_region(
    const obj::ObjectDescriptor& object, RegionIndex region,
    CostLedger& ledger, bool cacheable, const obs::TraceContext& trace) {
  const RegionCache::Key key{object.id, region};
  if (RegionCache::Buffer hit = cache_.get(key)) return hit;
  log_debug("server ", options_.id, " cache MISS obj ", object.id, " region ",
            region);
  const obj::RegionDescriptor& desc = object.regions[region];
  auto buffer = std::make_shared<std::vector<std::uint8_t>>(
      static_cast<std::size_t>(desc.extent.count * object.element_size()));
  PDC_RETURN_IF_ERROR(
      store_.read_region(object, region, *buffer, read_ctx(ledger, trace)));
  RegionCache::Buffer shared = std::move(buffer);
  if (cacheable) cache_.put(key, shared);
  return shared;
}

Status QueryServer::gather_values(const obj::ObjectDescriptor& object,
                                  std::span<const std::uint64_t> positions,
                                  std::span<std::uint8_t> out,
                                  CostLedger& ledger,
                                  const obs::TraceContext& trace) {
  const CostModel& cost = store_.cluster().config().cost;
  const std::size_t elem_size = object.element_size();
  if (out.size() != positions.size() * elem_size) {
    return Status::InvalidArgument("gather output size mismatch");
  }
  std::size_t i = 0;
  while (i < positions.size()) {
    const RegionIndex r = region_of_position(object, positions[i]);
    std::size_t j = i;
    while (j < positions.size() &&
           region_of_position(object, positions[j]) == r) {
      ++j;
    }
    const std::span<const std::uint64_t> group(&positions[i], j - i);
    std::span<std::uint8_t> dest =
        out.subspan(i * elem_size, group.size() * elem_size);
    i = j;
    const obj::RegionDescriptor& region = object.regions[r];

    obs::ScopedSpan group_span(trace, "read_group", actor_);
    group_span.arg("region", static_cast<double>(r));
    group_span.arg("positions", static_cast<double>(group.size()));
    RegionCache::Buffer buffer = cache_.get({object.id, r});
    const bool dense = static_cast<double>(group.size()) >
                       options_.dense_read_threshold *
                           static_cast<double>(region.extent.count);
    if (buffer == nullptr && dense) {
      PDC_ASSIGN_OR_RETURN(buffer,
                           fetch_region(object, r, ledger, /*cacheable=*/true,
                                        group_span.context()));
    }
    if (buffer != nullptr) {
      group_span.arg("cached", 1.0);
      ledger.add_cpu(static_cast<double>(dest.size()) /
                         cost.memcpy_bandwidth_bps,
                     CpuStage::kMerge);
      for (std::size_t k = 0; k < group.size(); ++k) {
        const std::uint64_t local = group[k] - region.extent.offset;
        std::copy_n(buffer->data() + local * elem_size, elem_size,
                    dest.data() + k * elem_size);
      }
    } else {
      PDC_RETURN_IF_ERROR(
          store_.read_values_at(object, group, dest, options_.aggregation,
                                read_ctx(ledger, group_span.context())));
    }
  }
  return Status::Ok();
}

GetDataResponse QueryServer::get_data(const GetDataRequest& request,
                                      const obs::TraceContext& trace) {
  if (getdata_requests_metric_ != nullptr) getdata_requests_metric_->add();
  obs::ScopedSpan span(trace, "server.get_data", actor_);
  GetDataResponse response;
  CostLedger ledger;
  const auto object = store_.get(request.object);
  if (!object.ok()) {
    response.status = object.status();
    return response;
  }
  const std::size_t elem_size = (*object)->element_size();

  if (request.from_replica) {
    // Sorted-selection fast path: contiguous replica-space extents.
    std::uint64_t total = 0;
    for (const Extent1D& e : request.extents) total += e.count;
    response.values.resize(static_cast<std::size_t>(total * elem_size));
    std::uint64_t written = 0;
    const CostModel& cost = store_.cluster().config().cost;
    for (const Extent1D& e : request.extents) {
      std::uint64_t pos = e.offset;
      while (pos < e.end()) {
        const RegionIndex r = region_of_position(**object, pos);
        const obj::RegionDescriptor& region = (*object)->regions[r];
        const std::uint64_t take = std::min(e.end(), region.extent.end()) - pos;
        std::span<std::uint8_t> dest(
            response.values.data() + written * elem_size,
            static_cast<std::size_t>(take * elem_size));
        if (RegionCache::Buffer buffer = cache_.get({(*object)->id, r})) {
          std::copy_n(
              buffer->data() + (pos - region.extent.offset) * elem_size,
              dest.size(), dest.data());
          ledger.add_cpu(static_cast<double>(dest.size()) /
                             cost.memcpy_bandwidth_bps,
                         CpuStage::kMerge);
        } else {
          const Status s =
              store_.read_elements(**object, {pos, take}, dest,
                                   read_ctx(ledger, span.context()));
          if (!s.ok()) {
            response.status = s;
            return response;
          }
        }
        pos += take;
        written += take;
      }
    }
  } else {
    response.values.resize(request.positions.size() * elem_size);
    const Status s = gather_values(**object, request.positions,
                                   response.values, ledger, span.context());
    if (!s.ok()) {
      response.status = s;
      return response;
    }
  }
  response.ledger = LedgerSummary::from(ledger);
  response.status = Status::Ok();
  if (bytes_read_metric_ != nullptr) {
    bytes_read_metric_->add(response.ledger.bytes_read);
    read_ops_metric_->add(response.ledger.read_ops);
  }
  if (trace.enabled()) {
    span.arg("io_s", response.ledger.io_seconds);
    span.arg("cpu_s", response.ledger.cpu_seconds);
    span.arg("merge_s", response.ledger.merge_seconds);
    span.arg("elapsed_s", response.ledger.elapsed());
    span.arg("bytes", static_cast<double>(response.ledger.bytes_read));
    span.arg("ops", static_cast<double>(response.ledger.read_ops));
    span.arg("values_bytes", static_cast<double>(response.values.size()));
  }
  return response;
}

}  // namespace pdc::server
