#include "server/query_server.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <utility>

#include "common/interval.h"
#include "common/log.h"
#include "obj/type_dispatch.h"
#include "server/region_assignment.h"
#include "sortrep/sorted_replica.h"

namespace pdc::server {
namespace {

/// Decode one raw element (a sorted-delta log entry) to double.
double delta_value(PdcType type, std::span<const std::uint8_t> bytes) {
  return obj::dispatch_type(type, [&](auto tag) {
    using T = decltype(tag);
    T v;
    std::memcpy(&v, bytes.data(), sizeof(T));
    return static_cast<double>(v);
  });
}

/// Union of two ascending position lists, deduplicated.
std::vector<std::uint64_t> merge_union(std::vector<std::uint64_t> a,
                                       std::vector<std::uint64_t> b) {
  std::vector<std::uint64_t> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

}  // namespace

std::vector<std::uint8_t> QueryServer::handle(
    std::span<const std::uint8_t> payload, const obs::TraceContext& trace) {
  const auto type = peek_request_type(payload);
  if (!type.ok()) {
    EvalResponse resp;
    resp.status = type.status();
    return resp.serialize();
  }
  SerialReader reader(payload);
  if (*type == RequestType::kEvalQuery) {
    auto request = EvalRequest::Deserialize(reader);
    if (!request.ok()) {
      EvalResponse resp;
      resp.status = request.status();
      return resp.serialize();
    }
    return eval(*request, trace).serialize();
  }
  if (*type == RequestType::kMetrics) {
    return metrics_snapshot().serialize();
  }
  if (*type == RequestType::kTransferWrite) {
    auto request = TransferWriteRequest::Deserialize(reader);
    if (!request.ok()) {
      TransferWriteResponse resp;
      resp.status = request.status();
      return resp.serialize();
    }
    return transfer_write(*request, trace).serialize();
  }
  if (*type == RequestType::kJoinEval) {
    auto request = JoinEvalRequest::Deserialize(reader);
    if (!request.ok()) {
      JoinEvalResponse resp;
      resp.status = request.status();
      return resp.serialize();
    }
    // Exactly-once per (join_id, epoch): a duplicate (bus duplication or
    // client retry) is answered from the cached bytes — the exchange state
    // behind the original answer is gone, re-running would deadlock-wait.
    const std::pair<std::uint64_t, std::uint32_t> key{request->join_id,
                                                      request->epoch};
    {
      std::lock_guard lock(join_cache_mu_);
      for (const auto& [k, bytes] : join_cache_) {
        if (k == key) return bytes;
      }
    }
    std::vector<std::uint8_t> bytes = join_eval(*request, trace).serialize();
    {
      constexpr std::size_t kJoinCacheEntries = 32;
      std::lock_guard lock(join_cache_mu_);
      if (join_cache_.size() >= kJoinCacheEntries) {
        join_cache_.erase(join_cache_.begin());
      }
      join_cache_.emplace_back(key, bytes);
    }
    return bytes;
  }
  if (*type == RequestType::kMetaQuery) {
    auto request = MetaQueryRequest::Deserialize(reader);
    if (!request.ok()) {
      MetaQueryResponse resp;
      resp.status = request.status();
      return resp.serialize();
    }
    return meta_query(*request, trace).serialize();
  }
  if (*type == RequestType::kMetaUpdate) {
    auto request = MetaUpdateRequest::Deserialize(reader);
    if (!request.ok()) {
      MetaUpdateResponse resp;
      resp.status = request.status();
      return resp.serialize();
    }
    return meta_update(*request, trace).serialize();
  }
  auto request = GetDataRequest::Deserialize(reader);
  if (!request.ok()) {
    GetDataResponse resp;
    resp.status = request.status();
    return resp.serialize();
  }
  return get_data(*request, trace).serialize();
}

MetaQueryResponse QueryServer::meta_query(const MetaQueryRequest& request,
                                          const obs::TraceContext& trace) {
  MetaQueryResponse response;
  if (meta_query_requests_metric_ != nullptr) {
    meta_query_requests_metric_->add(1);
  }
  if (options_.meta_shard == nullptr) {
    response.status = Status::FailedPrecondition(
        "server has no metadata shard");
    return response;
  }
  obs::ScopedSpan span(trace, "server.meta_query", actor_);
  CostLedger ledger;
  response.postings.resize(request.conditions.size());

  // Numeric range conjuncts on the same attribute all route to that
  // attribute's single numeric vnode, so they arrive here together.  Fuse
  // each such group into one interval and evaluate it with a single
  // both-sided ordered-map walk: `3502 <= PLATE <= 3504` costs O(output),
  // not one half-open posting-list materialization per conjunct.  Every
  // member slot gets the fused (intersected) list — a subset of that
  // conjunct's matches, so the client's cross-condition intersection is
  // unchanged.
  struct FusedGroup {
    ValueInterval interval;
    std::vector<std::size_t> members;
  };
  std::map<std::pair<std::string, std::vector<std::uint32_t>>, FusedGroup>
      fused;
  for (std::size_t i = 0; i < request.conditions.size(); ++i) {
    const meta::MetaCondition& c = request.conditions[i];
    if (c.kind != meta::MetaMatchKind::kValue) continue;
    const auto folded = meta::meta_numeric_fold(c.value);
    if (!folded) continue;
    auto [it, inserted] = fused.try_emplace(
        std::make_pair(c.attribute, request.vnodes[i]));
    const ValueInterval one = ValueInterval::from_op(c.op, *folded);
    it->second.interval =
        inserted ? one : it->second.interval.intersect(one);
    it->second.members.push_back(i);
  }
  std::vector<bool> handled(request.conditions.size(), false);
  for (const auto& [key, group] : fused) {
    if (group.members.size() < 2) continue;
    std::vector<ObjectId> shared;
    const Status status = options_.meta_shard->query_interval(
        key.first, group.interval, key.second, shared, response.epochs,
        ledger, response.probes);
    if (!status.ok()) {
      response.status = status;
      response.postings.clear();
      response.epochs.clear();
      return response;
    }
    for (const std::size_t i : group.members) {
      response.postings[i] = shared;
      handled[i] = true;
    }
  }

  for (std::size_t i = 0; i < request.conditions.size(); ++i) {
    if (handled[i]) continue;
    const Status status = options_.meta_shard->query(
        request.conditions[i], request.vnodes[i], response.postings[i],
        response.epochs, ledger, response.probes);
    if (!status.ok()) {
      response.status = status;
      response.postings.clear();
      response.epochs.clear();
      return response;
    }
  }
  if (meta_probes_metric_ != nullptr) {
    meta_probes_metric_->add(response.probes);
  }
  response.ledger = LedgerSummary::from(ledger);
  span.arg("probes", static_cast<double>(response.probes));
  return response;
}

MetaUpdateResponse QueryServer::meta_update(const MetaUpdateRequest& request,
                                            const obs::TraceContext& trace) {
  MetaUpdateResponse response;
  if (meta_update_requests_metric_ != nullptr) {
    meta_update_requests_metric_->add(1);
  }
  if (options_.meta_shard == nullptr) {
    response.status = Status::FailedPrecondition(
        "server has no metadata shard");
    return response;
  }
  obs::ScopedSpan span(trace, "server.meta_update", actor_);
  std::vector<meta::MetaShard::UpdateOp> ops;
  ops.reserve(request.ops.size());
  for (const MetaUpdateOpWire& op : request.ops) {
    meta::MetaShard::UpdateOp out;
    out.object = op.object;
    out.attribute = op.attribute;
    if (op.has_old) out.old_value = op.old_value;
    out.new_value = op.new_value;
    ops.push_back(std::move(out));
  }
  bool applied = false;
  const auto epoch =
      options_.meta_shard->apply(request.vnode, request.seq, ops, applied);
  if (!epoch.ok()) {
    response.status = epoch.status();
    return response;
  }
  response.epoch = *epoch;
  response.duplicate = !applied;
  CostLedger ledger;
  ledger.add_cpu(static_cast<double>(request.ops.size() + 1) *
                     meta::kMetaProbeSeconds,
                 CpuStage::kMerge);
  response.ledger = LedgerSummary::from(ledger);
  return response;
}

void QueryServer::register_metrics() {
  if (options_.metrics == nullptr) return;
  eval_requests_metric_ = &options_.metrics->counter(actor_ + ".eval_requests");
  getdata_requests_metric_ =
      &options_.metrics->counter(actor_ + ".getdata_requests");
  bytes_read_metric_ = &options_.metrics->counter(actor_ + ".bytes_read");
  read_ops_metric_ = &options_.metrics->counter(actor_ + ".read_ops");
  eval_latency_metric_ =
      &options_.metrics->histogram(actor_ + ".eval_seconds");
  if (options_.meta_shard != nullptr) {
    meta_query_requests_metric_ =
        &options_.metrics->counter(actor_ + ".meta_query_requests");
    meta_update_requests_metric_ =
        &options_.metrics->counter(actor_ + ".meta_update_requests");
    meta_probes_metric_ = &options_.metrics->counter(actor_ + ".meta_probes");
  }
  if (options_.mutable_store != nullptr) {
    write_requests_metric_ =
        &options_.metrics->counter(actor_ + ".write_requests");
    write_bytes_metric_ = &options_.metrics->counter(actor_ + ".write_bytes");
    compactions_metric_ = &options_.metrics->counter(actor_ + ".compactions");
    replica_rebuilds_metric_ =
        &options_.metrics->counter(actor_ + ".replica_rebuilds");
  }
  options_.metrics->gauge_fn(actor_ + ".cache_bytes", [this] {
    return static_cast<double>(cache_.bytes());
  });
  options_.metrics->gauge_fn(actor_ + ".cache_entries", [this] {
    return static_cast<double>(cache_.entries());
  });
  options_.metrics->gauge_fn(actor_ + ".cache_hits", [this] {
    return static_cast<double>(cache_.hits());
  });
  options_.metrics->gauge_fn(actor_ + ".index_cache_bytes", [this] {
    return static_cast<double>(index_cache_.bytes());
  });
}

MetricsResponse QueryServer::metrics_snapshot() const {
  MetricsResponse response;
  if (options_.metrics == nullptr) {
    response.status =
        Status::FailedPrecondition("server has no metrics registry");
    return response;
  }
  response.snapshot = options_.metrics->snapshot();
  response.status = Status::Ok();
  return response;
}

EvalResponse QueryServer::eval(const EvalRequest& request,
                               const obs::TraceContext& trace) {
  if (eval_requests_metric_ != nullptr) eval_requests_metric_->add();
  obs::ScopedSpan eval_span(trace, "server.eval", actor_);
  EvalResponse response;
  CostLedger ledger;
  std::uint64_t regions_evaluated = 0;
  RegionChoiceCounts counts;
  // The identities whose region shares we evaluate: normally just our own;
  // in degraded mode the client adds dead servers' identities (re-planned
  // region assignment — see region_assignment.h::plan_reassignment).
  std::vector<ServerId> identities = request.act_as;
  if (identities.empty()) identities.push_back(options_.id);
  std::vector<std::uint64_t> all_positions;
  bool first_term = true;
  for (const AndTerm& term : request.terms) {
    std::vector<std::uint64_t> term_positions;
    std::vector<Extent1D> term_extents;
    for (const ServerId identity : identities) {
      const Status s =
          eval_term(term, request, identity, ledger, term_positions,
                    term_extents, regions_evaluated, counts,
                    eval_span.context());
      if (!s.ok()) {
        response.status = s;
        return response;
      }
    }
    if (identities.size() > 1) {
      // Per-identity sublists are each ascending; restore the global order.
      std::sort(term_positions.begin(), term_positions.end());
    }
    if (first_term) {
      all_positions = std::move(term_positions);
      response.sorted_extents = std::move(term_extents);
      first_term = false;
    } else {
      // OR across terms: merge + dedupe (paper: merge sort on results).
      ledger.add_cpu(store_.cluster().config().cost.scan_cost(
                         (all_positions.size() + term_positions.size()) *
                         sizeof(std::uint64_t)),
                     CpuStage::kMerge);
      all_positions = merge_union(std::move(all_positions),
                                  std::move(term_positions));
      response.sorted_extents.clear();  // extents only valid single-term
    }
  }

  // Sorted single-conjunct fast path: hits are counted from extents and
  // positions may not have been materialized.
  if (!response.sorted_extents.empty() && all_positions.empty()) {
    for (const Extent1D& e : response.sorted_extents) {
      response.num_hits += e.count;
    }
    if (!request.terms.empty()) {
      response.replica_id = request.terms.front().driver_replica;
    }
  } else {
    response.num_hits = all_positions.size();
  }
  if (request.need_locations) {
    response.has_positions = true;
    response.positions = std::move(all_positions);
  }
  response.ledger = LedgerSummary::from(ledger);
  response.regions_scanned = counts.scanned;
  response.regions_indexed = counts.indexed;
  response.regions_allhit = counts.allhit;
  response.regions_stale = counts.stale;
  // Epoch 1 is the never-written baseline; reporting it as 0 keeps
  // read-only responses in the pre-write wire format byte-for-byte.
  response.max_data_epoch =
      counts.max_data_epoch > 1 ? counts.max_data_epoch : 0;
  response.status = Status::Ok();
  if (bytes_read_metric_ != nullptr) {
    bytes_read_metric_->add(response.ledger.bytes_read);
    read_ops_metric_->add(response.ledger.read_ops);
    // Simulated per-request latency: the same modeled elapsed time the
    // client folds into OpStats, so snapshots are deterministic.
    eval_latency_metric_->observe(response.ledger.elapsed());
  }
  if (trace.enabled()) {
    // The span carries the FINAL ledger split (post merge_parallel
    // rescaling), so span-summed stage times reconcile with the response
    // summary the client folds into OpStats.
    eval_span.arg("io_s", response.ledger.io_seconds);
    eval_span.arg("cpu_s", response.ledger.cpu_seconds);
    eval_span.arg("scan_s", response.ledger.scan_seconds);
    eval_span.arg("decode_s", response.ledger.decode_seconds);
    eval_span.arg("merge_s", response.ledger.merge_seconds);
    eval_span.arg("elapsed_s", response.ledger.elapsed());
    eval_span.arg("bytes", static_cast<double>(response.ledger.bytes_read));
    eval_span.arg("ops", static_cast<double>(response.ledger.read_ops));
    eval_span.arg("regions_evaluated",
                  static_cast<double>(regions_evaluated));
    eval_span.arg("identities", static_cast<double>(identities.size()));
    eval_span.arg("num_hits", static_cast<double>(response.num_hits));
    eval_span.arg("regions_scanned", static_cast<double>(counts.scanned));
    eval_span.arg("regions_indexed", static_cast<double>(counts.indexed));
    eval_span.arg("regions_allhit", static_cast<double>(counts.allhit));
    eval_span.arg("regions_stale", static_cast<double>(counts.stale));
  }
  return response;
}

Status QueryServer::eval_term(const AndTerm& term, const EvalRequest& request,
                              ServerId identity, CostLedger& ledger,
                              std::vector<std::uint64_t>& out_positions,
                              std::vector<Extent1D>& out_extents,
                              std::uint64_t& regions_evaluated,
                              RegionChoiceCounts& counts,
                              const obs::TraceContext& trace) {
  if (term.conjuncts.empty()) {
    return Status::InvalidArgument("AND-term with no conjuncts");
  }
  // Work on identity-local lists; the internal logic relies on ascending
  // order, which only holds within one identity's region share.
  std::vector<std::uint64_t> positions;
  std::vector<Extent1D> sorted_extents;
  const Conjunct& driver = term.conjuncts.front();
  PDC_ASSIGN_OR_RETURN(const obj::ObjectDescriptor* driver_obj,
                       store_.get(driver.object));

  const bool sorted_driver =
      request.strategy == Strategy::kSortedHistogram &&
      term.driver_replica != kInvalidObjectId;

  if (sorted_driver) {
    PDC_ASSIGN_OR_RETURN(const obj::ObjectDescriptor* replica,
                         store_.get(term.driver_replica));
    regions_evaluated +=
        regions_of_server(*replica, identity, options_.num_servers).size();
    std::vector<Extent1D> extents;
    PDC_RETURN_IF_ERROR(pipeline_.run(
        *replica, driver.interval, /*constraint=*/{}, identity,
        pipeline_config(request.strategy, /*sorted_driver=*/true), ledger,
        positions, extents, counts, trace));

    // A non-empty delta log means the replica's data lags the source:
    // base results must be merged with the log element-wise, which needs
    // materialized positions (and makes extent fast-path hits stale).
    const bool delta_active = !driver_obj->sorted_delta.empty();
    // Extents-only results are valid ONLY for a single-term request: the
    // OR merge in eval() operates on positions and discards extents, so a
    // multi-term query must materialize the driver hits or the whole first
    // term would vanish from the union.
    const bool need_positions = request.need_locations ||
                                term.conjuncts.size() > 1 ||
                                request.terms.size() > 1 ||
                                request.region_constraint.count > 0 ||
                                delta_active;
    if (!need_positions) {
      out_extents.insert(out_extents.end(), extents.begin(), extents.end());
      return Status::Ok();
    }
    // Map replica-space extents to original positions (contiguous
    // permutation reads), then sort ascending.
    for (const Extent1D& e : extents) {
      PDC_ASSIGN_OR_RETURN(
          std::vector<std::uint64_t> original,
          sortrep::map_to_source_positions(store_, *replica, e,
                                           read_ctx(ledger, trace)));
      positions.insert(positions.end(), original.begin(), original.end());
    }
    if (delta_active) {
      // Log-structured merge: positions overwritten (or appended) since
      // the replica was built answer from the log's CURRENT value; the
      // base result's stale hits for those positions are dropped.  Log
      // entries are partitioned by source-region owner so that across
      // identities each entry is decided exactly once.
      std::erase_if(positions, [&](std::uint64_t p) {
        return driver_obj->sorted_delta.contains(p);
      });
      for (const auto& [pos, raw] : driver_obj->sorted_delta) {
        if (owner_of_region(*driver_obj,
                            region_of_position(*driver_obj, pos),
                            options_.num_servers) != identity) {
          continue;
        }
        if (driver.interval.contains(delta_value(driver_obj->type, raw))) {
          positions.push_back(pos);
        }
      }
      ledger.add_cpu(store_.cluster().config().cost.scan_cost(
                         driver_obj->sorted_delta.size() *
                         driver_obj->element_size()),
                     CpuStage::kScan);
    }
    ledger.add_cpu(store_.cluster().config().cost.scan_cost(
                       positions.size() * sizeof(std::uint64_t)),
                   CpuStage::kMerge);
    std::sort(positions.begin(), positions.end());
    if (request.region_constraint.count > 0) {
      std::erase_if(positions, [&](std::uint64_t p) {
        return !request.region_constraint.contains(p);
      });
      // The extents describe the UNCONSTRAINED sorted hit range; after the
      // position filter they no longer match the result and must not be
      // reported — eval() counts hits from extents whenever positions are
      // empty, so a server whose share was filtered out entirely would
      // otherwise report phantom hits.
    } else if (!delta_active) {
      // Delta-merged results must never advertise replica extents: the
      // extent fast path serves raw replica bytes, which lag the log.
      sorted_extents = std::move(extents);
    }
  } else {
    regions_evaluated +=
        regions_of_server(*driver_obj, identity, options_.num_servers).size();
    PDC_RETURN_IF_ERROR(pipeline_.run(
        *driver_obj, driver.interval, request.region_constraint, identity,
        pipeline_config(request.strategy, /*sorted_driver=*/false), ledger,
        positions, sorted_extents, counts, trace));
  }

  log_debug("server ", options_.id, " as ", identity, " driver done: positions=",
            positions.size(), " extents=", sorted_extents.size(),
            " io=", ledger.io_seconds(), " ops=", ledger.read_ops());
  // AND short-circuit: evaluate remaining conjuncts only at the selected
  // locations; stop early if nothing is left (paper §III-C).
  for (std::size_t c = 1; c < term.conjuncts.size() && !positions.empty();
       ++c) {
    PDC_ASSIGN_OR_RETURN(const obj::ObjectDescriptor* object,
                         store_.get(term.conjuncts[c].object));
    if (object->num_elements != driver_obj->num_elements) {
      return Status::InvalidArgument(
          "multi-object query requires identical dimensions");
    }
    PDC_RETURN_IF_ERROR(pipeline_.restrict(
        *object, term.conjuncts[c].interval,
        request.strategy == Strategy::kFullScan, ledger, positions, trace));
  }
  if (term.conjuncts.size() > 1) sorted_extents.clear();
  out_positions.insert(out_positions.end(), positions.begin(),
                       positions.end());
  out_extents.insert(out_extents.end(), sorted_extents.begin(),
                     sorted_extents.end());
  return Status::Ok();
}

Status QueryServer::gather_values(const obj::ObjectDescriptor& object,
                                  std::span<const std::uint64_t> positions,
                                  std::span<std::uint8_t> out,
                                  CostLedger& ledger,
                                  const obs::TraceContext& trace) {
  const CostModel& cost = store_.cluster().config().cost;
  const std::size_t elem_size = object.element_size();
  if (out.size() != positions.size() * elem_size) {
    return Status::InvalidArgument("gather output size mismatch");
  }
  std::size_t i = 0;
  while (i < positions.size()) {
    const RegionIndex r = region_of_position(object, positions[i]);
    std::size_t j = i;
    while (j < positions.size() &&
           region_of_position(object, positions[j]) == r) {
      ++j;
    }
    const std::span<const std::uint64_t> group(&positions[i], j - i);
    std::span<std::uint8_t> dest =
        out.subspan(i * elem_size, group.size() * elem_size);
    i = j;
    const obj::RegionDescriptor& region = object.regions[r];

    obs::ScopedSpan group_span(trace, "read_group", actor_);
    group_span.arg("region", static_cast<double>(r));
    group_span.arg("positions", static_cast<double>(group.size()));
    RegionCache::Buffer buffer = cache_.get({object.id, r}, region.data_epoch);
    const bool dense = static_cast<double>(group.size()) >
                       options_.dense_read_threshold *
                           static_cast<double>(region.extent.count);
    if (buffer == nullptr && dense) {
      PDC_ASSIGN_OR_RETURN(
          buffer, pipeline_.fetch_region(object, r, ledger,
                                         /*cacheable=*/true,
                                         group_span.context()));
    }
    if (buffer != nullptr) {
      group_span.arg("cached", 1.0);
      ledger.add_cpu(static_cast<double>(dest.size()) /
                         cost.memcpy_bandwidth_bps,
                     CpuStage::kMerge);
      for (std::size_t k = 0; k < group.size(); ++k) {
        const std::uint64_t local = group[k] - region.extent.offset;
        std::copy_n(buffer->data() + local * elem_size, elem_size,
                    dest.data() + k * elem_size);
      }
    } else {
      PDC_RETURN_IF_ERROR(
          store_.read_values_at(object, group, dest, options_.aggregation,
                                read_ctx(ledger, group_span.context())));
    }
  }
  return Status::Ok();
}

TransferWriteResponse QueryServer::transfer_write(
    const TransferWriteRequest& request, const obs::TraceContext& trace) {
  obs::ScopedSpan span(trace, "server.transfer_write", actor_);
  TransferWriteResponse response;
  if (options_.mutable_store == nullptr) {
    response.status =
        Status::FailedPrecondition("server deployed without a write path");
    return response;
  }
  if (write_requests_metric_ != nullptr) {
    write_requests_metric_->add();
    write_bytes_metric_->add(request.payload.size());
  }
  CostLedger ledger;
  obj::WriteOptions write_options;
  write_options.maintain_accelerators = options_.maintain_accelerators;
  write_options.compact_threshold = options_.compact_threshold;
  write_options.pool = options_.pool;
  write_options.ledger = &ledger;
  const auto result = options_.mutable_store->apply_write(
      request.object,
      request.kind == WriteKind::kOverwrite ? obj::WriteKind::kOverwrite
                                            : obj::WriteKind::kAppend,
      request.extent, request.payload, request.write_seq, write_options);
  if (!result.ok()) {
    response.status = result.status();
    return response;
  }
  response.data_epoch = result->data_epoch;
  response.regions_touched = result->regions_touched;
  response.duplicate = result->duplicate;
  response.compacted = result->compacted;
  if (result->compacted && compactions_metric_ != nullptr) {
    compactions_metric_->add();
  }
  // Delta log past its threshold: fold it into a fresh sorted replica.
  // A rebuild can legitimately fail (writes introduced NaN) — the delta
  // log is kept and merged reads continue, so the write still succeeds.
  if (!result->duplicate && result->replica_id != kInvalidObjectId &&
      options_.replica_rebuild_threshold > 0 &&
      result->sorted_delta_entries >= options_.replica_rebuild_threshold) {
    const Status rebuilt = sortrep::rebuild_sorted_replica(
        *options_.mutable_store, request.object, options_.pool);
    if (rebuilt.ok() && replica_rebuilds_metric_ != nullptr) {
      replica_rebuilds_metric_->add();
    }
    span.arg("replica_rebuilt", rebuilt.ok() ? 1.0 : 0.0);
  }
  response.ledger = LedgerSummary::from(ledger);
  response.status = Status::Ok();
  if (trace.enabled()) {
    span.arg("object", static_cast<double>(request.object));
    span.arg("bytes", static_cast<double>(request.payload.size()));
    span.arg("epoch", static_cast<double>(response.data_epoch));
    span.arg("regions_touched",
             static_cast<double>(response.regions_touched));
    span.arg("duplicate", response.duplicate ? 1.0 : 0.0);
    span.arg("compacted", response.compacted ? 1.0 : 0.0);
  }
  return response;
}

GetDataResponse QueryServer::get_data(const GetDataRequest& request,
                                      const obs::TraceContext& trace) {
  if (getdata_requests_metric_ != nullptr) getdata_requests_metric_->add();
  obs::ScopedSpan span(trace, "server.get_data", actor_);
  GetDataResponse response;
  CostLedger ledger;
  const auto object = store_.get(request.object);
  if (!object.ok()) {
    response.status = object.status();
    return response;
  }
  const std::size_t elem_size = (*object)->element_size();

  if (request.from_replica) {
    // Sorted-selection fast path: contiguous replica-space extents, served
    // zero-copy.  Cached region chunks are emitted as borrowed spans into
    // the response (the cache buffer is pinned alongside); cold chunks are
    // read into pinned staging buffers.  Either way the bulk bytes are
    // copied exactly once — at wire assembly in serialize().  The modeled
    // memcpy charge stays where the legacy copy was, so simulated time is
    // unchanged.
    const CostModel& cost = store_.cluster().config().cost;
    for (const Extent1D& e : request.extents) {
      std::uint64_t pos = e.offset;
      while (pos < e.end()) {
        const RegionIndex r = region_of_position(**object, pos);
        const obj::RegionDescriptor& region = (*object)->regions[r];
        const std::uint64_t take = std::min(e.end(), region.extent.end()) - pos;
        const std::size_t nbytes = static_cast<std::size_t>(take * elem_size);
        if (RegionCache::Buffer buffer =
                cache_.get({(*object)->id, r}, region.data_epoch)) {
          response.value_parts.emplace_back(
              buffer->data() + (pos - region.extent.offset) * elem_size,
              nbytes);
          response.pins.push_back(std::move(buffer));
          ledger.add_cpu(static_cast<double>(nbytes) /
                             cost.memcpy_bandwidth_bps,
                         CpuStage::kMerge);
        } else {
          auto staging = std::make_shared<std::vector<std::uint8_t>>(nbytes);
          const Status s =
              store_.read_elements(**object, {pos, take}, *staging,
                                   read_ctx(ledger, span.context()));
          if (!s.ok()) {
            response.status = s;
            return response;
          }
          response.value_parts.emplace_back(staging->data(), nbytes);
          response.pins.push_back(std::move(staging));
        }
        pos += take;
      }
    }
  } else {
    response.values.resize(request.positions.size() * elem_size);
    const Status s = gather_values(**object, request.positions,
                                   response.values, ledger, span.context());
    if (!s.ok()) {
      response.status = s;
      return response;
    }
  }
  response.ledger = LedgerSummary::from(ledger);
  response.status = Status::Ok();
  if (bytes_read_metric_ != nullptr) {
    bytes_read_metric_->add(response.ledger.bytes_read);
    read_ops_metric_->add(response.ledger.read_ops);
  }
  if (trace.enabled()) {
    span.arg("io_s", response.ledger.io_seconds);
    span.arg("cpu_s", response.ledger.cpu_seconds);
    span.arg("merge_s", response.ledger.merge_seconds);
    span.arg("elapsed_s", response.ledger.elapsed());
    span.arg("bytes", static_cast<double>(response.ledger.bytes_read));
    span.arg("ops", static_cast<double>(response.ledger.read_ops));
    span.arg("values_bytes", static_cast<double>(response.values_size()));
  }
  return response;
}

}  // namespace pdc::server
