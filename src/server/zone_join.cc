#include "server/zone_join.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace pdc::server {

namespace {

/// Zone ids stay within ±2e18: far inside int64 (±9.2e18) so ±1 band
/// steps and modulo arithmetic can never overflow.
constexpr double kZoneLimit = 2.0e18;

double widen_down(double v) noexcept {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  return std::nextafter(std::nextafter(v, -kInf), -kInf);
}

double widen_up(double v) noexcept {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  return std::nextafter(std::nextafter(v, kInf), kInf);
}

}  // namespace

std::int64_t zone_of(double value, double zone_height) noexcept {
  const double z = std::floor(value / zone_height);
  if (!(z > -kZoneLimit)) return static_cast<std::int64_t>(-kZoneLimit);
  if (z >= kZoneLimit) return static_cast<std::int64_t>(kZoneLimit);
  return static_cast<std::int64_t>(z);
}

std::pair<std::int64_t, std::int64_t> zone_band(double value, double epsilon,
                                                double zone_height) noexcept {
  const double lo = widen_down(value - epsilon);
  const double hi = widen_up(value + epsilon);
  return {zone_of(lo, zone_height), zone_of(hi, zone_height)};
}

Status validate_join_params(double epsilon, double zone_height) noexcept {
  if (!std::isfinite(epsilon) || epsilon < 0.0) {
    return Status::InvalidArgument("join epsilon must be finite and >= 0");
  }
  if (!std::isfinite(zone_height) || zone_height <= 0.0) {
    return Status::InvalidArgument("zone height must be finite and > 0");
  }
  if (zone_height < epsilon) {
    return Status::InvalidArgument(
        "zone height must be >= epsilon (zone-algorithm rule)");
  }
  return Status::Ok();
}

ServerId zone_owner(std::int64_t zone,
                    const std::vector<ServerId>& participants) noexcept {
  const auto p = static_cast<std::int64_t>(participants.size());
  return participants[static_cast<std::size_t>(((zone % p) + p) % p)];
}

std::vector<JoinPairWire> zone_merge_join(std::vector<rpc::JoinTuple> a,
                                          std::vector<rpc::JoinTuple> b,
                                          double epsilon) {
  const auto by_value = [](const rpc::JoinTuple& x, const rpc::JoinTuple& y) {
    return x.value != y.value ? x.value < y.value : x.pos < y.pos;
  };
  std::sort(a.begin(), a.end(), by_value);
  std::sort(b.begin(), b.end(), by_value);
  std::vector<JoinPairWire> out;
  std::size_t lo = 0;
  for (const rpc::JoinTuple& ta : a) {
    // Band bounds are 2-ulp widened so the window can only be too wide;
    // the exact predicate below decides membership, identically to the
    // element-wise oracle.
    const double lo_bound = widen_down(ta.value - epsilon);
    const double hi_bound = widen_up(ta.value + epsilon);
    while (lo < b.size() && b[lo].value < lo_bound) ++lo;
    for (std::size_t j = lo; j < b.size() && b[j].value <= hi_bound; ++j) {
      if (std::fabs(ta.value - b[j].value) <= epsilon) {
        out.push_back({ta.pos, b[j].pos});
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const JoinPairWire& x, const JoinPairWire& y) {
              return x.left_pos != y.left_pos ? x.left_pos < y.left_pos
                                              : x.right_pos < y.right_pos;
            });
  return out;
}

}  // namespace pdc::server
