#include "server/wire.h"

namespace pdc::server {
namespace {

template <typename Writer>
void put_interval(Writer& w, const ValueInterval& q) {
  w.put(q.lo);
  w.put(q.hi);
  w.template put<std::uint8_t>(q.lo_inclusive ? 1 : 0);
  w.template put<std::uint8_t>(q.hi_inclusive ? 1 : 0);
}

Status get_interval(SerialReader& r, ValueInterval& q) {
  std::uint8_t lo_inc = 0;
  std::uint8_t hi_inc = 0;
  PDC_RETURN_IF_ERROR(r.get(q.lo));
  PDC_RETURN_IF_ERROR(r.get(q.hi));
  PDC_RETURN_IF_ERROR(r.get(lo_inc));
  PDC_RETURN_IF_ERROR(r.get(hi_inc));
  q.lo_inclusive = lo_inc != 0;
  q.hi_inclusive = hi_inc != 0;
  return Status::Ok();
}

template <typename Writer>
void put_status(Writer& w, const Status& s) {
  w.put(static_cast<std::uint8_t>(s.code()));
  w.put_string(s.message());
}

Status get_status(SerialReader& r, Status& out) {
  std::uint8_t code = 0;
  std::string message;
  PDC_RETURN_IF_ERROR(r.get(code));
  PDC_RETURN_IF_ERROR(r.get_string(message));
  if (code > static_cast<std::uint8_t>(StatusCode::kOverloaded)) {
    return Status::Corruption("status code invalid");
  }
  out = code == 0 ? Status::Ok()
                  : Status(static_cast<StatusCode>(code), std::move(message));
  return Status::Ok();
}

template <typename Writer>
void put_ledger(Writer& w, const LedgerSummary& l) {
  w.put(l.io_seconds);
  w.put(l.cpu_seconds);
  w.put(l.bytes_read);
  w.put(l.read_ops);
  w.put(l.scan_seconds);
  w.put(l.decode_seconds);
  w.put(l.merge_seconds);
}

Status get_ledger(SerialReader& r, LedgerSummary& l) {
  PDC_RETURN_IF_ERROR(r.get(l.io_seconds));
  PDC_RETURN_IF_ERROR(r.get(l.cpu_seconds));
  PDC_RETURN_IF_ERROR(r.get(l.bytes_read));
  PDC_RETURN_IF_ERROR(r.get(l.read_ops));
  PDC_RETURN_IF_ERROR(r.get(l.scan_seconds));
  PDC_RETURN_IF_ERROR(r.get(l.decode_seconds));
  PDC_RETURN_IF_ERROR(r.get(l.merge_seconds));
  return Status::Ok();
}

template <typename Writer>
void put_extents(Writer& w, const std::vector<Extent1D>& extents) {
  w.template put<std::uint64_t>(extents.size());
  for (const Extent1D& e : extents) {
    w.put(e.offset);
    w.put(e.count);
  }
}

Status get_extents(SerialReader& r, std::vector<Extent1D>& extents) {
  std::uint64_t n = 0;
  PDC_RETURN_IF_ERROR(r.get(n));
  if (n > r.remaining() / (2 * sizeof(std::uint64_t))) {
    return Status::Corruption("extent list length implausible");
  }
  extents.resize(static_cast<std::size_t>(n));
  for (Extent1D& e : extents) {
    PDC_RETURN_IF_ERROR(r.get(e.offset));
    PDC_RETURN_IF_ERROR(r.get(e.count));
  }
  return Status::Ok();
}

}  // namespace

std::string_view strategy_name(Strategy s) noexcept {
  switch (s) {
    case Strategy::kFullScan: return "PDC-F";
    case Strategy::kHistogram: return "PDC-H";
    case Strategy::kHistogramIndex: return "PDC-HI";
    case Strategy::kSortedHistogram: return "PDC-SH";
    case Strategy::kAdaptive: return "PDC-A";
  }
  return "?";
}

std::vector<std::uint8_t> EvalRequest::serialize() const {
  SerialWriter w;
  w.put(static_cast<std::uint8_t>(RequestType::kEvalQuery));
  w.put(static_cast<std::uint8_t>(strategy));
  w.put<std::uint8_t>(need_locations ? 1 : 0);
  w.put(region_constraint.offset);
  w.put(region_constraint.count);
  w.put<std::uint64_t>(terms.size());
  for (const AndTerm& term : terms) {
    w.put(term.driver_replica);
    w.put<std::uint64_t>(term.conjuncts.size());
    for (const Conjunct& c : term.conjuncts) {
      w.put(c.object);
      put_interval(w, c.interval);
    }
  }
  w.put_vector(act_as);
  return w.take();
}

Result<EvalRequest> EvalRequest::Deserialize(SerialReader& r) {
  EvalRequest req;
  std::uint8_t type = 0;
  std::uint8_t strategy = 0;
  std::uint8_t need_locations = 0;
  PDC_RETURN_IF_ERROR(r.get(type));
  if (type != static_cast<std::uint8_t>(RequestType::kEvalQuery)) {
    return Status::Corruption("not an EvalRequest");
  }
  PDC_RETURN_IF_ERROR(r.get(strategy));
  if (strategy > static_cast<std::uint8_t>(Strategy::kAdaptive)) {
    return Status::Corruption("strategy invalid");
  }
  req.strategy = static_cast<Strategy>(strategy);
  PDC_RETURN_IF_ERROR(r.get(need_locations));
  req.need_locations = need_locations != 0;
  PDC_RETURN_IF_ERROR(r.get(req.region_constraint.offset));
  PDC_RETURN_IF_ERROR(r.get(req.region_constraint.count));
  std::uint64_t nterms = 0;
  PDC_RETURN_IF_ERROR(r.get(nterms));
  if (nterms > 1'000'000) {
    return Status::Corruption("term count implausible");
  }
  req.terms.resize(static_cast<std::size_t>(nterms));
  for (AndTerm& term : req.terms) {
    PDC_RETURN_IF_ERROR(r.get(term.driver_replica));
    std::uint64_t nconjuncts = 0;
    PDC_RETURN_IF_ERROR(r.get(nconjuncts));
    if (nconjuncts > 1'000'000) {
      return Status::Corruption("conjunct count implausible");
    }
    term.conjuncts.resize(static_cast<std::size_t>(nconjuncts));
    for (Conjunct& c : term.conjuncts) {
      PDC_RETURN_IF_ERROR(r.get(c.object));
      PDC_RETURN_IF_ERROR(get_interval(r, c.interval));
    }
  }
  PDC_RETURN_IF_ERROR(r.get_vector(req.act_as));
  return req;
}

std::vector<std::uint8_t> EvalResponse::serialize() const {
  // Scatter/gather path: the positions payload (the bulk of a located
  // response) rides as a borrowed span and is copied exactly once, at
  // take().  Bytes are identical to the legacy SerialWriter encoding.
  GatherWriter w;
  put_status(w, status);
  w.put(num_hits);
  w.put<std::uint8_t>(has_positions ? 1 : 0);
  w.put_vector_ref(std::span<const std::uint64_t>(positions));
  put_extents(w, sorted_extents);
  w.put(replica_id);
  put_ledger(w, ledger);
  // v2 trailer, emitted only when non-zero (PDC-A): fixed-strategy
  // responses stay byte-identical to v1, so modeled transfer cost --
  // and therefore simulated time -- is unchanged for them.  The v3
  // trailer (write-path staleness) likewise only appears once an object
  // has actually been written (max_data_epoch > 1 or a stale fallback
  // happened), and forces the v2 trailer out so field order is fixed.
  const bool v3 = (regions_stale | max_data_epoch) != 0;
  if (v3 || (regions_scanned | regions_indexed | regions_allhit) != 0) {
    w.put(regions_scanned);
    w.put(regions_indexed);
    w.put(regions_allhit);
  }
  if (v3) {
    w.put(regions_stale);
    w.put(max_data_epoch);
  }
  return w.take();
}

Result<EvalResponse> EvalResponse::Deserialize(SerialReader& r) {
  EvalResponse resp;
  PDC_RETURN_IF_ERROR(get_status(r, resp.status));
  PDC_RETURN_IF_ERROR(r.get(resp.num_hits));
  std::uint8_t has_positions = 0;
  PDC_RETURN_IF_ERROR(r.get(has_positions));
  resp.has_positions = has_positions != 0;
  PDC_RETURN_IF_ERROR(r.get_vector(resp.positions));
  PDC_RETURN_IF_ERROR(get_extents(r, resp.sorted_extents));
  PDC_RETURN_IF_ERROR(r.get(resp.replica_id));
  PDC_RETURN_IF_ERROR(get_ledger(r, resp.ledger));
  // Version-tolerant trailers: absent in v1 payloads (counts default to
  // zero); if any trailer bytes are present, the whole v2 block must
  // parse, and any bytes beyond it must form a whole v3 block.
  if (r.remaining() > 0) {
    PDC_RETURN_IF_ERROR(r.get(resp.regions_scanned));
    PDC_RETURN_IF_ERROR(r.get(resp.regions_indexed));
    PDC_RETURN_IF_ERROR(r.get(resp.regions_allhit));
  }
  if (r.remaining() > 0) {
    PDC_RETURN_IF_ERROR(r.get(resp.regions_stale));
    PDC_RETURN_IF_ERROR(r.get(resp.max_data_epoch));
  }
  return resp;
}

std::vector<std::uint8_t> GetDataRequest::serialize() const {
  SerialWriter w;
  w.put(static_cast<std::uint8_t>(RequestType::kGetData));
  w.put(object);
  w.put<std::uint8_t>(from_replica ? 1 : 0);
  w.put_vector(positions);
  put_extents(w, extents);
  return w.take();
}

Result<GetDataRequest> GetDataRequest::Deserialize(SerialReader& r) {
  GetDataRequest req;
  std::uint8_t type = 0;
  std::uint8_t from_replica = 0;
  PDC_RETURN_IF_ERROR(r.get(type));
  if (type != static_cast<std::uint8_t>(RequestType::kGetData)) {
    return Status::Corruption("not a GetDataRequest");
  }
  PDC_RETURN_IF_ERROR(r.get(req.object));
  PDC_RETURN_IF_ERROR(r.get(from_replica));
  req.from_replica = from_replica != 0;
  PDC_RETURN_IF_ERROR(r.get_vector(req.positions));
  PDC_RETURN_IF_ERROR(get_extents(r, req.extents));
  return req;
}

std::vector<std::uint8_t> GetDataResponse::serialize() const {
  GatherWriter w;
  put_status(w, status);
  if (value_parts.empty()) {
    w.put_vector_ref(std::span<const std::uint8_t>(values));
  } else {
    // Zero-copy form: same wire bytes as put_vector(values) — one u64
    // total length, then the concatenated parts (pinned by `pins`).
    w.put<std::uint64_t>(values_size());
    for (const auto& part : value_parts) w.put_raw_ref(part);
  }
  put_ledger(w, ledger);
  return w.take();
}

Result<GetDataResponse> GetDataResponse::Deserialize(SerialReader& r) {
  GetDataResponse resp;
  PDC_RETURN_IF_ERROR(get_status(r, resp.status));
  PDC_RETURN_IF_ERROR(r.get_vector(resp.values));
  PDC_RETURN_IF_ERROR(get_ledger(r, resp.ledger));
  return resp;
}

std::vector<std::uint8_t> TransferWriteRequest::serialize() const {
  // The bulk payload rides as a borrowed span (single copy at take());
  // everything before it is fixed-size header.
  GatherWriter w;
  w.put(static_cast<std::uint8_t>(RequestType::kTransferWrite));
  w.put(object);
  w.put(static_cast<std::uint8_t>(kind));
  w.put(extent.offset);
  w.put(extent.count);
  w.put(write_seq);
  w.put_bytes_ref(payload);
  return w.take();
}

Result<TransferWriteRequest> TransferWriteRequest::Deserialize(
    SerialReader& r) {
  TransferWriteRequest req;
  std::uint8_t type = 0;
  std::uint8_t kind = 0;
  PDC_RETURN_IF_ERROR(r.get(type));
  if (type != static_cast<std::uint8_t>(RequestType::kTransferWrite)) {
    return Status::Corruption("not a TransferWriteRequest");
  }
  PDC_RETURN_IF_ERROR(r.get(req.object));
  PDC_RETURN_IF_ERROR(r.get(kind));
  if (kind > static_cast<std::uint8_t>(WriteKind::kOverwrite)) {
    return Status::Corruption("write kind invalid");
  }
  req.kind = static_cast<WriteKind>(kind);
  PDC_RETURN_IF_ERROR(r.get(req.extent.offset));
  PDC_RETURN_IF_ERROR(r.get(req.extent.count));
  PDC_RETURN_IF_ERROR(r.get(req.write_seq));
  PDC_RETURN_IF_ERROR(r.get_vector(req.payload_storage));
  req.payload = req.payload_storage;
  return req;
}

std::vector<std::uint8_t> TransferWriteResponse::serialize() const {
  SerialWriter w;
  put_status(w, status);
  w.put(data_epoch);
  w.put(regions_touched);
  w.put<std::uint8_t>(duplicate ? 1 : 0);
  w.put<std::uint8_t>(compacted ? 1 : 0);
  put_ledger(w, ledger);
  return w.take();
}

Result<TransferWriteResponse> TransferWriteResponse::Deserialize(
    SerialReader& r) {
  TransferWriteResponse resp;
  PDC_RETURN_IF_ERROR(get_status(r, resp.status));
  PDC_RETURN_IF_ERROR(r.get(resp.data_epoch));
  PDC_RETURN_IF_ERROR(r.get(resp.regions_touched));
  std::uint8_t duplicate = 0;
  std::uint8_t compacted = 0;
  PDC_RETURN_IF_ERROR(r.get(duplicate));
  PDC_RETURN_IF_ERROR(r.get(compacted));
  resp.duplicate = duplicate != 0;
  resp.compacted = compacted != 0;
  PDC_RETURN_IF_ERROR(get_ledger(r, resp.ledger));
  return resp;
}

std::string_view join_strategy_name(JoinStrategy s) noexcept {
  switch (s) {
    case JoinStrategy::kZoneShuffle: return "zone";
    case JoinStrategy::kBroadcast: return "broadcast";
  }
  return "?";
}

std::vector<std::uint8_t> JoinEvalRequest::serialize() const {
  SerialWriter w;
  w.put(static_cast<std::uint8_t>(RequestType::kJoinEval));
  w.put(join_id);
  w.put(epoch);
  w.put(static_cast<std::uint8_t>(strategy));
  w.put(static_cast<std::uint8_t>(eval_strategy));
  w.put(object_a);
  w.put(object_b);
  w.put(epsilon);
  w.put(zone_height);
  put_interval(w, filter_a);
  put_interval(w, filter_b);
  w.put_vector(participants);
  w.put_vector(act_as);
  return w.take();
}

Result<JoinEvalRequest> JoinEvalRequest::Deserialize(SerialReader& r) {
  JoinEvalRequest req;
  std::uint8_t type = 0;
  std::uint8_t strategy = 0;
  std::uint8_t eval_strategy = 0;
  PDC_RETURN_IF_ERROR(r.get(type));
  if (type != static_cast<std::uint8_t>(RequestType::kJoinEval)) {
    return Status::Corruption("not a JoinEvalRequest");
  }
  PDC_RETURN_IF_ERROR(r.get(req.join_id));
  PDC_RETURN_IF_ERROR(r.get(req.epoch));
  PDC_RETURN_IF_ERROR(r.get(strategy));
  if (strategy > static_cast<std::uint8_t>(JoinStrategy::kBroadcast)) {
    return Status::Corruption("join strategy invalid");
  }
  req.strategy = static_cast<JoinStrategy>(strategy);
  PDC_RETURN_IF_ERROR(r.get(eval_strategy));
  if (eval_strategy > static_cast<std::uint8_t>(Strategy::kAdaptive)) {
    return Status::Corruption("strategy invalid");
  }
  req.eval_strategy = static_cast<Strategy>(eval_strategy);
  PDC_RETURN_IF_ERROR(r.get(req.object_a));
  PDC_RETURN_IF_ERROR(r.get(req.object_b));
  PDC_RETURN_IF_ERROR(r.get(req.epsilon));
  PDC_RETURN_IF_ERROR(r.get(req.zone_height));
  PDC_RETURN_IF_ERROR(get_interval(r, req.filter_a));
  PDC_RETURN_IF_ERROR(get_interval(r, req.filter_b));
  PDC_RETURN_IF_ERROR(r.get_vector(req.participants));
  PDC_RETURN_IF_ERROR(r.get_vector(req.act_as));
  if (req.participants.empty()) {
    return Status::Corruption("join epoch without participants");
  }
  return req;
}

std::vector<std::uint8_t> JoinEvalResponse::serialize() const {
  // The per-zone pair vectors are the bulk of a join response; they ride
  // as borrowed spans and are copied exactly once, at take().
  GatherWriter w;
  put_status(w, status);
  w.put<std::uint64_t>(zones.size());
  for (const ZonePairs& z : zones) {
    w.put(z.zone);
    w.put_vector_ref(std::span<const JoinPairWire>(z.pairs));
  }
  put_ledger(w, ledger);
  w.put(shuffle_bytes_sent);
  w.put(shuffle_msgs_sent);
  w.put(shuffle_retransmits);
  w.put(shuffle_rounds);
  w.put(candidates_a);
  w.put(candidates_b);
  return w.take();
}

Result<JoinEvalResponse> JoinEvalResponse::Deserialize(SerialReader& r) {
  JoinEvalResponse resp;
  PDC_RETURN_IF_ERROR(get_status(r, resp.status));
  std::uint64_t nzones = 0;
  PDC_RETURN_IF_ERROR(r.get(nzones));
  if (nzones > r.remaining() / sizeof(std::int64_t)) {
    return Status::Corruption("zone count implausible");
  }
  resp.zones.resize(static_cast<std::size_t>(nzones));
  for (ZonePairs& z : resp.zones) {
    PDC_RETURN_IF_ERROR(r.get(z.zone));
    PDC_RETURN_IF_ERROR(r.get_vector(z.pairs));
  }
  PDC_RETURN_IF_ERROR(get_ledger(r, resp.ledger));
  PDC_RETURN_IF_ERROR(r.get(resp.shuffle_bytes_sent));
  PDC_RETURN_IF_ERROR(r.get(resp.shuffle_msgs_sent));
  PDC_RETURN_IF_ERROR(r.get(resp.shuffle_retransmits));
  PDC_RETURN_IF_ERROR(r.get(resp.shuffle_rounds));
  PDC_RETURN_IF_ERROR(r.get(resp.candidates_a));
  PDC_RETURN_IF_ERROR(r.get(resp.candidates_b));
  return resp;
}

std::vector<std::uint8_t> MetricsRequest::serialize() const {
  SerialWriter w;
  w.put(static_cast<std::uint8_t>(RequestType::kMetrics));
  return w.take();
}

Result<MetricsRequest> MetricsRequest::Deserialize(SerialReader& r) {
  std::uint8_t type = 0;
  PDC_RETURN_IF_ERROR(r.get(type));
  if (type != static_cast<std::uint8_t>(RequestType::kMetrics)) {
    return Status::Corruption("not a MetricsRequest");
  }
  return MetricsRequest{};
}

std::vector<std::uint8_t> MetricsResponse::serialize() const {
  SerialWriter w;
  put_status(w, status);
  obs::serialize_snapshot(w, snapshot);
  return w.take();
}

Result<MetricsResponse> MetricsResponse::Deserialize(SerialReader& r) {
  MetricsResponse resp;
  PDC_RETURN_IF_ERROR(get_status(r, resp.status));
  PDC_RETURN_IF_ERROR(obs::deserialize_snapshot(r, resp.snapshot));
  return resp;
}

namespace {

void put_meta_condition(SerialWriter& w, const meta::MetaCondition& c) {
  w.put_string(c.attribute);
  w.put(static_cast<std::uint8_t>(c.op));
  w.put(static_cast<std::uint8_t>(c.kind));
  meta::put_meta_value(w, c.value);
}

Status get_meta_condition(SerialReader& r, meta::MetaCondition& c) {
  std::uint8_t op = 0;
  std::uint8_t kind = 0;
  PDC_RETURN_IF_ERROR(r.get_string(c.attribute));
  PDC_RETURN_IF_ERROR(r.get(op));
  PDC_RETURN_IF_ERROR(r.get(kind));
  if (op > static_cast<std::uint8_t>(QueryOp::kEQ)) {
    return Status::Corruption("meta condition op invalid");
  }
  if (kind > static_cast<std::uint8_t>(meta::MetaMatchKind::kSuffix)) {
    return Status::Corruption("meta condition kind invalid");
  }
  c.op = static_cast<QueryOp>(op);
  c.kind = static_cast<meta::MetaMatchKind>(kind);
  return meta::get_meta_value(r, c.value);
}

}  // namespace

std::vector<std::uint8_t> MetaQueryRequest::serialize() const {
  SerialWriter w;
  w.put(static_cast<std::uint8_t>(RequestType::kMetaQuery));
  w.put<std::uint64_t>(conditions.size());
  for (std::size_t i = 0; i < conditions.size(); ++i) {
    put_meta_condition(w, conditions[i]);
    w.put_vector(i < vnodes.size() ? vnodes[i]
                                   : std::vector<std::uint32_t>{});
  }
  return w.take();
}

Result<MetaQueryRequest> MetaQueryRequest::Deserialize(SerialReader& r) {
  std::uint8_t type = 0;
  PDC_RETURN_IF_ERROR(r.get(type));
  if (type != static_cast<std::uint8_t>(RequestType::kMetaQuery)) {
    return Status::Corruption("not a meta-query request");
  }
  MetaQueryRequest request;
  std::uint64_t n = 0;
  PDC_RETURN_IF_ERROR(r.get(n));
  if (n > r.remaining()) {
    return Status::Corruption("meta condition count implausible");
  }
  request.conditions.resize(static_cast<std::size_t>(n));
  request.vnodes.resize(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < n; ++i) {
    PDC_RETURN_IF_ERROR(get_meta_condition(r, request.conditions[i]));
    PDC_RETURN_IF_ERROR(r.get_vector(request.vnodes[i]));
  }
  if (!r.exhausted()) {
    return Status::Corruption("meta-query request has trailing bytes");
  }
  return request;
}

std::vector<std::uint8_t> MetaQueryResponse::serialize() const {
  SerialWriter w;
  put_status(w, status);
  w.put<std::uint64_t>(postings.size());
  for (const std::vector<ObjectId>& ids : postings) {
    w.put_vector(ids);
  }
  w.put<std::uint64_t>(epochs.size());
  for (const auto& [vnode, epoch] : epochs) {
    w.put(vnode);
    w.put(epoch);
  }
  w.put(probes);
  put_ledger(w, ledger);
  return w.take();
}

Result<MetaQueryResponse> MetaQueryResponse::Deserialize(SerialReader& r) {
  MetaQueryResponse response;
  PDC_RETURN_IF_ERROR(get_status(r, response.status));
  std::uint64_t n = 0;
  PDC_RETURN_IF_ERROR(r.get(n));
  if (n > r.remaining()) {
    return Status::Corruption("meta posting count implausible");
  }
  response.postings.resize(static_cast<std::size_t>(n));
  for (std::vector<ObjectId>& ids : response.postings) {
    PDC_RETURN_IF_ERROR(r.get_vector(ids));
  }
  PDC_RETURN_IF_ERROR(r.get(n));
  if (n > r.remaining() / (sizeof(std::uint32_t) + sizeof(std::uint64_t))) {
    return Status::Corruption("meta epoch count implausible");
  }
  response.epochs.resize(static_cast<std::size_t>(n));
  for (auto& [vnode, epoch] : response.epochs) {
    PDC_RETURN_IF_ERROR(r.get(vnode));
    PDC_RETURN_IF_ERROR(r.get(epoch));
  }
  PDC_RETURN_IF_ERROR(r.get(response.probes));
  PDC_RETURN_IF_ERROR(get_ledger(r, response.ledger));
  if (!r.exhausted()) {
    return Status::Corruption("meta-query response has trailing bytes");
  }
  return response;
}

std::vector<std::uint8_t> MetaUpdateRequest::serialize() const {
  SerialWriter w;
  w.put(static_cast<std::uint8_t>(RequestType::kMetaUpdate));
  w.put(vnode);
  w.put(seq);
  w.put<std::uint64_t>(ops.size());
  for (const MetaUpdateOpWire& op : ops) {
    w.put(op.object);
    w.put_string(op.attribute);
    w.put<std::uint8_t>(op.has_old ? 1 : 0);
    if (op.has_old) meta::put_meta_value(w, op.old_value);
    meta::put_meta_value(w, op.new_value);
  }
  return w.take();
}

Result<MetaUpdateRequest> MetaUpdateRequest::Deserialize(SerialReader& r) {
  std::uint8_t type = 0;
  PDC_RETURN_IF_ERROR(r.get(type));
  if (type != static_cast<std::uint8_t>(RequestType::kMetaUpdate)) {
    return Status::Corruption("not a meta-update request");
  }
  MetaUpdateRequest request;
  PDC_RETURN_IF_ERROR(r.get(request.vnode));
  PDC_RETURN_IF_ERROR(r.get(request.seq));
  std::uint64_t n = 0;
  PDC_RETURN_IF_ERROR(r.get(n));
  if (n > r.remaining()) {
    return Status::Corruption("meta update op count implausible");
  }
  request.ops.resize(static_cast<std::size_t>(n));
  for (MetaUpdateOpWire& op : request.ops) {
    std::uint8_t has_old = 0;
    PDC_RETURN_IF_ERROR(r.get(op.object));
    PDC_RETURN_IF_ERROR(r.get_string(op.attribute));
    PDC_RETURN_IF_ERROR(r.get(has_old));
    if (has_old > 1) {
      return Status::Corruption("meta update has_old flag invalid");
    }
    op.has_old = has_old != 0;
    if (op.has_old) {
      PDC_RETURN_IF_ERROR(meta::get_meta_value(r, op.old_value));
    }
    PDC_RETURN_IF_ERROR(meta::get_meta_value(r, op.new_value));
  }
  if (!r.exhausted()) {
    return Status::Corruption("meta-update request has trailing bytes");
  }
  return request;
}

std::vector<std::uint8_t> MetaUpdateResponse::serialize() const {
  SerialWriter w;
  put_status(w, status);
  w.put(epoch);
  w.put<std::uint8_t>(duplicate ? 1 : 0);
  put_ledger(w, ledger);
  return w.take();
}

Result<MetaUpdateResponse> MetaUpdateResponse::Deserialize(SerialReader& r) {
  MetaUpdateResponse response;
  PDC_RETURN_IF_ERROR(get_status(r, response.status));
  PDC_RETURN_IF_ERROR(r.get(response.epoch));
  std::uint8_t duplicate = 0;
  PDC_RETURN_IF_ERROR(r.get(duplicate));
  if (duplicate > 1) {
    return Status::Corruption("meta update duplicate flag invalid");
  }
  response.duplicate = duplicate != 0;
  PDC_RETURN_IF_ERROR(get_ledger(r, response.ledger));
  if (!r.exhausted()) {
    return Status::Corruption("meta-update response has trailing bytes");
  }
  return response;
}

Result<RequestType> peek_request_type(std::span<const std::uint8_t> payload) {
  if (payload.empty()) {
    return Status::Corruption("empty request payload");
  }
  const std::uint8_t type = payload[0];
  if (type != static_cast<std::uint8_t>(RequestType::kEvalQuery) &&
      type != static_cast<std::uint8_t>(RequestType::kGetData) &&
      type != static_cast<std::uint8_t>(RequestType::kMetrics) &&
      type != static_cast<std::uint8_t>(RequestType::kTransferWrite) &&
      type != static_cast<std::uint8_t>(RequestType::kJoinEval) &&
      type != static_cast<std::uint8_t>(RequestType::kExchange) &&
      type != static_cast<std::uint8_t>(RequestType::kMetaQuery) &&
      type != static_cast<std::uint8_t>(RequestType::kMetaUpdate)) {
    return Status::Corruption("unknown request type");
  }
  return static_cast<RequestType>(type);
}

}  // namespace pdc::server
