// One PDC server's query evaluation engine (paper §III-C, §III-D).
//
// A QueryServer owns the regions assigned to it (round-robin by region
// index), a region data cache, and evaluates queries through the
// composable RegionPipeline (region_pipeline.h): every strategy is an
// operator configuration over the same Source -> Pruner -> AccessPath ->
// Predicate -> Collector stages:
//   PDC-F  — fetch every assigned region (through the cache) and scan;
//   PDC-H  — histogram min/max pruning, fetch+scan only surviving regions,
//            all-hit regions short-circuit the scan;
//   PDC-HI — histogram pruning, then the region's WAH bitmap index: definite
//            hits cost no data read, boundary-bin candidates are checked via
//            aggregated point reads (the region data is NOT cached — the
//            reason get-data is slower with an index, Fig. 3/4);
//   PDC-SH — evaluate the driver condition on the sorted replica: interior
//            regions are all-hits, boundary regions are binary-searched, and
//            original positions come from one contiguous permutation read;
//   PDC-A  — adaptive: pick scan vs. index vs. all-hit PER REGION from the
//            region histogram's estimated selectivity (classify_region),
//            reporting the choice tally in the response.
//
// Conjuncts after the driver are evaluated only at the already-selected
// locations (paper's AND short-circuit), with per-region pruning.
// All expensive actions charge a CostLedger; the response carries the
// ledger summary so the client can compute max-over-servers elapsed time.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "common/cost_model.h"
#include "common/exec_pool.h"
#include "metadata/meta_shard.h"
#include "obj/object_store.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pfs/read_aggregator.h"
#include "rpc/exchange.h"
#include "server/region_cache.h"
#include "server/region_pipeline.h"
#include "server/wire.h"

namespace pdc::server {

struct ServerOptions {
  ServerId id = 0;
  std::uint32_t num_servers = 1;
  /// Intra-server evaluation pool (shared across servers of a deployment;
  /// must outlive the server).  Null = serial region loops.  The region
  /// loops submit one task per region and join; per-task CostLedgers are
  /// combined with CostLedger::merge_parallel so simulated time reports
  /// max(critical task, work/threads) instead of sum-of-regions.
  exec::ThreadPool* pool = nullptr;
  /// Memory cap for cached region data (paper: 64 GB per server).
  std::uint64_t cache_capacity_bytes = 1ull << 30;
  /// Memory cap for cached serialized index bins.  0 (the default) derives
  /// the historical `cache_capacity_bytes / 4`: bins are far smaller than
  /// region data, a quarter of the data budget keeps every hot bin
  /// resident without competing with region caching.
  std::uint64_t index_cache_capacity_bytes = 0;
  /// Point-read coalescing for candidate checks / scattered get-data.
  pfs::AggregationPolicy aggregation;
  /// Tighter coalescing for bitmap-bin reads: bins from different regions
  /// must not be bridged by reading the unneeded bins between them.
  pfs::AggregationPolicy index_aggregation{.max_gap_bytes = 2048,
                                           .max_run_bytes = 64ull << 20};
  /// If a conjunct needs more than this fraction of a region's elements,
  /// fetch the whole region (and cache it) instead of point reads.  Also
  /// PDC-A's scan-vs-index crossover (see AdaptiveKnobs).
  double dense_read_threshold = 0.25;
  /// Deployment metrics registry (null = unmetered).  The server registers
  /// "server<id>.eval_requests" / ".getdata_requests" / ".bytes_read" /
  /// ".read_ops" counters and cache occupancy gauges, and answers the
  /// kMetrics RPC with a whole-registry snapshot.  Must outlive the server.
  obs::MetricsRegistry* metrics = nullptr;
  /// Write path (kTransferWrite).  Null = read-only deployment: writes are
  /// rejected with FailedPrecondition.  When set it must reference the
  /// same store as the read path.
  obj::ObjectStore* mutable_store = nullptr;
  /// Fold a region's delta-WAH sidecar back into the base index (full
  /// rebuild) once it reaches this many entries.  0 disables compaction.
  std::uint64_t compact_threshold = 64;
  /// False: writes leave bitmap index and sorted replica stale (scan
  /// fallback / planner skip) instead of maintaining them incrementally.
  /// Histograms are ALWAYS maintained — pruning soundness is not a knob.
  bool maintain_accelerators = true;
  /// Bulk-rebuild the sorted replica once the source's delta log reaches
  /// this many entries.  0 disables rebuilds.
  std::uint64_t replica_rebuild_threshold = 4096;
  /// This server's endpoint on the exchange lane (server-to-server tuple
  /// shuffle for cross-object joins).  Null = single-server deployments
  /// only: a multi-participant kJoinEval is rejected with
  /// FailedPrecondition.  Must outlive the server.
  rpc::ExchangePort* exchange = nullptr;
  /// This server's metadata partition (distributed metadata service).
  /// Null = metadata-less deployment: kMetaQuery/kMetaUpdate are rejected
  /// with FailedPrecondition.  Must outlive the server.
  meta::MetaShard* meta_shard = nullptr;
  /// Tuples per exchange batch frame.  Small enough that a corrupted or
  /// dropped frame retransmits cheaply, large enough to amortize envelope
  /// overhead.
  std::uint32_t exchange_batch_tuples = 512;
};

class QueryServer {
 public:
  QueryServer(const obj::ObjectStore& store, ServerOptions options)
      : store_(store),
        options_(options),
        actor_("server" + std::to_string(options.id)),
        cache_(options.cache_capacity_bytes),
        index_cache_(options.index_cache_capacity_bytes != 0
                         ? options.index_cache_capacity_bytes
                         : options.cache_capacity_bytes / 4),
        pipeline_(RegionPipeline::Env{
            &store_, options_.pool, options_.id, options_.num_servers,
            options_.aggregation, options_.index_aggregation,
            options_.dense_read_threshold, &cache_, &index_cache_, &actor_}) {
    register_metrics();
  }

  /// RPC entry point: dispatch on request type, return serialized response.
  /// An enabled `trace` (the runtime's "server.handle" context) makes the
  /// evaluation emit per-phase and per-region spans into it.
  std::vector<std::uint8_t> handle(std::span<const std::uint8_t> payload,
                                   const obs::TraceContext& trace = {});

  EvalResponse eval(const EvalRequest& request,
                    const obs::TraceContext& trace = {});
  GetDataResponse get_data(const GetDataRequest& request,
                           const obs::TraceContext& trace = {});
  /// kTransferWrite: append/overwrite one object's elements with
  /// incremental accelerator maintenance (delta-WAH sidecar, histogram
  /// merge, sorted-replica delta log) and threshold-driven compaction /
  /// replica rebuild.  Exactly-once via the request's write_seq.
  TransferWriteResponse transfer_write(const TransferWriteRequest& request,
                                       const obs::TraceContext& trace = {});
  /// kMetrics RPC: snapshot of the deployment registry (error status when
  /// the server was built without one).
  [[nodiscard]] MetricsResponse metrics_snapshot() const;
  /// kJoinEval: one epoch of a cross-object zone join — produce candidate
  /// tuples for this server's identities, shuffle them over the exchange
  /// lane per the request's strategy, sort-merge join the owned zones.
  /// Blocks (bounded by the exchange deadline) until every other
  /// participant's stream arrived; kUnavailable on expiry.  Implemented in
  /// join_eval.cc.
  JoinEvalResponse join_eval(const JoinEvalRequest& request,
                             const obs::TraceContext& trace = {});
  /// kMetaQuery: evaluate metadata conjuncts over this server's vnode
  /// partition (FailedPrecondition without a shard, or when a listed vnode
  /// is not replicated here — never a silently truncated posting list).
  MetaQueryResponse meta_query(const MetaQueryRequest& request,
                               const obs::TraceContext& trace = {});
  /// kMetaUpdate: apply one replicated attribute-update batch exactly once
  /// (per-vnode seq dedup), bumping the vnode epoch.
  MetaUpdateResponse meta_update(const MetaUpdateRequest& request,
                                 const obs::TraceContext& trace = {});

  [[nodiscard]] const RegionCache& cache() const noexcept { return cache_; }
  [[nodiscard]] ServerId id() const noexcept { return options_.id; }

 private:
  /// Evaluate one AND-term while acting as server `identity` (normally our
  /// own id; a dead server's id in degraded mode); appends that identity's
  /// matching original-space positions (ascending) and, for sorted
  /// drivers, replica-space extents.
  /// `regions_evaluated` accumulates the number of driver regions iterated
  /// (one "region" span each when traced) and `counts` the per-region
  /// access-path choices, for the response/span accounting.
  Status eval_term(const AndTerm& term, const EvalRequest& request,
                   ServerId identity, CostLedger& ledger,
                   std::vector<std::uint64_t>& positions,
                   std::vector<Extent1D>& sorted_extents,
                   std::uint64_t& regions_evaluated,
                   RegionChoiceCounts& counts, const obs::TraceContext& trace);

  /// Values at ascending positions, cache-aware, into `out`.
  Status gather_values(const obj::ObjectDescriptor& object,
                       std::span<const std::uint64_t> positions,
                       std::span<std::uint8_t> out, CostLedger& ledger,
                       const obs::TraceContext& trace = {});

  /// Join candidate production: evaluate `filter` on `object` for every
  /// identity (pipeline run with locations), gather the matching values and
  /// append finite ones as (zone, value, pos) tuples.  Non-finite values
  /// are skipped — they can never satisfy |va - vb| <= eps, exactly as in
  /// the element-wise oracle.
  Status produce_join_candidates(ObjectId object_id,
                                 const ValueInterval& filter,
                                 Strategy eval_strategy,
                                 const std::vector<ServerId>& identities,
                                 double zone_height, CostLedger& ledger,
                                 std::vector<rpc::JoinTuple>& out,
                                 const obs::TraceContext& trace);

  /// Register this server's counters and cache gauges (no-op when the
  /// deployment is unmetered).
  void register_metrics();

  [[nodiscard]] pfs::ReadContext read_ctx(
      CostLedger& ledger, const obs::TraceContext& trace = {}) const {
    return {&ledger, options_.num_servers, trace};
  }

  const obj::ObjectStore& store_;
  ServerOptions options_;
  std::string actor_;  ///< span actor label ("server<id>")
  // Deployment metric instruments (null when unmetered); addresses are
  // stable for the registry's lifetime, so the hot path is one atomic add.
  obs::Counter* eval_requests_metric_ = nullptr;
  obs::Counter* getdata_requests_metric_ = nullptr;
  obs::Counter* bytes_read_metric_ = nullptr;
  obs::Counter* read_ops_metric_ = nullptr;
  obs::LatencyHistogram* eval_latency_metric_ = nullptr;
  obs::Counter* write_requests_metric_ = nullptr;
  obs::Counter* write_bytes_metric_ = nullptr;
  obs::Counter* compactions_metric_ = nullptr;
  obs::Counter* replica_rebuilds_metric_ = nullptr;
  obs::Counter* meta_query_requests_metric_ = nullptr;
  obs::Counter* meta_update_requests_metric_ = nullptr;
  obs::Counter* meta_probes_metric_ = nullptr;
  RegionCache cache_;
  /// Serialized index bins stay resident once read (FastBit also caches
  /// bitmaps); keyed by (object, region*2048+bin).
  RegionCache index_cache_;
  /// Serialized kJoinEval responses by (join_id, epoch), bounded FIFO.  A
  /// bus-duplicated or client-retried join request for an epoch this server
  /// already answered must get the SAME bytes without re-running the
  /// shuffle (whose exchange state was dropped with the first answer).
  std::mutex join_cache_mu_;
  std::vector<std::pair<std::pair<std::uint64_t, std::uint32_t>,
                        std::vector<std::uint8_t>>>
      join_cache_;
  /// The composable evaluation engine; holds references to the caches and
  /// options above (declared last so they are initialized first).
  RegionPipeline pipeline_;
};

}  // namespace pdc::server
