// One PDC server's query evaluation engine (paper §III-C, §III-D).
//
// A QueryServer owns the regions assigned to it (round-robin by region
// index), a region data cache, and implements the four evaluation
// strategies:
//   PDC-F  — fetch every assigned region (through the cache) and scan;
//   PDC-H  — histogram min/max pruning, fetch+scan only surviving regions,
//            all-hit regions short-circuit the scan;
//   PDC-HI — histogram pruning, then the region's WAH bitmap index: definite
//            hits cost no data read, boundary-bin candidates are checked via
//            aggregated point reads (the region data is NOT cached — the
//            reason get-data is slower with an index, Fig. 3/4);
//   PDC-SH — evaluate the driver condition on the sorted replica: interior
//            regions are all-hits, boundary regions are binary-searched, and
//            original positions come from one contiguous permutation read.
//
// Conjuncts after the driver are evaluated only at the already-selected
// locations (paper's AND short-circuit), with per-region pruning.
// All expensive actions charge a CostLedger; the response carries the
// ledger summary so the client can compute max-over-servers elapsed time.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/cost_model.h"
#include "common/exec_pool.h"
#include "obj/object_store.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pfs/read_aggregator.h"
#include "server/region_cache.h"
#include "server/wire.h"

namespace pdc::server {

struct ServerOptions {
  ServerId id = 0;
  std::uint32_t num_servers = 1;
  /// Intra-server evaluation pool (shared across servers of a deployment;
  /// must outlive the server).  Null = serial region loops.  The region
  /// loops submit one task per region and join; per-task CostLedgers are
  /// combined with CostLedger::merge_parallel so simulated time reports
  /// max(critical task, work/threads) instead of sum-of-regions.
  exec::ThreadPool* pool = nullptr;
  /// Memory cap for cached region data (paper: 64 GB per server).
  std::uint64_t cache_capacity_bytes = 1ull << 30;
  /// Point-read coalescing for candidate checks / scattered get-data.
  pfs::AggregationPolicy aggregation;
  /// Tighter coalescing for bitmap-bin reads: bins from different regions
  /// must not be bridged by reading the unneeded bins between them.
  pfs::AggregationPolicy index_aggregation{.max_gap_bytes = 2048,
                                           .max_run_bytes = 64ull << 20};
  /// If a conjunct needs more than this fraction of a region's elements,
  /// fetch the whole region (and cache it) instead of point reads.
  double dense_read_threshold = 0.25;
  /// Deployment metrics registry (null = unmetered).  The server registers
  /// "server<id>.eval_requests" / ".getdata_requests" / ".bytes_read" /
  /// ".read_ops" counters and cache occupancy gauges, and answers the
  /// kMetrics RPC with a whole-registry snapshot.  Must outlive the server.
  obs::MetricsRegistry* metrics = nullptr;
};

class QueryServer {
 public:
  QueryServer(const obj::ObjectStore& store, ServerOptions options)
      : store_(store),
        options_(options),
        actor_("server" + std::to_string(options.id)),
        cache_(options.cache_capacity_bytes),
        index_cache_(options.cache_capacity_bytes / 4) {
    register_metrics();
  }

  /// RPC entry point: dispatch on request type, return serialized response.
  /// An enabled `trace` (the runtime's "server.handle" context) makes the
  /// evaluation emit per-phase and per-region spans into it.
  std::vector<std::uint8_t> handle(std::span<const std::uint8_t> payload,
                                   const obs::TraceContext& trace = {});

  EvalResponse eval(const EvalRequest& request,
                    const obs::TraceContext& trace = {});
  GetDataResponse get_data(const GetDataRequest& request,
                           const obs::TraceContext& trace = {});
  /// kMetrics RPC: snapshot of the deployment registry (error status when
  /// the server was built without one).
  [[nodiscard]] MetricsResponse metrics_snapshot() const;

  [[nodiscard]] const RegionCache& cache() const noexcept { return cache_; }
  [[nodiscard]] ServerId id() const noexcept { return options_.id; }

 private:
  /// Evaluate one AND-term while acting as server `identity` (normally our
  /// own id; a dead server's id in degraded mode); appends that identity's
  /// matching original-space positions (ascending) and, for sorted
  /// drivers, replica-space extents.
  /// `regions_evaluated` accumulates the number of driver regions iterated
  /// (one "region" span each when traced) for the response/span accounting.
  Status eval_term(const AndTerm& term, const EvalRequest& request,
                   ServerId identity, CostLedger& ledger,
                   std::vector<std::uint64_t>& positions,
                   std::vector<Extent1D>& sorted_extents,
                   std::uint64_t& regions_evaluated,
                   const obs::TraceContext& trace);

  // Driver evaluators (first conjunct, region-parallel over the regions
  // assigned to `identity`).
  Status eval_driver_scan(const obj::ObjectDescriptor& object,
                          const ValueInterval& interval, Extent1D constraint,
                          bool prune, ServerId identity, CostLedger& ledger,
                          std::vector<std::uint64_t>& positions,
                          const obs::TraceContext& trace);
  Status eval_driver_index(const obj::ObjectDescriptor& object,
                           const ValueInterval& interval, Extent1D constraint,
                           ServerId identity, CostLedger& ledger,
                           std::vector<std::uint64_t>& positions,
                           const obs::TraceContext& trace);
  Status eval_driver_sorted(const obj::ObjectDescriptor& replica,
                            const ValueInterval& interval, ServerId identity,
                            CostLedger& ledger, std::vector<Extent1D>& extents,
                            const obs::TraceContext& trace);

  /// Restrict `positions` (ascending, original space) to those whose value
  /// in `object` satisfies `interval`.
  Status restrict_positions(const obj::ObjectDescriptor& object,
                            const ValueInterval& interval, bool full_scan_mode,
                            CostLedger& ledger,
                            std::vector<std::uint64_t>& positions,
                            const obs::TraceContext& trace);

  /// Region bytes through the cache; `cacheable=false` bypasses insertion.
  Result<RegionCache::Buffer> fetch_region(const obj::ObjectDescriptor& object,
                                           RegionIndex region,
                                           CostLedger& ledger, bool cacheable,
                                           const obs::TraceContext& trace = {});

  /// Values at ascending positions, cache-aware, into `out`.
  Status gather_values(const obj::ObjectDescriptor& object,
                       std::span<const std::uint64_t> positions,
                       std::span<std::uint8_t> out, CostLedger& ledger,
                       const obs::TraceContext& trace = {});

  /// Register this server's counters and cache gauges (no-op when the
  /// deployment is unmetered).
  void register_metrics();

  /// Annotate a per-region (or per-bin / per-group) span with the executing
  /// pool worker and the task ledger's cost split; no-op when untraced.
  static void annotate_task_span(obs::ScopedSpan& span,
                                 const CostLedger& task_ledger);

  [[nodiscard]] pfs::ReadContext read_ctx(
      CostLedger& ledger, const obs::TraceContext& trace = {}) const {
    return {&ledger, options_.num_servers, trace};
  }

  /// Modeled cores per server for parallel cost accounting.
  [[nodiscard]] std::uint32_t eval_threads() const noexcept {
    return options_.pool != nullptr ? options_.pool->size() : 1;
  }

  const obj::ObjectStore& store_;
  ServerOptions options_;
  std::string actor_;  ///< span actor label ("server<id>")
  // Deployment metric instruments (null when unmetered); addresses are
  // stable for the registry's lifetime, so the hot path is one atomic add.
  obs::Counter* eval_requests_metric_ = nullptr;
  obs::Counter* getdata_requests_metric_ = nullptr;
  obs::Counter* bytes_read_metric_ = nullptr;
  obs::Counter* read_ops_metric_ = nullptr;
  obs::LatencyHistogram* eval_latency_metric_ = nullptr;
  RegionCache cache_;
  /// Serialized index bins stay resident once read (FastBit also caches
  /// bitmaps); keyed by (object, region*2048+bin).
  RegionCache index_cache_;
};

}  // namespace pdc::server
