// Zone cross-match primitives for the epsilon join (Nieto-Santisteban et
// al., "When Database Systems Meet the Grid", MSR-TR-2005-169: the zones
// algorithm).
//
// The value line is cut into fixed-height zones; a build-side tuple lives
// in the zone its value falls in, and a matched pair is emitted in the
// BUILD tuple's zone — each pair therefore materializes in exactly one
// zone, no cross-zone dedup needed.  A probe-side tuple must reach every
// zone its epsilon ball can touch; with zone_height >= epsilon that band
// spans at most three consecutive zones.  The band bounds are widened by
// two ulps per side so double rounding of `value ± epsilon` can only ever
// OVER-ship a tuple (harmless: the final exact predicate rejects it),
// never under-ship one (which would silently lose a pair).
//
// All functions are pure; determinism at any pool width comes from sorting
// both sides by (value, pos) before the merge and the pair list by
// (left_pos, right_pos) after it, which erases arrival order entirely.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "rpc/exchange.h"
#include "server/wire.h"

namespace pdc::server {

/// Zone id of `value`: floor(value / zone_height), clamped to a range with
/// enough headroom that band expansion (±1 zone) and modulo routing can
/// never overflow.  Clamping only coarsens the partitioning of extreme
/// values — the exact join predicate is unaffected.
[[nodiscard]] std::int64_t zone_of(double value, double zone_height) noexcept;

/// Inclusive zone range [first, last] a probe value's epsilon ball can
/// touch (2-ulp guarded, see file comment).
[[nodiscard]] std::pair<std::int64_t, std::int64_t> zone_band(
    double value, double epsilon, double zone_height) noexcept;

/// Plan-time parameter validation: epsilon must be finite and >= 0,
/// zone_height finite, positive and >= epsilon (the zone-algorithm
/// admissibility rule; NaNs fail every comparison and are rejected here).
[[nodiscard]] Status validate_join_params(double epsilon,
                                          double zone_height) noexcept;

/// Which participant owns zone `zone` (participants must be non-empty).
[[nodiscard]] ServerId zone_owner(std::int64_t zone,
                                  const std::vector<ServerId>& participants)
    noexcept;

/// Sort-merge epsilon join of one zone's tuples: sorts both sides by
/// (value, pos), band-merges with the exact predicate
/// |a.value - b.value| <= epsilon, and returns the pairs sorted by
/// (left_pos, right_pos).  Takes the inputs by value because it sorts them.
[[nodiscard]] std::vector<JoinPairWire> zone_merge_join(
    std::vector<rpc::JoinTuple> a, std::vector<rpc::JoinTuple> b,
    double epsilon);

}  // namespace pdc::server
