// Client <-> server wire protocol for the query service.
//
// The client-side planner normalizes a user query tree into OR-of-AND
// terms, each term's conjuncts ordered by estimated selectivity, and
// broadcasts an EvalRequest to every server.  Servers evaluate their
// assigned regions and reply with an EvalResponse (hit count, optional
// locations, and a cost-ledger summary the client folds into the simulated
// end-to-end time).  GetData requests retrieve the values of a previously
// computed selection.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/cost_model.h"
#include "common/interval.h"
#include "common/serial.h"
#include "common/status.h"
#include "common/types.h"
#include "metadata/meta_store.h"
#include "obs/metrics.h"

namespace pdc::server {

/// Query evaluation strategy (paper §III-D; selected per deployment via the
/// PDC_QUERY_STRATEGY environment variable in the real system).
enum class Strategy : std::uint8_t {
  kFullScan = 0,         ///< PDC-F : read everything, scan everything
  kHistogram,            ///< PDC-H : histogram pruning + scan survivors
  kHistogramIndex,       ///< PDC-HI: histogram pruning + bitmap index
  kSortedHistogram,      ///< PDC-SH: sorted replica + histogram
  kAdaptive,             ///< PDC-A : per-region scan/index/all-hit choice
};

std::string_view strategy_name(Strategy s) noexcept;

enum class RequestType : std::uint8_t {
  kEvalQuery = 1,
  kGetData = 2,
  kMetrics = 3,  ///< scrape the server's live MetricsRegistry snapshot
  kTransferWrite = 4,  ///< region append/overwrite transfer (write path)
  kJoinEval = 5,  ///< cross-object zone join round (produce/shuffle/join)
  /// Server-to-server exchange frame (rpc::ExchangeFrame).  Never arrives
  /// on a server's request mailbox — it travels on the exchange lane — but
  /// shares the type-byte space so peek_request_type classifies it.
  kExchange = 6,
  kMetaQuery = 7,   ///< metadata conjuncts against this server's vnodes
  kMetaUpdate = 8,  ///< replicated metadata attribute update batch
};

/// One conjunct: an interval condition on one object.
struct Conjunct {
  ObjectId object = kInvalidObjectId;
  ValueInterval interval;
};

/// AND of conjuncts; the first conjunct is the *driver* the plan iterates
/// region-wise (most selective first, per global-histogram estimates).
struct AndTerm {
  std::vector<Conjunct> conjuncts;
  /// Sorted replica to evaluate the driver on (kSortedHistogram only).
  ObjectId driver_replica = kInvalidObjectId;
};

/// Compact ledger representation carried in responses.  The stage fields
/// split cpu_seconds by what it was spent on (decode/scan/merge; the
/// remainder is uncategorized) so the client can report per-stage timings.
struct LedgerSummary {
  double io_seconds = 0.0;
  double cpu_seconds = 0.0;
  std::uint64_t bytes_read = 0;
  std::uint64_t read_ops = 0;
  double scan_seconds = 0.0;
  double decode_seconds = 0.0;
  double merge_seconds = 0.0;

  static LedgerSummary from(const CostLedger& ledger) {
    return {ledger.io_seconds(),
            ledger.cpu_seconds(),
            ledger.bytes_read(),
            ledger.read_ops(),
            ledger.stage_seconds(CpuStage::kScan),
            ledger.stage_seconds(CpuStage::kDecode),
            ledger.stage_seconds(CpuStage::kMerge)};
  }
  [[nodiscard]] double elapsed() const noexcept {
    return io_seconds + cpu_seconds;
  }
};

struct EvalRequest {
  Strategy strategy = Strategy::kHistogram;
  bool need_locations = false;
  /// Optional spatial constraint: element extent ({0,0} = whole object).
  Extent1D region_constraint;
  std::vector<AndTerm> terms;  ///< OR of AND-terms
  /// Server identities whose region assignments to evaluate.  Empty means
  /// "your own id" (the fault-free fast path).  In degraded mode the client
  /// re-plans a dead server's share onto a survivor by listing the dead
  /// identity here — region ownership itself never moves.
  std::vector<ServerId> act_as;

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static Result<EvalRequest> Deserialize(SerialReader& r);
};

struct EvalResponse {
  Status status;  ///< server-side evaluation status
  std::uint64_t num_hits = 0;
  bool has_positions = false;
  std::vector<std::uint64_t> positions;  ///< original-space, ascending
  /// kSortedHistogram: contiguous replica-space extents of the hits, used
  /// by get-data to read sorted values sequentially.
  std::vector<Extent1D> sorted_extents;
  ObjectId replica_id = kInvalidObjectId;
  LedgerSummary ledger;
  /// Per-region access-path tally of the driver evaluation.  Only kAdaptive
  /// populates these (fixed strategies leave them zero).  Serialized as an
  /// optional trailer emitted only when non-zero: fixed-strategy payloads
  /// stay byte-identical to v1, and a v1 payload without the trailer
  /// deserializes with all three zero, so mixed versions interoperate.
  std::uint64_t regions_scanned = 0;
  std::uint64_t regions_indexed = 0;
  std::uint64_t regions_allhit = 0;
  /// Write-path staleness observability (v3 trailer, emitted only when
  /// non-zero — read-only deployments stay byte-identical to v2/v1):
  /// regions whose accelerator epoch lagged the data epoch and were
  /// evaluated by scan fallback, plus the highest data epoch this server
  /// saw among the regions it touched (1 on a never-written object).
  std::uint64_t regions_stale = 0;
  std::uint64_t max_data_epoch = 0;

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static Result<EvalResponse> Deserialize(SerialReader& r);
};

struct GetDataRequest {
  ObjectId object = kInvalidObjectId;
  /// True: `extents` (replica element space) identify the data; the server
  /// reads from the replica object directly.  False: `positions`.
  bool from_replica = false;
  std::vector<std::uint64_t> positions;  ///< ascending original positions
  std::vector<Extent1D> extents;         ///< replica-space extents

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static Result<GetDataRequest> Deserialize(SerialReader& r);
};

struct GetDataResponse {
  Status status;
  std::vector<std::uint8_t> values;  ///< raw bytes, request order
  /// Zero-copy alternative to `values`: when non-empty, serialize() emits
  /// these borrowed spans, concatenated in order, as the values payload —
  /// byte-identical encoding (u64 total length + raw bytes), but each bulk
  /// byte is copied exactly once, at wire assembly.  The spans must point
  /// into storage kept alive by `pins` (region-cache entries or staging
  /// read buffers); Deserialize always materializes into `values`.
  std::vector<std::span<const std::uint8_t>> value_parts;
  std::vector<std::shared_ptr<const std::vector<std::uint8_t>>> pins;
  LedgerSummary ledger;

  /// Payload size in bytes, whichever representation is populated.
  [[nodiscard]] std::uint64_t values_size() const noexcept {
    if (value_parts.empty()) return values.size();
    std::uint64_t total = 0;
    for (const auto& part : value_parts) total += part.size();
    return total;
  }

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static Result<GetDataResponse> Deserialize(SerialReader& r);
};

/// What a TransferWriteRequest does to the target object.
enum class WriteKind : std::uint8_t {
  kAppend = 0,     ///< extend the object with `payload` (extent ignored)
  kOverwrite = 1,  ///< replace `extent` (element space) with `payload`
};

/// Region transfer carrying new data into an object (paper: the region
/// transfer API, PDCregion_transfer_start/wait).  Routed to the server
/// owning the first affected region; the payload rides as a borrowed span
/// through GatherWriter so bulk bytes are copied exactly once at wire
/// assembly.
struct TransferWriteRequest {
  ObjectId object = kInvalidObjectId;
  WriteKind kind = WriteKind::kAppend;
  /// Overwrite target in element space (ignored for appends).
  Extent1D extent;
  /// Client-assigned monotone sequence number per object.  Servers apply a
  /// write at most once: a seq at or below the object's high-water mark is
  /// acknowledged as a duplicate without re-applying (exactly-once under
  /// retries, reroutes and bus duplication).
  std::uint64_t write_seq = 0;
  /// Raw element bytes.  serialize() emits `payload` as a borrowed span —
  /// it must stay alive until the serialized buffer is assembled.
  std::span<const std::uint8_t> payload;
  /// Deserialize materializes the payload here and points `payload` at it.
  std::vector<std::uint8_t> payload_storage;

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static Result<TransferWriteRequest> Deserialize(SerialReader& r);
};

struct TransferWriteResponse {
  Status status;
  /// Object data epoch after the write (or current epoch for a duplicate).
  std::uint64_t data_epoch = 0;
  /// Regions whose data changed (appends: created/extended regions).
  std::uint64_t regions_touched = 0;
  /// True when write_seq was at or below the object's high-water mark and
  /// the write was acknowledged without re-applying.
  bool duplicate = false;
  /// True when this write triggered a synchronous delta compaction
  /// (full index rebuild folding the delta sidecar).
  bool compacted = false;
  LedgerSummary ledger;

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static Result<TransferWriteResponse> Deserialize(SerialReader& r);
};

/// How a JoinQuery moves probe-side candidates to the zone owners.
enum class JoinStrategy : std::uint8_t {
  /// Partition by zone: each candidate is shipped only to the server
  /// owning its (band-expanded) zone — O(|B|) cross-server bytes.
  kZoneShuffle = 0,
  /// Trivially-correct baseline: every probe candidate goes to every
  /// participant, which keeps only its owned zones — O(P * |B|) bytes.
  kBroadcast = 1,
};

std::string_view join_strategy_name(JoinStrategy s) noexcept;

/// One epoch of a cross-object epsilon join (paper ROADMAP item 4; zone
/// algorithm after Nieto-Santisteban et al., MSR-TR-2005-169).  Every
/// participant receives the same request, produces candidate tuples for
/// its identities via the local pipeline, shuffles them over the exchange
/// lane, then sort-merge joins the zones it owns.
struct JoinEvalRequest {
  std::uint64_t join_id = 0;
  /// Client-chosen round number; bumped when a round fails so stale
  /// shuffle frames can never leak into the retry.
  std::uint32_t epoch = 1;
  JoinStrategy strategy = JoinStrategy::kZoneShuffle;
  /// Candidate-production strategy for the local pipeline runs.
  Strategy eval_strategy = Strategy::kHistogram;
  ObjectId object_a = kInvalidObjectId;  ///< build side (owns pair zones)
  ObjectId object_b = kInvalidObjectId;  ///< probe side (band-expanded)
  double epsilon = 0.0;
  /// Zone bucket height; must be finite, positive and >= epsilon (the MSR
  /// zone-algorithm admissibility rule), validated at plan time.
  double zone_height = 0.0;
  /// Optional per-side value pre-filters (default: whole line).
  ValueInterval filter_a;
  ValueInterval filter_b;
  /// Physical servers participating in this epoch, ascending.  Zone z is
  /// owned by participants[z mod |participants|]; every participant
  /// expects a complete tuple stream from every other one.
  std::vector<ServerId> participants;
  /// Extra identities this server evaluates (degraded mode), exactly as
  /// in EvalRequest::act_as.
  std::vector<ServerId> act_as;

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static Result<JoinEvalRequest> Deserialize(SerialReader& r);
};

/// One matched (left, right) original-space position pair.
struct JoinPairWire {
  std::uint64_t left_pos = 0;
  std::uint64_t right_pos = 0;
};
static_assert(std::is_trivially_copyable_v<JoinPairWire> &&
              sizeof(JoinPairWire) == 16);

/// All pairs of one owned zone, sorted by (left_pos, right_pos).
struct ZonePairs {
  std::int64_t zone = 0;
  std::vector<JoinPairWire> pairs;
};

struct JoinEvalResponse {
  Status status;
  /// Owned zones ascending; concatenating responses across participants in
  /// zone order yields the deterministic global result.
  std::vector<ZonePairs> zones;
  LedgerSummary ledger;
  // Shuffle observability (MPC communication model): bytes/messages this
  // server sent across the exchange lane (self-destined tuples are local
  // and free), and the number of communication rounds (1 for both
  // strategies here).
  std::uint64_t shuffle_bytes_sent = 0;
  std::uint64_t shuffle_msgs_sent = 0;
  std::uint64_t shuffle_retransmits = 0;
  std::uint64_t shuffle_rounds = 0;
  std::uint64_t candidates_a = 0;  ///< build tuples this server produced
  std::uint64_t candidates_b = 0;  ///< probe tuples this server produced

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static Result<JoinEvalResponse> Deserialize(SerialReader& r);
};

/// Metadata conjuncts for the vnodes this server replicates (distributed
/// metadata service, ROADMAP item 2).  The client router restricts
/// `vnodes[i]` to the owning vnodes of `conditions[i]` that the target
/// server replicates — a fan-out to owners, never a broadcast.
struct MetaQueryRequest {
  std::vector<meta::MetaCondition> conditions;
  /// Per-condition vnode lists, aligned with `conditions`.
  std::vector<std::vector<std::uint32_t>> vnodes;

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static Result<MetaQueryRequest> Deserialize(SerialReader& r);
};

struct MetaQueryResponse {
  Status status;
  /// Per-condition sorted, deduplicated ObjectId posting lists (aligned
  /// with the request's conditions), restricted to the requested vnodes.
  std::vector<std::vector<ObjectId>> postings;
  /// Epoch of every consulted vnode (staleness observability; bumped by
  /// each applied kMetaUpdate batch).
  std::vector<std::pair<std::uint32_t, std::uint64_t>> epochs;
  std::uint64_t probes = 0;  ///< trie/map nodes visited server-side
  LedgerSummary ledger;

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static Result<MetaQueryResponse> Deserialize(SerialReader& r);
};

/// One attribute assignment inside a replicated update batch.  The old
/// value (when present) is removed from the vnode's lanes before the new
/// value is inserted — the client knows both sides because it fronts the
/// authoritative MetaStore.
struct MetaUpdateOpWire {
  ObjectId object = kInvalidObjectId;
  std::string attribute;
  bool has_old = false;
  meta::MetaValue old_value;
  meta::MetaValue new_value;
};

/// Update batch for ONE vnode, sent to every replica.  `seq` is a client-
/// assigned monotone sequence per vnode; replicas apply a batch at most
/// once (a seq at or below the vnode's high-water mark is acknowledged as
/// a duplicate without re-indexing) — exactly-once under retries,
/// reroutes and bus duplication, mirroring TransferWriteRequest.
struct MetaUpdateRequest {
  std::uint32_t vnode = 0;
  std::uint64_t seq = 0;
  std::vector<MetaUpdateOpWire> ops;

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static Result<MetaUpdateRequest> Deserialize(SerialReader& r);
};

struct MetaUpdateResponse {
  Status status;
  std::uint64_t epoch = 0;  ///< vnode epoch after the call
  bool duplicate = false;   ///< seq at/below high-water: not re-applied
  LedgerSummary ledger;

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static Result<MetaUpdateResponse> Deserialize(SerialReader& r);
};

/// Ask a server for a snapshot of its deployment metrics (counters,
/// gauges, latency histograms).  Examples and bench use this to scrape a
/// live service without stopping it.
struct MetricsRequest {
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static Result<MetricsRequest> Deserialize(SerialReader& r);
};

struct MetricsResponse {
  Status status;
  obs::MetricsSnapshot snapshot;

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static Result<MetricsResponse> Deserialize(SerialReader& r);
};

/// Peek the request type of an incoming payload.
Result<RequestType> peek_request_type(std::span<const std::uint8_t> payload);

}  // namespace pdc::server
