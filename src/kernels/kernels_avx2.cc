// AVX2 kernel implementations.
//
// Compiled with -mavx2 -mbmi -mpopcnt in its own translation unit; nothing
// here runs unless cpu_has_avx2() confirmed support at startup (or a test
// forced the backend, which set_backend_for_test only allows when the CPU
// qualifies).
//
// Bit-exactness with the scalar reference:
//   - float scans widen 8 floats to double via _mm256_cvtps_pd (exact) and
//     compare in the double domain, because ValueInterval::contains
//     promotes to double — comparing in float domain would diverge when a
//     bound is not representable in float;
//   - every compare is ordered-quiet (*_OQ), so NaN lanes never match and
//     no FP exceptions are raised;
//   - set-bit expansion uses a 256-entry packed-index byte LUT, widened
//     with _mm256_cvtepu8_epi64 — emission stays ascending.

#ifdef PDC_KERNELS_HAVE_AVX2

#include <immintrin.h>

#include <algorithm>
#include <cstring>

#include "kernels/kernels.h"

namespace pdc::kernels::avx2 {
namespace {

constexpr std::size_t kBlock = 2048;  ///< staging elements between flushes

/// idx[m] = the bit positions set in m, packed ascending; cnt[m] = how many.
struct ByteLut {
  std::uint8_t idx[256][8];
  std::uint8_t cnt[256];
};

constexpr ByteLut make_byte_lut() {
  ByteLut lut{};
  for (int m = 0; m < 256; ++m) {
    int k = 0;
    for (int b = 0; b < 8; ++b) {
      if ((m >> b) & 1) lut.idx[m][k++] = static_cast<std::uint8_t>(b);
    }
    lut.cnt[m] = static_cast<std::uint8_t>(k);
  }
  return lut;
}

alignas(64) constexpr ByteLut kLut = make_byte_lut();

/// Append `first + b` for every bit b set in the 8-bit mask `m` to
/// tmp[cnt...].  May store up to 8 lanes beyond cnt; callers leave slack.
inline void emit_mask8(unsigned m, std::uint64_t first, std::uint64_t* tmp,
                       std::size_t& cnt) {
  const __m128i packed =
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(kLut.idx[m]));
  const __m256i base = _mm256_set1_epi64x(static_cast<long long>(first));
  _mm256_storeu_si256(
      reinterpret_cast<__m256i*>(tmp + cnt),
      _mm256_add_epi64(_mm256_cvtepu8_epi64(packed), base));
  const unsigned c = kLut.cnt[m];
  if (c > 4) {
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(tmp + cnt + 4),
        _mm256_add_epi64(_mm256_cvtepu8_epi64(_mm_srli_si128(packed, 4)),
                         base));
  }
  cnt += c;
}

template <bool kLoInc, bool kHiInc>
void scan_f32_impl(const float* v, std::size_t n, const ValueInterval& q,
                   std::uint64_t base, std::vector<std::uint64_t>& out) {
  constexpr int kLoCmp = kLoInc ? _CMP_GE_OQ : _CMP_GT_OQ;
  constexpr int kHiCmp = kHiInc ? _CMP_LE_OQ : _CMP_LT_OQ;
  const __m256d lo = _mm256_set1_pd(q.lo);
  const __m256d hi = _mm256_set1_pd(q.hi);
  std::uint64_t tmp[kBlock + 8];
  std::size_t i = 0;
  while (i < n) {
    const std::size_t end = std::min(n, i + kBlock);
    std::size_t cnt = 0;
    for (; i + 8 <= end; i += 8) {
      const __m256d d0 = _mm256_cvtps_pd(_mm_loadu_ps(v + i));
      const __m256d d1 = _mm256_cvtps_pd(_mm_loadu_ps(v + i + 4));
      const unsigned m0 = static_cast<unsigned>(_mm256_movemask_pd(
          _mm256_and_pd(_mm256_cmp_pd(d0, lo, kLoCmp),
                        _mm256_cmp_pd(d0, hi, kHiCmp))));
      const unsigned m1 = static_cast<unsigned>(_mm256_movemask_pd(
          _mm256_and_pd(_mm256_cmp_pd(d1, lo, kLoCmp),
                        _mm256_cmp_pd(d1, hi, kHiCmp))));
      const unsigned m = m0 | (m1 << 4);
      if (m != 0) emit_mask8(m, base + i, tmp, cnt);
    }
    for (; i < end; ++i) {
      if (q.contains(static_cast<double>(v[i]))) tmp[cnt++] = base + i;
    }
    out.insert(out.end(), tmp, tmp + cnt);
  }
}

template <bool kLoInc, bool kHiInc>
void scan_f64_impl(const double* v, std::size_t n, const ValueInterval& q,
                   std::uint64_t base, std::vector<std::uint64_t>& out) {
  constexpr int kLoCmp = kLoInc ? _CMP_GE_OQ : _CMP_GT_OQ;
  constexpr int kHiCmp = kHiInc ? _CMP_LE_OQ : _CMP_LT_OQ;
  const __m256d lo = _mm256_set1_pd(q.lo);
  const __m256d hi = _mm256_set1_pd(q.hi);
  std::uint64_t tmp[kBlock + 8];
  std::size_t i = 0;
  while (i < n) {
    const std::size_t end = std::min(n, i + kBlock);
    std::size_t cnt = 0;
    for (; i + 4 <= end; i += 4) {
      const __m256d d = _mm256_loadu_pd(v + i);
      const unsigned m = static_cast<unsigned>(_mm256_movemask_pd(
          _mm256_and_pd(_mm256_cmp_pd(d, lo, kLoCmp),
                        _mm256_cmp_pd(d, hi, kHiCmp))));
      if (m != 0) emit_mask8(m, base + i, tmp, cnt);
    }
    for (; i < end; ++i) {
      if (q.contains(v[i])) tmp[cnt++] = base + i;
    }
    out.insert(out.end(), tmp, tmp + cnt);
  }
}

template <typename Impl>
void dispatch_bounds(const ValueInterval& q, Impl&& impl) {
  if (q.lo_inclusive) {
    if (q.hi_inclusive) {
      impl(std::true_type{}, std::true_type{});
    } else {
      impl(std::true_type{}, std::false_type{});
    }
  } else {
    if (q.hi_inclusive) {
      impl(std::false_type{}, std::true_type{});
    } else {
      impl(std::false_type{}, std::false_type{});
    }
  }
}

}  // namespace

void scan_interval_f32(std::span<const float> values, const ValueInterval& q,
                       std::uint64_t base, std::vector<std::uint64_t>& out) {
  dispatch_bounds(q, [&](auto lo_inc, auto hi_inc) {
    scan_f32_impl<decltype(lo_inc)::value, decltype(hi_inc)::value>(
        values.data(), values.size(), q, base, out);
  });
}

void scan_interval_f64(std::span<const double> values, const ValueInterval& q,
                       std::uint64_t base, std::vector<std::uint64_t>& out) {
  dispatch_bounds(q, [&](auto lo_inc, auto hi_inc) {
    scan_f64_impl<decltype(lo_inc)::value, decltype(hi_inc)::value>(
        values.data(), values.size(), q, base, out);
  });
}

void append_range(std::vector<std::uint64_t>& out, std::uint64_t lo,
                  std::uint64_t hi) {
  if (hi <= lo) return;
  const std::size_t n = static_cast<std::size_t>(hi - lo);
  const std::size_t k = out.size();
  out.resize(k + n);
  std::uint64_t* p = out.data() + k;
  __m256i cur = _mm256_add_epi64(
      _mm256_set1_epi64x(static_cast<long long>(lo)),
      _mm256_set_epi64x(3, 2, 1, 0));
  const __m256i step = _mm256_set1_epi64x(4);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p + i), cur);
    cur = _mm256_add_epi64(cur, step);
  }
  for (; i < n; ++i) p[i] = lo + i;
}

void wah_expand(std::span<const std::uint32_t> words, std::uint32_t active,
                std::uint32_t active_bits, std::uint64_t base,
                std::uint64_t clip_lo, std::uint64_t clip_hi,
                std::vector<std::uint64_t>& out) {
  constexpr std::uint32_t kGroupBits = 31;
  // Literal expansions stage into tmp (flushed in blocks); 1-fill runs
  // bypass tmp and ramp directly into `out`.  Slack: one literal word can
  // emit 31 positions through four emit_mask8 calls, each of which may
  // store up to 8 lanes past cnt.
  std::uint64_t tmp[kBlock + 40];
  std::size_t cnt = 0;
  const auto flush = [&] {
    out.insert(out.end(), tmp, tmp + cnt);
    cnt = 0;
  };
  std::uint64_t pos = base;
  for (const std::uint32_t w : words) {
    if (w & 0x80000000u) {
      const std::uint64_t bits =
          static_cast<std::uint64_t>(w & 0x3FFFFFFFu) * kGroupBits;
      if (w & 0x40000000u) {
        const std::uint64_t lo = pos > clip_lo ? pos : clip_lo;
        const std::uint64_t hi = pos + bits < clip_hi ? pos + bits : clip_hi;
        if (hi > lo) {
          flush();
          append_range(out, lo, hi);
        }
      }
      pos += bits;
    } else {
      if (w != 0 && pos + kGroupBits > clip_lo && pos < clip_hi) {
        if (cnt >= kBlock) flush();
        if (pos >= clip_lo && pos + kGroupBits <= clip_hi) {
          emit_mask8(w & 0xFFu, pos, tmp, cnt);
          emit_mask8((w >> 8) & 0xFFu, pos + 8, tmp, cnt);
          emit_mask8((w >> 16) & 0xFFu, pos + 16, tmp, cnt);
          emit_mask8((w >> 24) & 0x7Fu, pos + 24, tmp, cnt);
        } else {
          // Word straddles a clip edge: per-bit with the clip check.
          std::uint32_t bits = w;
          while (bits != 0) {
            const std::uint64_t p = pos + static_cast<std::uint64_t>(
                                              __builtin_ctz(bits));
            if (p >= clip_lo && p < clip_hi) tmp[cnt++] = p;
            bits &= bits - 1;
          }
        }
      }
      pos += kGroupBits;
    }
  }
  if (active_bits > 0 && active != 0 && pos + active_bits > clip_lo &&
      pos < clip_hi) {
    if (cnt >= kBlock) flush();
    std::uint32_t bits = active;
    while (bits != 0) {
      const std::uint64_t p =
          pos + static_cast<std::uint64_t>(__builtin_ctz(bits));
      if (p >= clip_lo && p < clip_hi) tmp[cnt++] = p;
      bits &= bits - 1;
    }
  }
  flush();
}

void wah_combine_literals(const std::uint32_t* a, const std::uint32_t* b,
                          std::uint32_t* dst, std::size_t n, bool is_or) {
  std::size_t i = 0;
  if (is_or) {
    for (; i + 8 <= n; i += 8) {
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(dst + i),
          _mm256_or_si256(
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i))));
    }
    for (; i < n; ++i) dst[i] = a[i] | b[i];
  } else {
    for (; i + 8 <= n; i += 8) {
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(dst + i),
          _mm256_and_si256(
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i))));
    }
    for (; i < n; ++i) dst[i] = a[i] & b[i];
  }
}

namespace {

/// Lockstep branchless binary search over 8 float keys.  Every lane runs
/// the identical `len` schedule (it depends only on n), so the whole batch
/// advances with one gather + one compare per level.
/// kUpper=false moves right on (a[m] < key); kUpper=true on !(key < a[m]),
/// matching the scalar branchless forms bit-for-bit (including NaN keys).
template <bool kUpper>
void bound_batch_f32(std::span<const float> sorted,
                     std::span<const float> keys,
                     std::span<std::uint64_t> out) {
  const float* a = sorted.data();
  const std::size_t n = sorted.size();
  std::size_t k = 0;
  if (n >= 1 && n < (1ull << 31)) {
    for (; k + 8 <= keys.size(); k += 8) {
      const __m256 key = _mm256_loadu_ps(keys.data() + k);
      __m256i base = _mm256_setzero_si256();
      std::size_t len = n;
      while (len > 1) {
        const std::size_t half = len / 2;
        const __m256i idx = _mm256_add_epi32(
            base, _mm256_set1_epi32(static_cast<int>(half - 1)));
        const __m256 vals = _mm256_i32gather_ps(a, idx, 4);
        const __m256i halfv = _mm256_set1_epi32(static_cast<int>(half));
        if constexpr (kUpper) {
          const __m256i ge =
              _mm256_castps_si256(_mm256_cmp_ps(key, vals, _CMP_LT_OQ));
          base = _mm256_add_epi32(base, _mm256_andnot_si256(ge, halfv));
        } else {
          const __m256i lt =
              _mm256_castps_si256(_mm256_cmp_ps(vals, key, _CMP_LT_OQ));
          base = _mm256_add_epi32(base, _mm256_and_si256(lt, halfv));
        }
        len -= half;
      }
      const __m256 vals = _mm256_i32gather_ps(a, base, 4);
      const __m256i one = _mm256_set1_epi32(1);
      if constexpr (kUpper) {
        const __m256i ge =
            _mm256_castps_si256(_mm256_cmp_ps(key, vals, _CMP_LT_OQ));
        base = _mm256_add_epi32(base, _mm256_andnot_si256(ge, one));
      } else {
        const __m256i lt =
            _mm256_castps_si256(_mm256_cmp_ps(vals, key, _CMP_LT_OQ));
        base = _mm256_add_epi32(base, _mm256_and_si256(lt, one));
      }
      alignas(32) std::int32_t lanes[8];
      _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), base);
      for (int j = 0; j < 8; ++j) {
        out[k + j] = static_cast<std::uint32_t>(lanes[j]);
      }
    }
  }
  for (; k < keys.size(); ++k) {
    out[k] = kUpper ? upper_bound_index(sorted, keys[k])
                    : lower_bound_index(sorted, keys[k]);
  }
}

/// 4-lane double variant (i64 indices, gather scale 8).
template <bool kUpper>
void bound_batch_f64(std::span<const double> sorted,
                     std::span<const double> keys,
                     std::span<std::uint64_t> out) {
  const double* a = sorted.data();
  const std::size_t n = sorted.size();
  std::size_t k = 0;
  if (n >= 1) {
    for (; k + 4 <= keys.size(); k += 4) {
      const __m256d key = _mm256_loadu_pd(keys.data() + k);
      __m256i base = _mm256_setzero_si256();
      std::size_t len = n;
      while (len > 1) {
        const std::size_t half = len / 2;
        const __m256i idx = _mm256_add_epi64(
            base, _mm256_set1_epi64x(static_cast<long long>(half - 1)));
        const __m256d vals = _mm256_i64gather_pd(a, idx, 8);
        const __m256i halfv =
            _mm256_set1_epi64x(static_cast<long long>(half));
        if constexpr (kUpper) {
          const __m256i ge =
              _mm256_castpd_si256(_mm256_cmp_pd(key, vals, _CMP_LT_OQ));
          base = _mm256_add_epi64(base, _mm256_andnot_si256(ge, halfv));
        } else {
          const __m256i lt =
              _mm256_castpd_si256(_mm256_cmp_pd(vals, key, _CMP_LT_OQ));
          base = _mm256_add_epi64(base, _mm256_and_si256(lt, halfv));
        }
        len -= half;
      }
      const __m256d vals = _mm256_i64gather_pd(a, base, 8);
      const __m256i one = _mm256_set1_epi64x(1);
      if constexpr (kUpper) {
        const __m256i ge =
            _mm256_castpd_si256(_mm256_cmp_pd(key, vals, _CMP_LT_OQ));
        base = _mm256_add_epi64(base, _mm256_andnot_si256(ge, one));
      } else {
        const __m256i lt =
            _mm256_castpd_si256(_mm256_cmp_pd(vals, key, _CMP_LT_OQ));
        base = _mm256_add_epi64(base, _mm256_and_si256(lt, one));
      }
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out.data() + k), base);
    }
  }
  for (; k < keys.size(); ++k) {
    out[k] = kUpper ? upper_bound_index(sorted, keys[k])
                    : lower_bound_index(sorted, keys[k]);
  }
}

}  // namespace

void lower_bound_batch_f32(std::span<const float> sorted,
                           std::span<const float> keys,
                           std::span<std::uint64_t> out) {
  bound_batch_f32<false>(sorted, keys, out);
}

void lower_bound_batch_f64(std::span<const double> sorted,
                           std::span<const double> keys,
                           std::span<std::uint64_t> out) {
  bound_batch_f64<false>(sorted, keys, out);
}

void upper_bound_batch_f32(std::span<const float> sorted,
                           std::span<const float> keys,
                           std::span<std::uint64_t> out) {
  bound_batch_f32<true>(sorted, keys, out);
}

void upper_bound_batch_f64(std::span<const double> sorted,
                           std::span<const double> keys,
                           std::span<std::uint64_t> out) {
  bound_batch_f64<true>(sorted, keys, out);
}

}  // namespace pdc::kernels::avx2

#endif  // PDC_KERNELS_HAVE_AVX2
