// Scalar reference kernels + runtime backend dispatch.
//
// This translation unit is compiled with -fno-tree-vectorize (see
// CMakeLists.txt): the scalar implementations are the semantic reference
// the differential battery compares AVX2 against AND the baseline the
// bench gate measures speedups over, so the compiler must not quietly
// vectorize them out from under either role.

#include "kernels/kernels.h"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>

namespace pdc::kernels {

namespace {

/// Test-override slot: -1 = none, else a Backend value.
std::atomic<int> g_override{-1};

Backend detect_backend() noexcept {
  if (const char* env = std::getenv("PDC_KERNELS")) {
    if (std::strcmp(env, "scalar") == 0) return Backend::kScalar;
    if (std::strcmp(env, "avx2") == 0) {
      return cpu_has_avx2() ? Backend::kAvx2 : Backend::kScalar;
    }
    // Unrecognized value: fall through to auto-detection.
  }
  return cpu_has_avx2() ? Backend::kAvx2 : Backend::kScalar;
}

}  // namespace

const char* backend_name(Backend b) noexcept {
  return b == Backend::kAvx2 ? "avx2" : "scalar";
}

bool cpu_has_avx2() noexcept {
#if defined(PDC_KERNELS_HAVE_AVX2) && defined(__x86_64__)
  static const bool has = __builtin_cpu_supports("avx2") &&
                          __builtin_cpu_supports("bmi") &&
                          __builtin_cpu_supports("popcnt");
  return has;
#else
  return false;
#endif
}

Backend active_backend() noexcept {
  const int o = g_override.load(std::memory_order_relaxed);
  if (o >= 0) return static_cast<Backend>(o);
  static const Backend detected = detect_backend();
  return detected;
}

void set_backend_for_test(Backend b) noexcept {
  if (b == Backend::kAvx2 && !cpu_has_avx2()) b = Backend::kScalar;
  g_override.store(static_cast<int>(b), std::memory_order_relaxed);
}

void clear_backend_override() noexcept {
  g_override.store(-1, std::memory_order_relaxed);
}

bool has_backend_override() noexcept {
  return g_override.load(std::memory_order_relaxed) >= 0;
}

ScopedBackend::ScopedBackend(Backend b) noexcept
    : previous_(g_override.load(std::memory_order_relaxed)) {
  set_backend_for_test(b);
}

ScopedBackend::~ScopedBackend() {
  g_override.store(previous_, std::memory_order_relaxed);
}

// --------------------------------------------------------------- scalar

namespace scalar {

void scan_interval_f32(std::span<const float> values, const ValueInterval& q,
                       std::uint64_t base, std::vector<std::uint64_t>& out) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (q.contains(static_cast<double>(values[i]))) out.push_back(base + i);
  }
}

void scan_interval_f64(std::span<const double> values, const ValueInterval& q,
                       std::uint64_t base, std::vector<std::uint64_t>& out) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (q.contains(values[i])) out.push_back(base + i);
  }
}

void append_range(std::vector<std::uint64_t>& out, std::uint64_t lo,
                  std::uint64_t hi) {
  for (std::uint64_t p = lo; p < hi; ++p) out.push_back(p);
}

namespace {

/// Emit the set bits of one literal/active word at absolute position
/// `pos`, clipped to [clip_lo, clip_hi).
inline void expand_word(std::uint32_t bits, std::uint64_t pos,
                        std::uint64_t clip_lo, std::uint64_t clip_hi,
                        std::vector<std::uint64_t>& out) {
  while (bits != 0) {
    const std::uint64_t p =
        pos + static_cast<std::uint64_t>(std::countr_zero(bits));
    if (p >= clip_lo && p < clip_hi) out.push_back(p);
    bits &= bits - 1;
  }
}

}  // namespace

void wah_expand(std::span<const std::uint32_t> words, std::uint32_t active,
                std::uint32_t active_bits, std::uint64_t base,
                std::uint64_t clip_lo, std::uint64_t clip_hi,
                std::vector<std::uint64_t>& out) {
  constexpr std::uint32_t kGroupBits = 31;
  std::uint64_t pos = base;
  for (const std::uint32_t w : words) {
    if (w & 0x80000000u) {
      const std::uint64_t bits =
          static_cast<std::uint64_t>(w & 0x3FFFFFFFu) * kGroupBits;
      if (w & 0x40000000u) {
        const std::uint64_t lo = pos > clip_lo ? pos : clip_lo;
        const std::uint64_t hi = pos + bits < clip_hi ? pos + bits : clip_hi;
        append_range(out, lo, hi);
      }
      pos += bits;
    } else {
      // Skip clipped-out words without bit-walking them.
      if (pos + kGroupBits > clip_lo && pos < clip_hi) {
        expand_word(w, pos, clip_lo, clip_hi, out);
      }
      pos += kGroupBits;
    }
  }
  if (active_bits > 0 && pos + active_bits > clip_lo && pos < clip_hi) {
    expand_word(active, pos, clip_lo, clip_hi, out);
  }
}

void wah_combine_literals(const std::uint32_t* a, const std::uint32_t* b,
                          std::uint32_t* dst, std::size_t n, bool is_or) {
  if (is_or) {
    for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] | b[i];
  } else {
    for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] & b[i];
  }
}

namespace {

template <typename T, bool kUpper>
void bound_batch(std::span<const T> sorted, std::span<const T> keys,
                 std::span<std::uint64_t> out) {
  for (std::size_t k = 0; k < keys.size(); ++k) {
    out[k] = kUpper ? upper_bound_index(sorted, keys[k])
                    : lower_bound_index(sorted, keys[k]);
  }
}

}  // namespace

void lower_bound_batch_f32(std::span<const float> sorted,
                           std::span<const float> keys,
                           std::span<std::uint64_t> out) {
  bound_batch<float, false>(sorted, keys, out);
}

void lower_bound_batch_f64(std::span<const double> sorted,
                           std::span<const double> keys,
                           std::span<std::uint64_t> out) {
  bound_batch<double, false>(sorted, keys, out);
}

void upper_bound_batch_f32(std::span<const float> sorted,
                           std::span<const float> keys,
                           std::span<std::uint64_t> out) {
  bound_batch<float, true>(sorted, keys, out);
}

void upper_bound_batch_f64(std::span<const double> sorted,
                           std::span<const double> keys,
                           std::span<std::uint64_t> out) {
  bound_batch<double, true>(sorted, keys, out);
}

}  // namespace scalar

// ------------------------------------------- avx2 fallback (no codegen)
//
// When the toolchain cannot compile AVX2 (kernels_avx2.cc absent from the
// build), the avx2 namespace still links — forwarding to scalar — and
// cpu_has_avx2() is false, so dispatch never selects it and seed-derived
// backend choices remain portable.

#ifndef PDC_KERNELS_HAVE_AVX2
namespace avx2 {

void scan_interval_f32(std::span<const float> values, const ValueInterval& q,
                       std::uint64_t base, std::vector<std::uint64_t>& out) {
  scalar::scan_interval_f32(values, q, base, out);
}

void scan_interval_f64(std::span<const double> values, const ValueInterval& q,
                       std::uint64_t base, std::vector<std::uint64_t>& out) {
  scalar::scan_interval_f64(values, q, base, out);
}

void append_range(std::vector<std::uint64_t>& out, std::uint64_t lo,
                  std::uint64_t hi) {
  scalar::append_range(out, lo, hi);
}

void wah_expand(std::span<const std::uint32_t> words, std::uint32_t active,
                std::uint32_t active_bits, std::uint64_t base,
                std::uint64_t clip_lo, std::uint64_t clip_hi,
                std::vector<std::uint64_t>& out) {
  scalar::wah_expand(words, active, active_bits, base, clip_lo, clip_hi, out);
}

void wah_combine_literals(const std::uint32_t* a, const std::uint32_t* b,
                          std::uint32_t* dst, std::size_t n, bool is_or) {
  scalar::wah_combine_literals(a, b, dst, n, is_or);
}

void lower_bound_batch_f32(std::span<const float> sorted,
                           std::span<const float> keys,
                           std::span<std::uint64_t> out) {
  scalar::lower_bound_batch_f32(sorted, keys, out);
}

void lower_bound_batch_f64(std::span<const double> sorted,
                           std::span<const double> keys,
                           std::span<std::uint64_t> out) {
  scalar::lower_bound_batch_f64(sorted, keys, out);
}

void upper_bound_batch_f32(std::span<const float> sorted,
                           std::span<const float> keys,
                           std::span<std::uint64_t> out) {
  scalar::upper_bound_batch_f32(sorted, keys, out);
}

void upper_bound_batch_f64(std::span<const double> sorted,
                           std::span<const double> keys,
                           std::span<std::uint64_t> out) {
  scalar::upper_bound_batch_f64(sorted, keys, out);
}

}  // namespace avx2
#endif  // !PDC_KERNELS_HAVE_AVX2

// ------------------------------------------------------------- dispatch

void scan_interval(std::span<const float> values, const ValueInterval& q,
                   std::uint64_t base, std::vector<std::uint64_t>& out) {
  if (active_backend() == Backend::kAvx2) {
    avx2::scan_interval_f32(values, q, base, out);
  } else {
    scalar::scan_interval_f32(values, q, base, out);
  }
}

void scan_interval(std::span<const double> values, const ValueInterval& q,
                   std::uint64_t base, std::vector<std::uint64_t>& out) {
  if (active_backend() == Backend::kAvx2) {
    avx2::scan_interval_f64(values, q, base, out);
  } else {
    scalar::scan_interval_f64(values, q, base, out);
  }
}

void append_range(std::vector<std::uint64_t>& out, std::uint64_t lo,
                  std::uint64_t hi) {
  if (active_backend() == Backend::kAvx2) {
    avx2::append_range(out, lo, hi);
  } else {
    scalar::append_range(out, lo, hi);
  }
}

void wah_expand(std::span<const std::uint32_t> words, std::uint32_t active,
                std::uint32_t active_bits, std::uint64_t base,
                std::uint64_t clip_lo, std::uint64_t clip_hi,
                std::vector<std::uint64_t>& out) {
  if (active_backend() == Backend::kAvx2) {
    avx2::wah_expand(words, active, active_bits, base, clip_lo, clip_hi, out);
  } else {
    scalar::wah_expand(words, active, active_bits, base, clip_lo, clip_hi,
                       out);
  }
}

void wah_combine_literals(const std::uint32_t* a, const std::uint32_t* b,
                          std::uint32_t* dst, std::size_t n, bool is_or) {
  if (active_backend() == Backend::kAvx2) {
    avx2::wah_combine_literals(a, b, dst, n, is_or);
  } else {
    scalar::wah_combine_literals(a, b, dst, n, is_or);
  }
}

std::uint64_t popcount_words(const std::uint32_t* words,
                             std::size_t n) noexcept {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<std::uint32_t>(std::popcount(words[i]));
  }
  return total;
}

void lower_bound_batch(std::span<const float> sorted,
                       std::span<const float> keys,
                       std::span<std::uint64_t> out) {
  if (active_backend() == Backend::kAvx2) {
    avx2::lower_bound_batch_f32(sorted, keys, out);
  } else {
    scalar::lower_bound_batch_f32(sorted, keys, out);
  }
}

void lower_bound_batch(std::span<const double> sorted,
                       std::span<const double> keys,
                       std::span<std::uint64_t> out) {
  if (active_backend() == Backend::kAvx2) {
    avx2::lower_bound_batch_f64(sorted, keys, out);
  } else {
    scalar::lower_bound_batch_f64(sorted, keys, out);
  }
}

void upper_bound_batch(std::span<const float> sorted,
                       std::span<const float> keys,
                       std::span<std::uint64_t> out) {
  if (active_backend() == Backend::kAvx2) {
    avx2::upper_bound_batch_f32(sorted, keys, out);
  } else {
    scalar::upper_bound_batch_f32(sorted, keys, out);
  }
}

void upper_bound_batch(std::span<const double> sorted,
                       std::span<const double> keys,
                       std::span<std::uint64_t> out) {
  if (active_backend() == Backend::kAvx2) {
    avx2::upper_bound_batch_f64(sorted, keys, out);
  } else {
    scalar::upper_bound_batch_f64(sorted, keys, out);
  }
}

}  // namespace pdc::kernels
