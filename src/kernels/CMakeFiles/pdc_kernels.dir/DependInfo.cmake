
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/kernels.cc" "src/kernels/CMakeFiles/pdc_kernels.dir/kernels.cc.o" "gcc" "src/kernels/CMakeFiles/pdc_kernels.dir/kernels.cc.o.d"
  "/root/repo/src/kernels/kernels_avx2.cc" "src/kernels/CMakeFiles/pdc_kernels.dir/kernels_avx2.cc.o" "gcc" "src/kernels/CMakeFiles/pdc_kernels.dir/kernels_avx2.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/common/CMakeFiles/pdc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
