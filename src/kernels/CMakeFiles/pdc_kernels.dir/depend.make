# Empty dependencies file for pdc_kernels.
# This may be replaced when dependencies are built.
