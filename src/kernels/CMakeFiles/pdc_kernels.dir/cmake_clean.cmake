file(REMOVE_RECURSE
  "CMakeFiles/pdc_kernels.dir/kernels.cc.o"
  "CMakeFiles/pdc_kernels.dir/kernels.cc.o.d"
  "CMakeFiles/pdc_kernels.dir/kernels_avx2.cc.o"
  "CMakeFiles/pdc_kernels.dir/kernels_avx2.cc.o.d"
  "libpdc_kernels.a"
  "libpdc_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdc_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
