file(REMOVE_RECURSE
  "libpdc_kernels.a"
)
