// Runtime-dispatched CPU kernels for the wall-clock hot paths.
//
// Every prior layer optimized *simulated* time; this library is where the
// process actually burns cycles: predicate scan over region buffers, WAH
// word expand/AND/OR, and sorted-replica bound probes.  Each kernel has a
// scalar reference implementation and an AVX2 implementation; the backend
// is selected once at startup from cpuid (overridable with
// PDC_KERNELS=scalar|avx2) and the two are required to be bit-identical —
// tests/kernels_test.cc runs them differentially on adversarial inputs and
// QueryCheck differentials whole query paths under a seed-derived backend.
//
// Bit-exactness rules the implementations obey:
//   - scans compare in the double domain, exactly like
//     ValueInterval::contains(static_cast<double>(v)) — floats are widened
//     before comparison (float-domain compares would diverge on bounds that
//     are not representable in float);
//   - all comparisons are ordered-quiet (NaN never matches, no traps);
//   - emission order is ascending, matching the serial loops they replace.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/interval.h"

namespace pdc::kernels {

// ------------------------------------------------------------- dispatch

enum class Backend : std::uint8_t {
  kScalar = 0,
  kAvx2 = 1,
};

[[nodiscard]] const char* backend_name(Backend b) noexcept;

/// True when AVX2 kernels are compiled in AND the CPU supports them.
[[nodiscard]] bool cpu_has_avx2() noexcept;

/// The backend every dispatched kernel below uses.  Resolution order:
/// test override (set_backend_for_test / ScopedBackend), then the
/// PDC_KERNELS environment variable ("scalar" forces the reference,
/// "avx2" requests SIMD and falls back to scalar when unsupported),
/// then cpuid.  The non-override part is computed once and cached.
[[nodiscard]] Backend active_backend() noexcept;

/// Force a backend process-wide (tests only; atomic but not intended for
/// concurrent flipping while kernels run).  kAvx2 is downgraded to
/// kScalar when cpu_has_avx2() is false, so seed-derived choices are
/// portable to machines without AVX2.
void set_backend_for_test(Backend b) noexcept;

/// Remove the test override; dispatch returns to env/cpuid selection.
void clear_backend_override() noexcept;

/// True while a test override (set_backend_for_test / ScopedBackend) is
/// installed.  Harnesses that derive a per-case backend use this to let an
/// enclosing pin win.
[[nodiscard]] bool has_backend_override() noexcept;

/// RAII backend override for differential tests.
class ScopedBackend {
 public:
  explicit ScopedBackend(Backend b) noexcept;
  ~ScopedBackend();
  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;

 private:
  int previous_;  ///< previous override slot (-1 = none)
};

// ------------------------------------------------------ predicate scan

/// Append `base + i` for every i with `q.contains((double)values[i])`,
/// ascending.  Drop-in replacement for the region_pipeline scan loop.
void scan_interval(std::span<const float> values, const ValueInterval& q,
                   std::uint64_t base, std::vector<std::uint64_t>& out);
void scan_interval(std::span<const double> values, const ValueInterval& q,
                   std::uint64_t base, std::vector<std::uint64_t>& out);

/// Integral element types stay scalar (the datasets under test are
/// float/double; int regions are rare and memory-bound anyway) but share
/// the exact comparison semantics.
template <typename T>
  requires std::is_integral_v<T>
void scan_interval(std::span<const T> values, const ValueInterval& q,
                   std::uint64_t base, std::vector<std::uint64_t>& out) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (q.contains(static_cast<double>(values[i]))) out.push_back(base + i);
  }
}

// ------------------------------------------------------------ iota fill

/// Append lo, lo+1, ..., hi-1 (the all-hit region fast path).
void append_range(std::vector<std::uint64_t>& out, std::uint64_t lo,
                  std::uint64_t hi);

// ------------------------------------------------------------------ WAH

/// Expand the set bits of a WAH word stream (31-bit groups; literal words
/// MSB=0, fill words MSB=1 with fill bit 30 and a 30-bit group count) plus
/// a partial trailing group (`active`, low `active_bits` bits valid).
/// Emits `base + bit_position` for every set bit whose absolute position
/// lies in [clip_lo, clip_hi), ascending — the decode_bins contract.
void wah_expand(std::span<const std::uint32_t> words, std::uint32_t active,
                std::uint32_t active_bits, std::uint64_t base,
                std::uint64_t clip_lo, std::uint64_t clip_hi,
                std::vector<std::uint64_t>& out);

/// dst[i] = a[i] OP b[i] for n literal words (no fill-flag handling; the
/// caller guarantees every input word is a literal).  dst may not overlap
/// the inputs.
void wah_combine_literals(const std::uint32_t* a, const std::uint32_t* b,
                          std::uint32_t* dst, std::size_t n, bool is_or);

/// Sum of popcounts over a word array (literal accounting).
[[nodiscard]] std::uint64_t popcount_words(const std::uint32_t* words,
                                           std::size_t n) noexcept;

// -------------------------------------------------- sorted bound probes

/// Branchless std::lower_bound / std::upper_bound–equivalent index.  The
/// iteration count depends only on `sorted.size()`, which is what makes
/// the batch variants below lockstep-vectorizable; the scalar form is
/// shared by both backends so single-key probes are trivially identical.
template <typename T>
[[nodiscard]] std::uint64_t lower_bound_index(std::span<const T> sorted,
                                              T key) noexcept {
  if (sorted.empty()) return 0;
  const T* a = sorted.data();
  std::size_t base = 0;
  std::size_t len = sorted.size();
  while (len > 1) {
    const std::size_t half = len / 2;
    if (a[base + half - 1] < key) base += half;
    len -= half;
  }
  return base + (a[base] < key ? 1 : 0);
}

template <typename T>
[[nodiscard]] std::uint64_t upper_bound_index(std::span<const T> sorted,
                                              T key) noexcept {
  if (sorted.empty()) return 0;
  const T* a = sorted.data();
  std::size_t base = 0;
  std::size_t len = sorted.size();
  while (len > 1) {
    const std::size_t half = len / 2;
    if (!(key < a[base + half - 1])) base += half;
    len -= half;
  }
  return base + (!(key < a[base]) ? 1 : 0);
}

/// Batched probes: out[k] = lower/upper_bound_index(sorted, keys[k]).
/// AVX2 runs 8 (float) / 4 (double) searches in gather lockstep — the
/// replica build's merge-split searches and the planner's boundary probes
/// are batch-shaped.  Keys need not be sorted.  NaN keys are allowed and
/// produce the same (backend-identical) result as the scalar branchless
/// form, which differs from std::lower_bound only when inputs break its
/// partitioning precondition anyway.
void lower_bound_batch(std::span<const float> sorted,
                       std::span<const float> keys,
                       std::span<std::uint64_t> out);
void lower_bound_batch(std::span<const double> sorted,
                       std::span<const double> keys,
                       std::span<std::uint64_t> out);
void upper_bound_batch(std::span<const float> sorted,
                       std::span<const float> keys,
                       std::span<std::uint64_t> out);
void upper_bound_batch(std::span<const double> sorted,
                       std::span<const double> keys,
                       std::span<std::uint64_t> out);

// ----------------------------------------------- per-backend namespaces
//
// The differential battery calls these directly; production code calls
// the dispatched functions above.  In builds without AVX2 codegen the
// avx2 functions forward to scalar (and cpu_has_avx2() is false).

namespace scalar {
void scan_interval_f32(std::span<const float> values, const ValueInterval& q,
                       std::uint64_t base, std::vector<std::uint64_t>& out);
void scan_interval_f64(std::span<const double> values, const ValueInterval& q,
                       std::uint64_t base, std::vector<std::uint64_t>& out);
void append_range(std::vector<std::uint64_t>& out, std::uint64_t lo,
                  std::uint64_t hi);
void wah_expand(std::span<const std::uint32_t> words, std::uint32_t active,
                std::uint32_t active_bits, std::uint64_t base,
                std::uint64_t clip_lo, std::uint64_t clip_hi,
                std::vector<std::uint64_t>& out);
void wah_combine_literals(const std::uint32_t* a, const std::uint32_t* b,
                          std::uint32_t* dst, std::size_t n, bool is_or);
void lower_bound_batch_f32(std::span<const float> sorted,
                           std::span<const float> keys,
                           std::span<std::uint64_t> out);
void lower_bound_batch_f64(std::span<const double> sorted,
                           std::span<const double> keys,
                           std::span<std::uint64_t> out);
void upper_bound_batch_f32(std::span<const float> sorted,
                           std::span<const float> keys,
                           std::span<std::uint64_t> out);
void upper_bound_batch_f64(std::span<const double> sorted,
                           std::span<const double> keys,
                           std::span<std::uint64_t> out);
}  // namespace scalar

namespace avx2 {
void scan_interval_f32(std::span<const float> values, const ValueInterval& q,
                       std::uint64_t base, std::vector<std::uint64_t>& out);
void scan_interval_f64(std::span<const double> values, const ValueInterval& q,
                       std::uint64_t base, std::vector<std::uint64_t>& out);
void append_range(std::vector<std::uint64_t>& out, std::uint64_t lo,
                  std::uint64_t hi);
void wah_expand(std::span<const std::uint32_t> words, std::uint32_t active,
                std::uint32_t active_bits, std::uint64_t base,
                std::uint64_t clip_lo, std::uint64_t clip_hi,
                std::vector<std::uint64_t>& out);
void wah_combine_literals(const std::uint32_t* a, const std::uint32_t* b,
                          std::uint32_t* dst, std::size_t n, bool is_or);
void lower_bound_batch_f32(std::span<const float> sorted,
                           std::span<const float> keys,
                           std::span<std::uint64_t> out);
void lower_bound_batch_f64(std::span<const double> sorted,
                           std::span<const double> keys,
                           std::span<std::uint64_t> out);
void upper_bound_batch_f32(std::span<const float> sorted,
                           std::span<const float> keys,
                           std::span<std::uint64_t> out);
void upper_bound_batch_f64(std::span<const double> sorted,
                           std::span<const double> keys,
                           std::span<std::uint64_t> out);
}  // namespace avx2

}  // namespace pdc::kernels
