// Data reorganization with sorting (paper §III-D3).
//
// Builds a value-sorted copy of an object plus a permutation file mapping
// each sorted position back to the element's original position.  Range
// queries on the sort key then touch a *contiguous* run of sorted elements:
// interior regions are all-hits (min/max covers the query), only the two
// boundary regions need a binary search, and the matching data is one
// sequential read instead of scattered I/O.
//
// The replica is registered as a regular object in the ObjectStore (with
// its own regions/histograms — which are extremely tight, since sorting
// makes region min/max ranges disjoint) and linked to its source object.
#pragma once

#include <cstdint>
#include <vector>

#include "common/cost_model.h"
#include "common/status.h"
#include "common/types.h"
#include "obj/object_store.h"

namespace pdc::sortrep {

/// Outcome of a replica build.
struct BuildReport {
  ObjectId replica_id = kInvalidObjectId;
  /// Simulated one-time cost: read source + sort + write replica +
  /// write permutation.
  double build_cost_seconds = 0.0;
  /// Extra storage consumed (replica data + permutation), bytes.
  std::uint64_t extra_bytes = 0;
  /// Real (wall-clock) seconds the build took, and the worker threads it
  /// ran on (1 = serial).  Diagnostic only — never feeds simulated time.
  double wall_seconds = 0.0;
  std::uint32_t build_threads = 1;
};

/// Build (or fail if one exists) the sorted replica of `source`, using the
/// given ingest options for the replica's region decomposition.
/// The replica object is named "<source-name>.sorted".
///
/// When `options.pool` is set, the argsort runs as a parallel sample-free
/// merge sort (sorted chunks + segmented merges) and the value gather and
/// NaN pre-scan fan out over the pool.  Ties are broken on the original
/// position, which makes the sort order a total order — so every pool
/// size, including the serial default, produces byte-identical replica
/// data and permutation files.
Result<BuildReport> build_sorted_replica(obj::ObjectStore& store,
                                         ObjectId source,
                                         const obj::ImportOptions& options);

/// Overload that inherits the source object's region size.
Result<BuildReport> build_sorted_replica(obj::ObjectStore& store,
                                         ObjectId source);

/// Rebuild an existing sorted replica from the source's *current* data
/// (PAM-style bulk rebuild once the write delta log grows past its
/// threshold): re-sorts, overwrites the replica's data and permutation
/// files in place, and clears the source's delta log / marks the replica
/// synced to the source's data epoch.  Fails (leaving the delta log
/// intact, so merged reads keep working) if the data now contains NaN.
Status rebuild_sorted_replica(obj::ObjectStore& store, ObjectId source,
                              exec::ThreadPool* pool = nullptr);

/// Translate a sorted-space element extent into the original element
/// positions (reads the permutation file; one contiguous read).
Result<std::vector<std::uint64_t>> map_to_source_positions(
    const obj::ObjectStore& store, const obj::ObjectDescriptor& replica,
    Extent1D sorted_extent, const pfs::ReadContext& ctx);

}  // namespace pdc::sortrep
