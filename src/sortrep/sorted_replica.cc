#include "sortrep/sorted_replica.h"

#include <algorithm>
#include <numeric>
#include <type_traits>

#include "obj/type_dispatch.h"

namespace pdc::sortrep {

Result<BuildReport> build_sorted_replica(obj::ObjectStore& store,
                                         ObjectId source) {
  PDC_ASSIGN_OR_RETURN(const obj::ObjectDescriptor* src, store.get(source));
  obj::ImportOptions options;
  options.region_size_bytes =
      src->region_size_elements * src->element_size();
  return build_sorted_replica(store, source, options);
}

Result<BuildReport> build_sorted_replica(obj::ObjectStore& store,
                                         ObjectId source,
                                         const obj::ImportOptions& options) {
  PDC_ASSIGN_OR_RETURN(const obj::ObjectDescriptor* src, store.get(source));
  if (src->is_sorted_replica()) {
    return Status::InvalidArgument("source is itself a sorted replica");
  }
  if (store.sorted_replica_of(source).has_value()) {
    return Status::AlreadyExists("sorted replica already exists");
  }

  const std::size_t elem_size = src->element_size();
  const std::uint64_t n = src->num_elements;
  std::vector<std::uint8_t> raw(static_cast<std::size_t>(n * elem_size));
  PDC_RETURN_IF_ERROR(
      store.read_elements(*src, {0, n}, raw, {}));

  // NaN admits no strict weak ordering: std::stable_sort on it is UB and
  // the replica's binary-search contract would be meaningless anyway.
  const bool has_nan = obj::dispatch_type(src->type, [&](auto tag) {
    using T = decltype(tag);
    if constexpr (std::is_floating_point_v<T>) {
      const T* values = reinterpret_cast<const T*>(raw.data());
      for (std::uint64_t i = 0; i < n; ++i) {
        if (values[i] != values[i]) return true;
      }
    }
    return false;
  });
  if (has_nan) {
    return Status::InvalidArgument(
        "cannot build a sorted replica over NaN values");
  }

  // argsort by value, stable so equal values keep original order.
  std::vector<std::uint64_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  std::vector<std::uint8_t> sorted_bytes(raw.size());
  obj::dispatch_type(src->type, [&](auto tag) {
    using T = decltype(tag);
    const T* values = reinterpret_cast<const T*>(raw.data());
    std::stable_sort(perm.begin(), perm.end(),
                     [values](std::uint64_t a, std::uint64_t b) {
                       return values[a] < values[b];
                     });
    T* out = reinterpret_cast<T*>(sorted_bytes.data());
    for (std::uint64_t i = 0; i < n; ++i) out[i] = values[perm[i]];
  });

  PDC_ASSIGN_OR_RETURN(
      const ObjectId replica_id,
      store.import_raw(src->container_id, src->name + ".sorted", src->type,
                       sorted_bytes, n, options));

  // Permutation file: u64 original position per sorted position.
  const std::string perm_file = "obj_" + std::to_string(replica_id) + ".perm";
  PDC_ASSIGN_OR_RETURN(pfs::PfsFile pf, store.cluster().create(perm_file));
  PDC_RETURN_IF_ERROR(pf.write(
      0, {reinterpret_cast<const std::uint8_t*>(perm.data()),
          perm.size() * sizeof(std::uint64_t)}));
  PDC_RETURN_IF_ERROR(store.link_sorted_replica(replica_id, source, perm_file));

  // One-time cost: read source, comparison sort, write replica + perm.
  const CostModel& cost = store.cluster().config().cost;
  const double data_bytes = static_cast<double>(n) * elem_size;
  const double perm_bytes = static_cast<double>(n) * sizeof(std::uint64_t);
  BuildReport report;
  report.replica_id = replica_id;
  report.build_cost_seconds =
      data_bytes / cost.ost_bandwidth_bps +            // read source
      data_bytes / cost.sort_bandwidth_bps +           // sort
      (data_bytes + perm_bytes) / cost.ost_write_bandwidth_bps;
  report.extra_bytes =
      static_cast<std::uint64_t>(data_bytes + perm_bytes);
  return report;
}

Result<std::vector<std::uint64_t>> map_to_source_positions(
    const obj::ObjectStore& store, const obj::ObjectDescriptor& replica,
    Extent1D sorted_extent, const pfs::ReadContext& ctx) {
  if (!replica.is_sorted_replica()) {
    return Status::InvalidArgument("object is not a sorted replica");
  }
  if (sorted_extent.end() > replica.num_elements) {
    return Status::OutOfRange("sorted extent beyond replica");
  }
  std::vector<std::uint64_t> positions(
      static_cast<std::size_t>(sorted_extent.count));
  if (sorted_extent.count == 0) return positions;
  PDC_ASSIGN_OR_RETURN(pfs::PfsFile pf,
                       store.cluster().open(replica.permutation_file));
  PDC_RETURN_IF_ERROR(
      pf.read(sorted_extent.offset * sizeof(std::uint64_t),
              {reinterpret_cast<std::uint8_t*>(positions.data()),
               positions.size() * sizeof(std::uint64_t)},
              ctx));
  return positions;
}

}  // namespace pdc::sortrep
