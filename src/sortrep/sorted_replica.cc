#include "sortrep/sorted_replica.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <numeric>
#include <type_traits>

#include "common/exec_pool.h"
#include "obj/type_dispatch.h"

namespace pdc::sortrep {
namespace {

/// Fixed chunk granule for the parallel argsort.  Chunk boundaries depend
/// only on n — never on the thread count — and the (value, position)
/// comparator below is a strict total order (positions are distinct), so
/// the sorted permutation is unique: every schedule, and the serial
/// std::stable_sort fallback, produces the same bytes.
constexpr std::uint64_t kSortChunk = 1u << 15;

/// PAM-style segmented two-run merge: split A evenly, binary-search each
/// split key's rank in B, merge the resulting disjoint segment pairs into
/// disjoint output slices concurrently.
template <typename Less>
void merge_runs(const std::uint64_t* a, std::size_t na,
                const std::uint64_t* b, std::size_t nb, std::uint64_t* out,
                const Less& less, exec::ThreadPool* pool) {
  constexpr std::size_t kSegments = 8;
  if (pool == nullptr || na < kSegments || na + nb < 4 * kSortChunk) {
    std::merge(a, a + na, b, b + nb, out, less);
    return;
  }
  std::array<std::size_t, kSegments + 1> sa{};
  std::array<std::size_t, kSegments + 1> sb{};
  for (std::size_t s = 0; s <= kSegments; ++s) {
    sa[s] = na * s / kSegments;
    sb[s] = s == 0 ? 0
            : s == kSegments
                ? nb
                : static_cast<std::size_t>(
                      std::lower_bound(b, b + nb, a[sa[s]], less) - b);
  }
  exec::parallel_for(pool, kSegments, [&](std::size_t s) {
    std::merge(a + sa[s], a + sa[s + 1], b + sb[s], b + sb[s + 1],
               out + sa[s] + sb[s], less);
  });
}

/// Deterministic parallel argsort of [0, n) by (values[i], i): sort fixed
/// chunks concurrently, then bottom-up pairwise merge rounds.  Falls back
/// to the classic serial stable_sort when no pool is given.
template <typename T>
std::vector<std::uint64_t> parallel_argsort(const T* values, std::uint64_t n,
                                            exec::ThreadPool* pool) {
  std::vector<std::uint64_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  if (pool == nullptr || n <= 2 * kSortChunk) {
    std::stable_sort(perm.begin(), perm.end(),
                     [values](std::uint64_t a, std::uint64_t b) {
                       return values[a] < values[b];
                     });
    return perm;
  }
  // Tie-break on the original position: total order, and exactly the
  // order stable_sort-by-value produces.
  const auto less = [values](std::uint64_t a, std::uint64_t b) {
    return values[a] < values[b] || (values[a] == values[b] && a < b);
  };
  const auto nchunks =
      static_cast<std::size_t>((n + kSortChunk - 1) / kSortChunk);
  exec::parallel_for(pool, nchunks, [&](std::size_t c) {
    const auto lo = static_cast<std::ptrdiff_t>(c * kSortChunk);
    const auto hi = static_cast<std::ptrdiff_t>(
        std::min<std::uint64_t>(n, (c + 1) * kSortChunk));
    std::sort(perm.begin() + lo, perm.begin() + hi, less);
  });
  std::vector<std::uint64_t> tmp(perm.size());
  std::uint64_t* src = perm.data();
  std::uint64_t* dst = tmp.data();
  for (std::uint64_t run = kSortChunk; run < n; run *= 2) {
    const auto npairs = static_cast<std::size_t>((n + 2 * run - 1) / (2 * run));
    exec::parallel_for(pool, npairs, [&](std::size_t p) {
      const std::uint64_t lo = p * 2 * run;
      const std::uint64_t mid = std::min(n, lo + run);
      const std::uint64_t hi = std::min(n, lo + 2 * run);
      // Late rounds have few pairs; let the merge itself go parallel then.
      merge_runs(src + lo, static_cast<std::size_t>(mid - lo), src + mid,
                 static_cast<std::size_t>(hi - mid), dst + lo, less,
                 npairs <= 2 ? pool : nullptr);
    });
    std::swap(src, dst);
  }
  if (src != perm.data()) {
    std::copy(src, src + n, perm.data());
  }
  return perm;
}

}  // namespace

Result<BuildReport> build_sorted_replica(obj::ObjectStore& store,
                                         ObjectId source) {
  PDC_ASSIGN_OR_RETURN(const obj::ObjectDescriptor* src, store.get(source));
  obj::ImportOptions options;
  options.region_size_bytes =
      src->region_size_elements * src->element_size();
  return build_sorted_replica(store, source, options);
}

Result<BuildReport> build_sorted_replica(obj::ObjectStore& store,
                                         ObjectId source,
                                         const obj::ImportOptions& options) {
  PDC_ASSIGN_OR_RETURN(const obj::ObjectDescriptor* src, store.get(source));
  if (src->is_sorted_replica()) {
    return Status::InvalidArgument("source is itself a sorted replica");
  }
  if (store.sorted_replica_of(source).has_value()) {
    return Status::AlreadyExists("sorted replica already exists");
  }

  const std::size_t elem_size = src->element_size();
  const std::uint64_t n = src->num_elements;
  exec::ThreadPool* pool = options.pool;
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::uint8_t> raw(static_cast<std::size_t>(n * elem_size));
  PDC_RETURN_IF_ERROR(
      store.read_elements(*src, {0, n}, raw, {}));

  // NaN admits no strict weak ordering: std::stable_sort on it is UB and
  // the replica's binary-search contract would be meaningless anyway.
  // The pre-scan fans out over fixed chunks; "any NaN anywhere" is a
  // commutative OR, so the verdict is schedule-independent.
  const bool has_nan = obj::dispatch_type(src->type, [&](auto tag) {
    using T = decltype(tag);
    if constexpr (std::is_floating_point_v<T>) {
      const T* values = reinterpret_cast<const T*>(raw.data());
      std::atomic<bool> found{false};
      constexpr std::uint64_t kNanChunk = 1u << 16;
      const auto nchunks =
          static_cast<std::size_t>((n + kNanChunk - 1) / kNanChunk);
      exec::parallel_for(pool, nchunks, [&](std::size_t c) {
        if (found.load(std::memory_order_relaxed)) return;
        const std::uint64_t hi = std::min(n, (c + 1) * kNanChunk);
        for (std::uint64_t i = c * kNanChunk; i < hi; ++i) {
          if (values[i] != values[i]) {
            found.store(true, std::memory_order_relaxed);
            return;
          }
        }
      });
      return found.load();
    }
    return false;
  });
  if (has_nan) {
    return Status::InvalidArgument(
        "cannot build a sorted replica over NaN values");
  }

  // argsort by value, stable so equal values keep original order (the
  // parallel form tie-breaks on position, which is the same order), then
  // gather the values into sorted placement chunk-by-chunk.
  std::vector<std::uint64_t> perm;
  std::vector<std::uint8_t> sorted_bytes(raw.size());
  obj::dispatch_type(src->type, [&](auto tag) {
    using T = decltype(tag);
    const T* values = reinterpret_cast<const T*>(raw.data());
    perm = parallel_argsort(values, n, pool);
    T* out = reinterpret_cast<T*>(sorted_bytes.data());
    const auto nchunks =
        static_cast<std::size_t>((n + kSortChunk - 1) / kSortChunk);
    exec::parallel_for(pool, nchunks, [&](std::size_t c) {
      const std::uint64_t hi = std::min(n, (c + 1) * kSortChunk);
      for (std::uint64_t i = c * kSortChunk; i < hi; ++i) {
        out[i] = values[perm[i]];
      }
    });
  });

  PDC_ASSIGN_OR_RETURN(
      const ObjectId replica_id,
      store.import_raw(src->container_id, src->name + ".sorted", src->type,
                       sorted_bytes, n, options));

  // Permutation file: u64 original position per sorted position.
  const std::string perm_file = "obj_" + std::to_string(replica_id) + ".perm";
  PDC_ASSIGN_OR_RETURN(pfs::PfsFile pf, store.cluster().create(perm_file));
  PDC_RETURN_IF_ERROR(pf.write(
      0, {reinterpret_cast<const std::uint8_t*>(perm.data()),
          perm.size() * sizeof(std::uint64_t)}));
  PDC_RETURN_IF_ERROR(store.link_sorted_replica(replica_id, source, perm_file));

  // One-time cost: read source, comparison sort, write replica + perm.
  const CostModel& cost = store.cluster().config().cost;
  const double data_bytes = static_cast<double>(n) * elem_size;
  const double perm_bytes = static_cast<double>(n) * sizeof(std::uint64_t);
  BuildReport report;
  report.replica_id = replica_id;
  report.build_cost_seconds =
      data_bytes / cost.ost_bandwidth_bps +            // read source
      data_bytes / cost.sort_bandwidth_bps +           // sort
      (data_bytes + perm_bytes) / cost.ost_write_bandwidth_bps;
  report.extra_bytes =
      static_cast<std::uint64_t>(data_bytes + perm_bytes);
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  report.build_threads = pool == nullptr ? 1 : pool->size();
  return report;
}

Status rebuild_sorted_replica(obj::ObjectStore& store, ObjectId source,
                              exec::ThreadPool* pool) {
  PDC_ASSIGN_OR_RETURN(const obj::ObjectDescriptor* src, store.get(source));
  const auto replica_id = store.sorted_replica_of(source);
  if (!replica_id.has_value()) {
    return Status::NotFound("no sorted replica to rebuild");
  }
  PDC_ASSIGN_OR_RETURN(const obj::ObjectDescriptor* rep,
                       store.get(*replica_id));

  const std::size_t elem_size = src->element_size();
  const std::uint64_t n = src->num_elements;
  std::vector<std::uint8_t> raw(static_cast<std::size_t>(n * elem_size));
  PDC_RETURN_IF_ERROR(store.read_elements(*src, {0, n}, raw, {}));

  const bool has_nan = obj::dispatch_type(src->type, [&](auto tag) {
    using T = decltype(tag);
    if constexpr (std::is_floating_point_v<T>) {
      const T* values = reinterpret_cast<const T*>(raw.data());
      for (std::uint64_t i = 0; i < n; ++i) {
        if (values[i] != values[i]) return true;
      }
    }
    return false;
  });
  if (has_nan) {
    // Writes introduced NaN; the replica stays on the merged-read path
    // (delta log) rather than absorbing an unsortable dataset.
    return Status::InvalidArgument(
        "cannot rebuild a sorted replica over NaN values");
  }

  std::vector<std::uint64_t> perm;
  std::vector<std::uint8_t> sorted_bytes(raw.size());
  obj::dispatch_type(src->type, [&](auto tag) {
    using T = decltype(tag);
    const T* values = reinterpret_cast<const T*>(raw.data());
    perm = parallel_argsort(values, n, pool);
    T* out = reinterpret_cast<T*>(sorted_bytes.data());
    const auto nchunks =
        static_cast<std::size_t>((n + kSortChunk - 1) / kSortChunk);
    exec::parallel_for(pool, nchunks, [&](std::size_t c) {
      const std::uint64_t hi = std::min(n, (c + 1) * kSortChunk);
      for (std::uint64_t i = c * kSortChunk; i < hi; ++i) {
        out[i] = values[perm[i]];
      }
    });
  });

  PDC_RETURN_IF_ERROR(
      store.reset_object_data(*replica_id, sorted_bytes, n, pool));
  PDC_ASSIGN_OR_RETURN(pfs::PfsFile pf,
                       store.cluster().create(rep->permutation_file));
  PDC_RETURN_IF_ERROR(pf.write(
      0, {reinterpret_cast<const std::uint8_t*>(perm.data()),
          perm.size() * sizeof(std::uint64_t)}));
  return store.mark_replica_synced(source);
}

Result<std::vector<std::uint64_t>> map_to_source_positions(
    const obj::ObjectStore& store, const obj::ObjectDescriptor& replica,
    Extent1D sorted_extent, const pfs::ReadContext& ctx) {
  if (!replica.is_sorted_replica()) {
    return Status::InvalidArgument("object is not a sorted replica");
  }
  if (sorted_extent.end() > replica.num_elements) {
    return Status::OutOfRange("sorted extent beyond replica");
  }
  std::vector<std::uint64_t> positions(
      static_cast<std::size_t>(sorted_extent.count));
  if (sorted_extent.count == 0) return positions;
  PDC_ASSIGN_OR_RETURN(pfs::PfsFile pf,
                       store.cluster().open(replica.permutation_file));
  PDC_RETURN_IF_ERROR(
      pf.read(sorted_extent.offset * sizeof(std::uint64_t),
              {reinterpret_cast<std::uint8_t*>(positions.data()),
               positions.size() * sizeof(std::uint64_t)},
              ctx));
  return positions;
}

}  // namespace pdc::sortrep
