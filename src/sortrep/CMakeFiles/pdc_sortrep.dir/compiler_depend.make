# Empty compiler generated dependencies file for pdc_sortrep.
# This may be replaced when dependencies are built.
