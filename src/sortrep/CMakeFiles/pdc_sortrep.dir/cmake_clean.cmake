file(REMOVE_RECURSE
  "CMakeFiles/pdc_sortrep.dir/sorted_replica.cc.o"
  "CMakeFiles/pdc_sortrep.dir/sorted_replica.cc.o.d"
  "libpdc_sortrep.a"
  "libpdc_sortrep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdc_sortrep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
