file(REMOVE_RECURSE
  "libpdc_sortrep.a"
)
