// The "HDF5-F" baseline: a hand-optimized parallel full scan over h5lite
// files (paper §VI: read the entire dataset into memory once, then scan
// every element per query).
//
// `num_ranks` emulates the paper's 64 MPI processes: each rank loads and
// scans a contiguous slab.  Simulated elapsed times are the max over ranks
// (ranks run concurrently); real work is done by a thread pool.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "common/cost_model.h"
#include "common/interval.h"
#include "common/status.h"
#include "common/types.h"
#include "h5lite/h5lite.h"

namespace pdc::h5lite {

/// One conjunct of a compound scan condition.
struct ScanCondition {
  std::string dataset;
  ValueInterval interval;
};

/// Outcome of one scan pass.
struct FullScanResult {
  std::uint64_t num_hits = 0;
  std::vector<std::uint64_t> positions;  ///< filled if requested
  double scan_elapsed_s = 0.0;           ///< simulated, max over ranks
};

class ParallelFullScan {
 public:
  ParallelFullScan(const pfs::PfsCluster& cluster, const H5LiteReader& reader,
                   std::uint32_t num_ranks);

  /// Read the named datasets fully into memory, slab-parallel across ranks.
  /// All datasets must have the same element count.
  Status load(std::span<const std::string> dataset_names);

  /// Simulated time of the load phase (max over ranks).
  [[nodiscard]] double load_elapsed_seconds() const noexcept {
    return load_elapsed_s_;
  }
  [[nodiscard]] std::uint64_t bytes_loaded() const noexcept {
    return bytes_loaded_;
  }

  /// Evaluate the AND of `conditions` over the loaded columns.
  Result<FullScanResult> scan(std::span<const ScanCondition> conditions,
                              bool collect_positions) const;

  [[nodiscard]] std::uint64_t num_elements() const noexcept {
    return num_elements_;
  }

 private:
  struct Column {
    PdcType type = PdcType::kFloat;
    std::vector<std::uint8_t> bytes;
  };

  const pfs::PfsCluster& cluster_;
  const H5LiteReader& reader_;
  std::uint32_t num_ranks_;
  std::map<std::string, Column> columns_;
  std::uint64_t num_elements_ = 0;
  std::uint64_t bytes_loaded_ = 0;
  double load_elapsed_s_ = 0.0;
};

}  // namespace pdc::h5lite
