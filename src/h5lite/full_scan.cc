#include "h5lite/full_scan.h"

#include <algorithm>

#include "common/exec_pool.h"

namespace pdc::h5lite {
namespace {

/// Apply `interval` to `flags` over one typed column slab.
template <PdcElement T>
void filter_slab(const std::uint8_t* column_bytes, const ValueInterval& q,
                 std::uint64_t lo, std::uint64_t hi, std::uint8_t* flags) {
  const T* values = reinterpret_cast<const T*>(column_bytes);
  for (std::uint64_t i = lo; i < hi; ++i) {
    flags[i] &= static_cast<std::uint8_t>(
        q.contains(static_cast<double>(values[i])));
  }
}

void filter_slab_dispatch(PdcType type, const std::uint8_t* bytes,
                          const ValueInterval& q, std::uint64_t lo,
                          std::uint64_t hi, std::uint8_t* flags) {
  switch (type) {
    case PdcType::kFloat:
      return filter_slab<float>(bytes, q, lo, hi, flags);
    case PdcType::kDouble:
      return filter_slab<double>(bytes, q, lo, hi, flags);
    case PdcType::kInt32:
      return filter_slab<std::int32_t>(bytes, q, lo, hi, flags);
    case PdcType::kUInt32:
      return filter_slab<std::uint32_t>(bytes, q, lo, hi, flags);
    case PdcType::kInt64:
      return filter_slab<std::int64_t>(bytes, q, lo, hi, flags);
    case PdcType::kUInt64:
      return filter_slab<std::uint64_t>(bytes, q, lo, hi, flags);
  }
}

}  // namespace

ParallelFullScan::ParallelFullScan(const pfs::PfsCluster& cluster,
                                   const H5LiteReader& reader,
                                   std::uint32_t num_ranks)
    : cluster_(cluster),
      reader_(reader),
      num_ranks_(std::max<std::uint32_t>(1, num_ranks)) {}

Status ParallelFullScan::load(std::span<const std::string> dataset_names) {
  // Resolve infos first so errors surface before any I/O.
  std::vector<DatasetInfo> infos;
  for (const std::string& name : dataset_names) {
    PDC_ASSIGN_OR_RETURN(DatasetInfo info, reader_.dataset(name));
    if (!infos.empty() && info.num_elements != infos.front().num_elements) {
      return Status::InvalidArgument(
          "datasets have mismatched element counts");
    }
    infos.push_back(std::move(info));
  }
  if (infos.empty()) {
    return Status::InvalidArgument("no datasets requested");
  }
  num_elements_ = infos.front().num_elements;

  exec::ThreadPool pool(num_ranks_);
  std::vector<CostLedger> rank_ledgers(num_ranks_);
  Status first_error;
  std::mutex error_mu;

  for (const DatasetInfo& info : infos) {
    Column& col = columns_[info.name];
    col.type = info.type;
    col.bytes.resize(static_cast<std::size_t>(info.byte_size()));
    const std::uint64_t per_rank =
        (num_elements_ + num_ranks_ - 1) / num_ranks_;
    const std::size_t elem_size = pdc_type_size(info.type);
    // One task per MPI-style rank; each rank owns a contiguous slab, so
    // task granularity matches the baseline's modeled rank partitioning.
    exec::parallel_for(&pool, num_ranks_, [&](std::size_t rank) {
      const std::uint64_t lo = rank * per_rank;
      const std::uint64_t hi = std::min(num_elements_, lo + per_rank);
      if (lo >= hi) return;
      const pfs::ReadContext ctx{&rank_ledgers[rank], num_ranks_, {}};
      const Status s = reader_.file_read_raw(
          info, lo * elem_size,
          {col.bytes.data() + lo * elem_size,
           static_cast<std::size_t>((hi - lo) * elem_size)},
          ctx);
      if (!s.ok()) {
        std::lock_guard lock(error_mu);
        if (first_error.ok()) first_error = s;
      }
    });
    bytes_loaded_ += info.byte_size();
  }
  PDC_RETURN_IF_ERROR(first_error);

  for (const CostLedger& l : rank_ledgers) {
    load_elapsed_s_ = std::max(load_elapsed_s_, l.io_seconds());
  }
  return Status::Ok();
}

Result<FullScanResult> ParallelFullScan::scan(
    std::span<const ScanCondition> conditions, bool collect_positions) const {
  if (columns_.empty()) {
    return Status::FailedPrecondition("load() before scan()");
  }
  for (const ScanCondition& c : conditions) {
    if (!columns_.contains(c.dataset)) {
      return Status::NotFound("column not loaded: " + c.dataset);
    }
  }
  if (conditions.empty()) {
    return Status::InvalidArgument("empty condition list");
  }

  const std::uint64_t n = num_elements_;
  std::vector<std::uint8_t> flags(static_cast<std::size_t>(n), 1);
  exec::ThreadPool pool(num_ranks_);
  const std::uint64_t per_rank = (n + num_ranks_ - 1) / num_ranks_;
  std::vector<double> rank_cpu(num_ranks_, 0.0);
  const CostModel& cost = cluster_.config().cost;

  exec::parallel_for(&pool, num_ranks_, [&](std::size_t rank) {
    const std::uint64_t lo = rank * per_rank;
    const std::uint64_t hi = std::min(n, lo + per_rank);
    if (lo >= hi) return;
    for (const ScanCondition& c : conditions) {
      const Column& col = columns_.at(c.dataset);
      filter_slab_dispatch(col.type, col.bytes.data(), c.interval, lo, hi,
                           flags.data());
      // The baseline scans every element for every conjunct.
      rank_cpu[rank] +=
          cost.scan_cost((hi - lo) * pdc_type_size(col.type));
    }
  });

  FullScanResult result;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (flags[i]) {
      ++result.num_hits;
      if (collect_positions) result.positions.push_back(i);
    }
  }
  result.scan_elapsed_s = *std::max_element(rank_cpu.begin(), rank_cpu.end());
  return result;
}

}  // namespace pdc::h5lite
