# Empty compiler generated dependencies file for pdc_h5lite.
# This may be replaced when dependencies are built.
