file(REMOVE_RECURSE
  "libpdc_h5lite.a"
)
