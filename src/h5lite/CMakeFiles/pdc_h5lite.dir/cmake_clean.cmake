file(REMOVE_RECURSE
  "CMakeFiles/pdc_h5lite.dir/full_scan.cc.o"
  "CMakeFiles/pdc_h5lite.dir/full_scan.cc.o.d"
  "CMakeFiles/pdc_h5lite.dir/h5lite.cc.o"
  "CMakeFiles/pdc_h5lite.dir/h5lite.cc.o.d"
  "libpdc_h5lite.a"
  "libpdc_h5lite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdc_h5lite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
