#include "h5lite/h5lite.h"

#include <algorithm>

#include "common/serial.h"

namespace pdc::h5lite {

Result<H5LiteWriter> H5LiteWriter::Create(pfs::PfsCluster& cluster,
                                          std::string_view filename) {
  PDC_ASSIGN_OR_RETURN(pfs::PfsFile file, cluster.create(filename));
  return H5LiteWriter(std::move(file));
}

Status H5LiteWriter::add_dataset_raw(std::string_view name, PdcType type,
                                     std::span<const std::uint8_t> bytes,
                                     std::uint64_t num_elements) {
  if (finished_) {
    return Status::FailedPrecondition("writer already finished");
  }
  const auto dup = std::find_if(table_.begin(), table_.end(),
                                [&](const DatasetInfo& d) {
                                  return d.name == name;
                                });
  if (dup != table_.end()) {
    return Status::AlreadyExists("dataset exists: " + std::string(name));
  }
  PDC_RETURN_IF_ERROR(file_.write(cursor_, bytes));
  table_.push_back(DatasetInfo{std::string(name), type, num_elements, cursor_});
  cursor_ += bytes.size();
  return Status::Ok();
}

Status H5LiteWriter::finish() {
  if (finished_) {
    return Status::FailedPrecondition("writer already finished");
  }
  SerialWriter w;
  w.put<std::uint64_t>(table_.size());
  for (const DatasetInfo& d : table_) {
    w.put_string(d.name);
    w.put(static_cast<std::uint8_t>(d.type));
    w.put(d.num_elements);
    w.put(d.byte_offset);
  }
  // Trailer: table offset + magic (fixed 16 bytes at EOF).
  w.put<std::uint64_t>(cursor_);
  w.put<std::uint64_t>(kMagic);
  PDC_RETURN_IF_ERROR(file_.write(cursor_, w.bytes()));
  finished_ = true;
  return Status::Ok();
}

Result<H5LiteReader> H5LiteReader::Open(const pfs::PfsCluster& cluster,
                                        std::string_view filename) {
  PDC_ASSIGN_OR_RETURN(pfs::PfsFile file, cluster.open(filename));
  PDC_ASSIGN_OR_RETURN(const std::uint64_t fsize, file.size());
  if (fsize < 16) {
    return Status::Corruption("h5lite file too small");
  }
  std::uint8_t trailer[16];
  PDC_RETURN_IF_ERROR(file.read(fsize - 16, trailer, {}));
  SerialReader tr(trailer);
  std::uint64_t table_offset = 0;
  std::uint64_t magic = 0;
  PDC_RETURN_IF_ERROR(tr.get(table_offset));
  PDC_RETURN_IF_ERROR(tr.get(magic));
  if (magic != kMagic) {
    return Status::Corruption("h5lite magic mismatch");
  }
  if (table_offset + 16 > fsize) {
    return Status::Corruption("h5lite table offset out of bounds");
  }

  std::vector<std::uint8_t> table_bytes(
      static_cast<std::size_t>(fsize - 16 - table_offset));
  PDC_RETURN_IF_ERROR(file.read(table_offset, table_bytes, {}));
  SerialReader r(table_bytes);
  std::uint64_t count = 0;
  PDC_RETURN_IF_ERROR(r.get(count));
  std::vector<DatasetInfo> table;
  table.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    DatasetInfo d;
    PDC_RETURN_IF_ERROR(r.get_string(d.name));
    std::uint8_t type = 0;
    PDC_RETURN_IF_ERROR(r.get(type));
    if (type > static_cast<std::uint8_t>(PdcType::kUInt64)) {
      return Status::Corruption("h5lite dataset type invalid");
    }
    d.type = static_cast<PdcType>(type);
    PDC_RETURN_IF_ERROR(r.get(d.num_elements));
    PDC_RETURN_IF_ERROR(r.get(d.byte_offset));
    if (d.byte_offset + d.byte_size() > table_offset) {
      return Status::Corruption("h5lite dataset extent out of bounds");
    }
    table.push_back(std::move(d));
  }
  return H5LiteReader(std::move(file), std::move(table));
}

Result<DatasetInfo> H5LiteReader::dataset(std::string_view name) const {
  for (const DatasetInfo& d : table_) {
    if (d.name == name) return d;
  }
  return Status::NotFound("dataset not found: " + std::string(name));
}

}  // namespace pdc::h5lite
