// h5lite: a minimal self-describing scientific container file format.
//
// Stands in for HDF5 in the paper's "HDF5-F" baseline: named, typed 1-D
// datasets in a single file on the parallel file system.  Layout:
//
//   [dataset 0 raw bytes][dataset 1 raw bytes]...[dataset table][trailer]
//
// The trailer (fixed 16 bytes at EOF: u64 table offset + magic) locates the
// dataset table, so files are written in one streaming pass.  All I/O goes
// through the simulated PFS, which keeps the baseline and PDC on identical
// storage footing.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "pfs/pfs.h"

namespace pdc::h5lite {

inline constexpr std::uint64_t kMagic = 0x4835'4C49'5445'3031ull;  // "H5LITE01"

/// One named dataset inside a file.
struct DatasetInfo {
  std::string name;
  PdcType type = PdcType::kFloat;
  std::uint64_t num_elements = 0;
  std::uint64_t byte_offset = 0;  ///< where the raw values start in the file

  [[nodiscard]] std::uint64_t byte_size() const noexcept {
    return num_elements * pdc_type_size(type);
  }
};

/// Streaming writer; datasets are appended then finalized with finish().
class H5LiteWriter {
 public:
  /// Create (truncate) `filename` on the cluster.
  static Result<H5LiteWriter> Create(pfs::PfsCluster& cluster,
                                     std::string_view filename);

  /// Append one typed dataset.  Name must be unique within the file.
  template <PdcElement T>
  Status add_dataset(std::string_view name, std::span<const T> data) {
    return add_dataset_raw(
        name, kPdcTypeOf<T>,
        {reinterpret_cast<const std::uint8_t*>(data.data()),
         data.size_bytes()},
        data.size());
  }

  /// Write the dataset table + trailer.  No datasets may follow.
  Status finish();

 private:
  explicit H5LiteWriter(pfs::PfsFile file) : file_(std::move(file)) {}

  Status add_dataset_raw(std::string_view name, PdcType type,
                         std::span<const std::uint8_t> bytes,
                         std::uint64_t num_elements);

  pfs::PfsFile file_;
  std::vector<DatasetInfo> table_;
  std::uint64_t cursor_ = 0;
  bool finished_ = false;
};

/// Reader over a finished file.
class H5LiteReader {
 public:
  static Result<H5LiteReader> Open(const pfs::PfsCluster& cluster,
                                   std::string_view filename);

  [[nodiscard]] const std::vector<DatasetInfo>& datasets() const noexcept {
    return table_;
  }

  [[nodiscard]] Result<DatasetInfo> dataset(std::string_view name) const;

  /// Read `out.size()` elements starting at element `elem_offset`.
  template <PdcElement T>
  Status read(const DatasetInfo& ds, std::uint64_t elem_offset,
              std::span<T> out, const pfs::ReadContext& ctx) const {
    if (kPdcTypeOf<T> != ds.type) {
      return Status::InvalidArgument("dataset type mismatch: " + ds.name);
    }
    if (elem_offset + out.size() > ds.num_elements) {
      return Status::OutOfRange("read beyond dataset " + ds.name);
    }
    return file_.read(ds.byte_offset + elem_offset * sizeof(T),
                      {reinterpret_cast<std::uint8_t*>(out.data()),
                       out.size_bytes()},
                      ctx);
  }

  /// Untyped read of a byte range within a dataset (offset relative to the
  /// dataset's first byte).
  Status file_read_raw(const DatasetInfo& ds, std::uint64_t byte_offset,
                       std::span<std::uint8_t> out,
                       const pfs::ReadContext& ctx) const {
    if (byte_offset + out.size() > ds.byte_size()) {
      return Status::OutOfRange("raw read beyond dataset " + ds.name);
    }
    return file_.read(ds.byte_offset + byte_offset, out, ctx);
  }

 private:
  H5LiteReader(pfs::PfsFile file, std::vector<DatasetInfo> table)
      : file_(std::move(file)), table_(std::move(table)) {}

  pfs::PfsFile file_;
  std::vector<DatasetInfo> table_;
};

}  // namespace pdc::h5lite
