// Plasma-physics scenario (the paper's motivating workload): locate the
// highly energetic particles in a VPIC magnetic-reconnection dataset.
//
//   $ ./examples/vpic_energy_query [num_particles]
//
// Imports a synthetic VPIC dataset (7 variables), builds the bitmap index
// and the energy-sorted replica, then runs "Energy > 2.0" plus a compound
// energy+position query under all four strategies, comparing simulated
// query times and demonstrating batched data retrieval.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <vector>

#include "obj/object_store.h"
#include "pfs/pfs.h"
#include "query/query.h"
#include "query/service.h"
#include "sortrep/sorted_replica.h"
#include "workloads/vpic.h"

int main(int argc, char** argv) {
  using namespace pdc;

  const std::string scratch = "/tmp/pdc_vpic_example";
  std::filesystem::remove_all(scratch);
  pfs::PfsConfig pfs_config;
  pfs_config.root_dir = scratch;
  auto cluster = std::move(pfs::PfsCluster::Create(pfs_config)).value();

  workloads::VpicConfig vpic_config;
  vpic_config.num_particles = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                       : (1ull << 20);
  std::printf("generating %llu particles...\n",
              static_cast<unsigned long long>(vpic_config.num_particles));
  const workloads::VpicData data = workloads::generate_vpic(vpic_config);

  obj::ObjectStore store(*cluster);
  obj::ImportOptions import_options;
  import_options.region_size_bytes = 128 * 1024;
  auto objects = workloads::import_vpic(store, data, import_options);
  if (!objects.ok()) {
    std::fprintf(stderr, "import: %s\n", objects.status().ToString().c_str());
    return 1;
  }

  // Index + sorted replica for the energy variable (the primary query key).
  if (auto s = store.build_bitmap_index(objects->energy); !s.ok()) {
    std::fprintf(stderr, "index: %s\n", s.ToString().c_str());
    return 1;
  }
  auto replica =
      sortrep::build_sorted_replica(store, objects->energy, import_options);
  if (!replica.ok()) {
    std::fprintf(stderr, "replica: %s\n",
                 replica.status().ToString().c_str());
    return 1;
  }
  std::printf("sorted replica built: one-time cost %.2f s (simulated), "
              "%.1f MB extra storage\n",
              replica->build_cost_seconds,
              static_cast<double>(replica->extra_bytes) / 1e6);

  // "Energy > 2.0" under each strategy.
  std::printf("\n%-18s %12s %10s\n", "strategy", "query_ms", "hits");
  for (const auto strategy :
       {server::Strategy::kFullScan, server::Strategy::kHistogram,
        server::Strategy::kHistogramIndex,
        server::Strategy::kSortedHistogram}) {
    // from_env picks up PDC_QUERY_THREADS (the strategy is swept here).
    query::ServiceOptions options = query::ServiceOptions::from_env();
    options.strategy = strategy;
    options.num_servers = 8;
    query::QueryService service(store, options);
    const auto q = query::create(objects->energy, QueryOp::kGT, 2.0);
    auto nhits = service.get_num_hits(q);
    if (!nhits.ok()) {
      std::fprintf(stderr, "query: %s\n", nhits.status().ToString().c_str());
      return 1;
    }
    std::printf("%-18s %12.3f %10llu\n",
                std::string(server::strategy_name(strategy)).c_str(),
                1e3 * service.last_stats().sim_elapsed_seconds,
                static_cast<unsigned long long>(*nhits));
  }

  // The paper's compound query 1: energetic particles inside a spatial box.
  query::ServiceOptions options = query::ServiceOptions::from_env();
  options.num_servers = 8;
  query::QueryService service(store, options);
  using query::create;
  using query::q_and;
  query::QueryPtr box = create(objects->energy, QueryOp::kGT, 2.0);
  box = q_and(box, q_and(create(objects->x, QueryOp::kGT, 100.0),
                         create(objects->x, QueryOp::kLT, 200.0)));
  box = q_and(box, q_and(create(objects->y, QueryOp::kGT, -90.0),
                         create(objects->y, QueryOp::kLT, 0.0)));
  box = q_and(box, q_and(create(objects->z, QueryOp::kGT, 0.0),
                         create(objects->z, QueryOp::kLT, 66.0)));

  auto selection = service.get_selection(box);
  if (!selection.ok()) {
    std::fprintf(stderr, "compound: %s\n",
                 selection.status().ToString().c_str());
    return 1;
  }
  std::printf("\ncompound query (Energy>2 in box): %llu particles "
              "(%.5f%% selectivity)\n",
              static_cast<unsigned long long>(selection->num_hits),
              100.0 * static_cast<double>(selection->num_hits) /
                  static_cast<double>(data.size()));

  // Fetch a *different* variable at the selected locations (paper: memory
  // objects may differ from query objects), streamed in batches.
  std::uint64_t batches = 0;
  double ux_sum = 0.0;
  const Status s = service.get_data_batch(
      objects->ux, *selection, 4096,
      [&](std::span<const std::uint8_t> bytes, std::uint64_t) {
        const auto* ux = reinterpret_cast<const float*>(bytes.data());
        for (std::size_t i = 0; i < bytes.size() / sizeof(float); ++i) {
          ux_sum += ux[i];
        }
        ++batches;
      });
  if (!s.ok()) {
    std::fprintf(stderr, "batch: %s\n", s.ToString().c_str());
    return 1;
  }
  if (selection->num_hits > 0) {
    std::printf("mean Ux of selected particles: %.4f (streamed in %llu "
                "batches)\n",
                ux_sum / static_cast<double>(selection->num_hits),
                static_cast<unsigned long long>(batches));
  }

  std::filesystem::remove_all(scratch);
  return 0;
}
