// End-to-end tracing walkthrough: run one Fig. 3-style selectivity query
// ("2.0 < energy < 4.0") with QueryOptions::trace = true, then export the
// resulting span tree twice —
//   * binary trace file  (input to tools/trace2json), and
//   * Chrome trace_event JSON, directly loadable in chrome://tracing or
//     https://ui.perfetto.dev.
//
//   $ ./examples/fig3_trace [num_particles]
//   $ ./tools/trace2json /tmp/pdc_fig3_trace/fig3.pdct | head
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "obj/object_store.h"
#include "obs/trace.h"
#include "pfs/pfs.h"
#include "query/query.h"
#include "query/service.h"
#include "sortrep/sorted_replica.h"
#include "workloads/vpic.h"

int main(int argc, char** argv) {
  using namespace pdc;

  const std::string scratch = "/tmp/pdc_fig3_trace";
  std::filesystem::remove_all(scratch);
  pfs::PfsConfig pfs_config;
  pfs_config.root_dir = scratch;
  auto cluster = std::move(pfs::PfsCluster::Create(pfs_config)).value();

  workloads::VpicConfig vpic_config;
  vpic_config.num_particles = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                       : (1ull << 18);
  const workloads::VpicData data = workloads::generate_vpic(vpic_config);

  obj::ObjectStore store(*cluster);
  obj::ImportOptions import_options;
  import_options.region_size_bytes = 64 * 1024;
  auto objects = workloads::import_vpic(store, data, import_options);
  if (!objects.ok()) {
    std::fprintf(stderr, "import: %s\n", objects.status().ToString().c_str());
    return 1;
  }
  if (auto s = store.build_bitmap_index(objects->energy); !s.ok()) {
    std::fprintf(stderr, "index: %s\n", s.ToString().c_str());
    return 1;
  }

  query::ServiceOptions service_options;
  service_options.num_servers = 4;
  service_options.strategy = server::Strategy::kHistogramIndex;
  service_options.eval_threads = 4;
  query::QueryService service(store, service_options);

  const auto q =
      query::q_and(query::create(objects->energy, QueryOp::kGT, 2.0),
                   query::create(objects->energy, QueryOp::kLT, 4.0));
  auto hits = service.get_num_hits(q, query::QueryOptions{.trace = true});
  if (!hits.ok()) {
    std::fprintf(stderr, "query: %s\n", hits.status().ToString().c_str());
    return 1;
  }
  const auto trace = service.last_trace();
  if (trace == nullptr) {
    std::fprintf(stderr, "no trace captured\n");
    return 1;
  }
  std::printf("hits = %llu   simulated time = %.3f ms   spans = %zu\n",
              static_cast<unsigned long long>(*hits),
              service.last_stats().sim_elapsed_seconds * 1e3,
              trace->spans.size());

  const std::string trace_path = scratch + "/fig3.pdct";
  if (auto s = obs::write_trace_file(*trace, trace_path); !s.ok()) {
    std::fprintf(stderr, "write trace: %s\n", s.ToString().c_str());
    return 1;
  }
  const std::string json_path = scratch + "/fig3.json";
  {
    std::ofstream out(json_path, std::ios::binary);
    out << obs::chrome_trace_json(*trace);
  }
  std::printf("binary trace: %s  (render: ./tools/trace2json %s)\n",
              trace_path.c_str(), trace_path.c_str());
  std::printf("chrome JSON:  %s  (open in chrome://tracing)\n",
              json_path.c_str());

  // A taste of the tree on stdout: the top two levels of spans.
  for (const auto& span : trace->spans) {
    if (span.parent != 0) continue;
    std::printf("  %-14s %-10s %8llu us\n", span.name.c_str(),
                span.actor.c_str(),
                static_cast<unsigned long long>(span.end_us - span.start_us));
    for (const auto& child : trace->spans) {
      if (child.parent != span.id) continue;
      std::printf("    %-12s %-10s %8llu us\n", child.name.c_str(),
                  child.actor.c_str(),
                  static_cast<unsigned long long>(child.end_us -
                                                  child.start_us));
    }
  }
  return 0;
}
