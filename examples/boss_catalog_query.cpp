// Sky-survey scenario (paper §VI-C): combined metadata + data querying on
// a BOSS-style catalog of many small spectrum objects.
//
//   $ ./examples/boss_catalog_query [num_objects]
//
// Imports a catalog where every object carries RADEG/DECDEG/plate/fiber
// metadata and a flux spectrum, then answers: "how many flux samples in
// (0, 15) among the objects at sky cell (RADEG, DECDEG)?" — first resolving
// the metadata condition in memory, then running the data query only on the
// matching objects.
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "metadata/meta_store.h"
#include "obj/object_store.h"
#include "pfs/pfs.h"
#include "query/query.h"
#include "query/service.h"
#include "workloads/boss.h"

int main(int argc, char** argv) {
  using namespace pdc;

  const std::string scratch = "/tmp/pdc_boss_example";
  std::filesystem::remove_all(scratch);
  pfs::PfsConfig pfs_config;
  pfs_config.root_dir = scratch;
  auto cluster = std::move(pfs::PfsCluster::Create(pfs_config)).value();

  workloads::BossConfig boss_config;
  boss_config.num_objects =
      argc > 1 ? static_cast<std::uint32_t>(std::strtoul(argv[1], nullptr, 10))
               : 2000;
  boss_config.objects_per_cell = 500;
  boss_config.flux_samples = 1024;

  obj::ObjectStore store(*cluster);
  meta::MetaStore meta;
  auto catalog = workloads::import_boss(store, meta, boss_config);
  if (!catalog.ok()) {
    std::fprintf(stderr, "import: %s\n", catalog.status().ToString().c_str());
    return 1;
  }
  std::printf("catalog: %zu objects, %zu metadata attributes\n",
              catalog->flux_objects.size(), meta.num_attributes());

  // 1. Metadata query: the sky cell at (RADEG, DECDEG) — paper Fig. 5 uses
  //    "RADEG=153.17 AND DECDEG=23.06" selecting exactly 1000 objects.
  const std::vector<meta::MetaCondition> conditions{
      {"RADEG", QueryOp::kEQ, catalog->cell0_radeg},
      {"DECDEG", QueryOp::kEQ, catalog->cell0_decdeg},
  };
  const std::vector<ObjectId> matching = meta.query(conditions);
  std::printf("metadata query RADEG=%.2f AND DECDEG=%.2f -> %zu objects\n",
              catalog->cell0_radeg, catalog->cell0_decdeg, matching.size());

  // 2. Data query on each matching object: 0 < flux < 15.
  query::ServiceOptions options = query::ServiceOptions::from_env();
  options.num_servers = 4;
  query::QueryService service(store, options);

  std::uint64_t total_hits = 0;
  std::uint64_t total_samples = 0;
  double sim_seconds = 0.0;
  for (const ObjectId id : matching) {
    const auto q = query::q_and(query::create(id, QueryOp::kGT, 0.0),
                                query::create(id, QueryOp::kLT, 15.0));
    auto nhits = service.get_num_hits(q);
    if (!nhits.ok()) {
      std::fprintf(stderr, "data query: %s\n",
                   nhits.status().ToString().c_str());
      return 1;
    }
    total_hits += *nhits;
    total_samples += boss_config.flux_samples;
    sim_seconds += service.last_stats().sim_elapsed_seconds;
  }
  std::printf("data query 0<flux<15: %llu of %llu samples (%.1f%%), "
              "simulated total %.3f s\n",
              static_cast<unsigned long long>(total_hits),
              static_cast<unsigned long long>(total_samples),
              100.0 * static_cast<double>(total_hits) /
                  static_cast<double>(total_samples),
              sim_seconds);

  // 3. A tag query (paper: PDCquery_tag): all objects on one plate.
  const auto plate_objects =
      meta.query_tag("PLATE", std::int64_t{3500});
  std::printf("tag query PLATE=3500 -> %zu objects\n", plate_objects.size());

  std::filesystem::remove_all(scratch);
  return 0;
}
