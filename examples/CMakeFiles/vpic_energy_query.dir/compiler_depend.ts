# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for vpic_energy_query.
