# Empty dependencies file for vpic_energy_query.
# This may be replaced when dependencies are built.
