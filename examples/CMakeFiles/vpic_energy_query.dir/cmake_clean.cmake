file(REMOVE_RECURSE
  "CMakeFiles/vpic_energy_query.dir/vpic_energy_query.cpp.o"
  "CMakeFiles/vpic_energy_query.dir/vpic_energy_query.cpp.o.d"
  "vpic_energy_query"
  "vpic_energy_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpic_energy_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
