file(REMOVE_RECURSE
  "CMakeFiles/fig3_trace.dir/fig3_trace.cpp.o"
  "CMakeFiles/fig3_trace.dir/fig3_trace.cpp.o.d"
  "fig3_trace"
  "fig3_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
