# Empty compiler generated dependencies file for fig3_trace.
# This may be replaced when dependencies are built.
