# Empty dependencies file for boss_catalog_query.
# This may be replaced when dependencies are built.
