file(REMOVE_RECURSE
  "CMakeFiles/boss_catalog_query.dir/boss_catalog_query.cpp.o"
  "CMakeFiles/boss_catalog_query.dir/boss_catalog_query.cpp.o.d"
  "boss_catalog_query"
  "boss_catalog_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boss_catalog_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
