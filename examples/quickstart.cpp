// Quickstart: store an array as a PDC object, query it, fetch the matches.
//
//   $ ./examples/quickstart
//
// Walks through the full lifecycle: create a PFS-backed object store,
// import data (regions + histograms build automatically), start the query
// service, run a range query, and retrieve the matching values.
#include <cstdio>
#include <filesystem>
#include <vector>

#include "common/rng.h"
#include "obj/object_store.h"
#include "pfs/pfs.h"
#include "query/query.h"
#include "query/service.h"

int main() {
  using namespace pdc;

  // 1. A simulated parallel file system rooted in a scratch directory.
  const std::string scratch = "/tmp/pdc_quickstart";
  std::filesystem::remove_all(scratch);
  pfs::PfsConfig pfs_config;
  pfs_config.root_dir = scratch;
  auto cluster = pfs::PfsCluster::Create(pfs_config);
  if (!cluster.ok()) {
    std::fprintf(stderr, "PFS: %s\n", cluster.status().ToString().c_str());
    return 1;
  }

  // 2. An object store, a container, and one imported data object.
  //    Import decomposes the object into regions and builds local +
  //    global histograms as a side effect.
  obj::ObjectStore store(**cluster);
  const ObjectId container =
      std::move(store.create_container("demo")).value();

  Rng rng(7);
  std::vector<float> temperature(200000);
  for (auto& t : temperature) {
    t = static_cast<float>(300.0 + 25.0 * rng.normal());
  }
  obj::ImportOptions import_options;
  import_options.region_size_bytes = 64 * 1024;
  auto object = store.import_object<float>(
      container, "temperature", std::span<const float>(temperature),
      import_options);
  if (!object.ok()) {
    std::fprintf(stderr, "import: %s\n", object.status().ToString().c_str());
    return 1;
  }

  // 3. A query service: 4 PDC server threads, histogram strategy.
  // (from_env honours PDC_QUERY_STRATEGY / PDC_QUERY_THREADS overrides.)
  query::ServiceOptions service_options = query::ServiceOptions::from_env();
  service_options.num_servers = 4;
  query::QueryService service(store, service_options);

  // 4. Build and run "340 < temperature < 360" (paper Fig. 1 API shapes).
  const query::QueryPtr q =
      query::q_and(query::create(*object, QueryOp::kGT, 340.0),
                   query::create(*object, QueryOp::kLT, 360.0));

  auto nhits = service.get_num_hits(q);
  if (!nhits.ok()) {
    std::fprintf(stderr, "query: %s\n", nhits.status().ToString().c_str());
    return 1;
  }
  std::printf("hits: %llu of %zu (%.3f%%)\n",
              static_cast<unsigned long long>(*nhits), temperature.size(),
              100.0 * static_cast<double>(*nhits) / temperature.size());
  std::printf("simulated query time: %.3f ms (64-node cost model)\n",
              1e3 * service.last_stats().sim_elapsed_seconds);

  // 5. Locations + data retrieval.
  auto selection = std::move(service.get_selection(q)).value();
  std::vector<float> values(selection.num_hits);
  if (auto s = service.get_data<float>(*object, selection, values); !s.ok()) {
    std::fprintf(stderr, "get_data: %s\n", s.ToString().c_str());
    return 1;
  }
  if (!values.empty()) {
    std::printf("first match: temperature[%llu] = %.2f\n",
                static_cast<unsigned long long>(selection.positions.front()),
                values.front());
  }

  // 6. The object's global histogram is free metadata.
  auto histogram = std::move(service.get_histogram(*object)).value();
  std::printf("global histogram: %zu bins over [%.1f, %.1f]\n",
              histogram.num_bins(), histogram.min_value(),
              histogram.max_value());

  std::filesystem::remove_all(scratch);
  return 0;
}
