// Overload-robustness bench: deterministic virtual-time traffic replay.
//
// Sweeps offered load from half capacity to 4x capacity for both Poisson
// and bursty arrivals through TrafficDriver::simulate — the same
// WeightedFairQueue the servers run, with service times and retry jitter
// derived from the seed.  Every number in the emitted JSON is bit-stable
// for a given seed, so tools/check_bench.py --traffic can gate goodput
// and p99 against the committed BENCH_traffic.json without wall-clock
// noise.  A second section replays the 4x burst with two tenants at
// weights 3:1 to pin the weighted-fair split.
//
// Environment:
//   PDC_BENCH_JSON    output path (default BENCH_traffic.json)
//   PDC_TRAFFIC_SEED  master seed (default 42)
//
// Exits non-zero when the run violates the robustness claims itself
// (goodput collapse past saturation, queue bound exceeded, or a
// non-deterministic replay), so the bench-gate fails even without a
// baseline to diff.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "workloads/traffic.h"

namespace {

using pdc::bench::env_str;
using pdc::workloads::ArrivalProcess;
using pdc::workloads::SimParams;
using pdc::workloads::TrafficConfig;
using pdc::workloads::TrafficDriver;
using pdc::workloads::TrafficReport;

struct TrafficRow {
  ArrivalProcess arrival = ArrivalProcess::kPoisson;
  double load = 1.0;  ///< offered rate as a multiple of capacity_qps()
  TrafficReport report;
};

SimParams bench_params() {
  SimParams params;
  params.service_time_s = 1e-3;
  params.concurrency = 8;
  params.queue_limit = 64;
  params.retry_after_s = 2e-3;
  return params;
}

TrafficConfig bench_config(ArrivalProcess arrival, std::uint32_t tenants) {
  TrafficConfig config = TrafficConfig::from_env();
  config.arrival = arrival;
  config.num_queries = 4000;
  config.num_tenants = tenants;
  return config;
}

bool reports_equal(const TrafficReport& a, const TrafficReport& b) {
  return a.offered == b.offered && a.completed == b.completed &&
         a.dropped == b.dropped && a.shed_retries == b.shed_retries &&
         a.goodput_qps == b.goodput_qps && a.p50_s == b.p50_s &&
         a.p99_s == b.p99_s && a.queue_peak == b.queue_peak;
}

void emit_traffic_row(std::FILE* out, const TrafficRow& row, bool last) {
  const TrafficReport& r = row.report;
  std::fprintf(out,
               "    {\"arrival\": \"%s\", \"load\": %.2f, "
               "\"offered\": %llu, \"completed\": %llu, "
               "\"dropped\": %llu, \"sheds\": %llu, "
               "\"goodput_qps\": %.6f, \"p50_s\": %.9f, \"p99_s\": %.9f, "
               "\"queue_peak\": %.0f}%s\n",
               pdc::workloads::arrival_name(row.arrival).data(), row.load,
               static_cast<unsigned long long>(r.offered),
               static_cast<unsigned long long>(r.completed),
               static_cast<unsigned long long>(r.dropped),
               static_cast<unsigned long long>(r.shed_retries), r.goodput_qps,
               r.p50_s, r.p99_s, r.queue_peak, last ? "" : ",");
}

}  // namespace

int main() {
  const SimParams params = bench_params();
  const double capacity = params.capacity_qps();
  const double loads[] = {0.5, 1.0, 2.0, 4.0};
  const ArrivalProcess arrivals[] = {ArrivalProcess::kPoisson,
                                     ArrivalProcess::kBursty};

  int violations = 0;
  std::vector<TrafficRow> rows;
  for (ArrivalProcess arrival : arrivals) {
    double goodput_at_capacity = 0.0;
    for (double load : loads) {
      TrafficDriver driver(bench_config(arrival, 1));
      TrafficRow row;
      row.arrival = arrival;
      row.load = load;
      row.report = driver.simulate(params, load * capacity);
      std::printf("traffic  %-7s load %.2f  offered %6llu  completed %6llu  "
                  "dropped %5llu  sheds %6llu  goodput %9.1f q/s  "
                  "p99 %8.3f ms  qpeak %3.0f\n",
                  pdc::workloads::arrival_name(arrival).data(), load,
                  static_cast<unsigned long long>(row.report.offered),
                  static_cast<unsigned long long>(row.report.completed),
                  static_cast<unsigned long long>(row.report.dropped),
                  static_cast<unsigned long long>(row.report.shed_retries),
                  row.report.goodput_qps, row.report.p99_s * 1e3,
                  row.report.queue_peak);

      // Robustness self-checks: the bounded queue must actually bound, and
      // goodput past saturation must hold >= 70% of the at-capacity value
      // instead of collapsing (congestion-collapse is the failure mode the
      // admission control exists to prevent).
      if (row.report.queue_peak >
          static_cast<double>(params.queue_limit)) {
        std::fprintf(stderr,
                     "SELF-CHECK FAILED: %s load %.2f queue_peak %.0f "
                     "exceeds queue_limit %u\n",
                     pdc::workloads::arrival_name(arrival).data(), load,
                     row.report.queue_peak, params.queue_limit);
        ++violations;
      }
      if (load == 1.0) goodput_at_capacity = row.report.goodput_qps;
      if (load > 1.0 &&
          row.report.goodput_qps < 0.7 * goodput_at_capacity) {
        std::fprintf(stderr,
                     "SELF-CHECK FAILED: %s load %.2f goodput %.1f q/s "
                     "< 70%% of at-capacity goodput %.1f q/s\n",
                     pdc::workloads::arrival_name(arrival).data(), load,
                     row.report.goodput_qps, goodput_at_capacity);
        ++violations;
      }
      rows.push_back(std::move(row));
    }
  }

  // Determinism self-check: replaying the harshest configuration must
  // reproduce the stored report bit for bit, or the gate's diff would be
  // comparing noise.
  {
    TrafficDriver driver(bench_config(ArrivalProcess::kBursty, 1));
    TrafficReport replay = driver.simulate(params, 4.0 * capacity);
    if (!reports_equal(replay, rows.back().report)) {
      std::fprintf(stderr,
                   "SELF-CHECK FAILED: bursty 4x replay differs from first "
                   "run — simulate() is not deterministic\n");
      ++violations;
    }
  }

  // Weighted-fair split: two tenants at weights 3:1 replayed at 4x
  // capacity with an unbounded queue, so retries never blur the picture
  // and service order alone decides waiting time.  While both lanes are
  // backlogged the scheduler serves the heavy tenant ~3x as often, so its
  // latency distribution must sit clearly below the light tenant's —
  // inversion or equality means the weights stopped reaching the queue.
  TrafficConfig fair_config = bench_config(ArrivalProcess::kPoisson, 2);
  SimParams fair_params = params;
  fair_params.queue_limit = 0;  // unbounded: isolate scheduling from shedding
  fair_params.tenant_weights = {3.0, 1.0};
  TrafficDriver fair_driver(fair_config);
  const TrafficReport fair_report =
      fair_driver.simulate(fair_params, 4.0 * capacity);
  std::printf("fairness weights 3:1 at 4x load (unbounded queue):\n");
  for (const auto& tenant : fair_report.tenants) {
    std::printf("  tenant %u  offered %6llu  completed %6llu  "
                "mean %8.3f ms  p99 %8.3f ms\n",
                tenant.tenant,
                static_cast<unsigned long long>(tenant.offered),
                static_cast<unsigned long long>(tenant.completed),
                tenant.mean_s * 1e3, tenant.p99_s * 1e3);
  }
  if (fair_report.tenants.size() == 2) {
    const auto& heavy = fair_report.tenants[0];
    const auto& light = fair_report.tenants[1];
    if (heavy.mean_s >= light.mean_s || heavy.p99_s >= light.p99_s) {
      std::fprintf(stderr,
                   "SELF-CHECK FAILED: weight-3 tenant latency (mean %.3f "
                   "ms, p99 %.3f ms) not below weight-1 tenant (mean %.3f "
                   "ms, p99 %.3f ms)\n",
                   heavy.mean_s * 1e3, heavy.p99_s * 1e3, light.mean_s * 1e3,
                   light.p99_s * 1e3);
      ++violations;
    }
  } else {
    std::fprintf(stderr, "SELF-CHECK FAILED: expected 2 tenant reports, "
                         "got %zu\n", fair_report.tenants.size());
    ++violations;
  }

  const std::string json_path = env_str("PDC_BENCH_JSON",
                                        "BENCH_traffic.json");
  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "FATAL: cannot open %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"traffic\",\n");
  std::fprintf(out, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(
                   TrafficConfig::from_env().seed));
  std::fprintf(out, "  \"capacity_qps\": %.1f,\n", capacity);
  std::fprintf(out, "  \"queue_limit\": %u,\n", params.queue_limit);
  std::fprintf(out, "  \"traffic\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    emit_traffic_row(out, rows[i], i + 1 == rows.size());
  }
  std::fprintf(out, "  ],\n  \"fairness\": [\n");
  for (std::size_t i = 0; i < fair_report.tenants.size(); ++i) {
    const auto& tenant = fair_report.tenants[i];
    std::fprintf(out,
                 "    {\"tenant\": %u, \"weight\": %.1f, "
                 "\"offered\": %llu, \"completed\": %llu, "
                 "\"mean_s\": %.9f, \"p99_s\": %.9f}%s\n",
                 tenant.tenant,
                 i < fair_params.tenant_weights.size()
                     ? fair_params.tenant_weights[i] : 1.0,
                 static_cast<unsigned long long>(tenant.offered),
                 static_cast<unsigned long long>(tenant.completed),
                 tenant.mean_s, tenant.p99_s,
                 i + 1 == fair_report.tenants.size() ? "" : ",");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", json_path.c_str());

  if (violations > 0) {
    std::fprintf(stderr, "%d self-check violation(s)\n", violations);
    return 1;
  }
  return 0;
}
