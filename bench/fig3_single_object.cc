// Fig. 3 reproduction: single-object (Energy) query performance across the
// paper's 15 selectivity-laddered queries, five approaches (HDF5-F, PDC-F,
// PDC-H, PDC-HI, PDC-SH) and six region sizes.
//
// Paper region sizes are 4–128 MB on a 466 GB object; we scale the object
// down (default 2^21 particles = 8 MB/variable) and sweep region sizes
// 32 KB–1 MB so the regions-per-server regime matches.  Shapes to expect,
// per paper §VI-A:
//   - HDF5-F and PDC-F are flat (amortized full read + scan);
//     PDC-F ≈ 2x faster than HDF5-F;
//   - PDC-H sits 2–3x below PDC-F; PDC-HI 4–14x; PDC-SH is best and grows
//     to >1000x at the most selective queries;
//   - mid-range region sizes win; the largest regions degrade.
#include <vector>

#include "bench/bench_util.h"
#include "h5lite/full_scan.h"
#include "sortrep/sorted_replica.h"

namespace pdc::bench {
namespace {

using query::GetDataMode;
using query::QueryPtr;
using server::Strategy;

struct Measurement {
  double query_s = 0.0;
  double getdata_s = 0.0;
  std::uint64_t num_hits = 0;
};

/// Per-region-size PDC deployment over its own sub-cluster.
struct Deployment {
  std::unique_ptr<pfs::PfsCluster> cluster;
  std::unique_ptr<obj::ObjectStore> store;
  ObjectId energy = kInvalidObjectId;

  static Deployment create(const BenchWorld& world,
                           std::uint64_t region_bytes) {
    Deployment d;
    pfs::PfsConfig cfg = world.cluster->config();
    cfg.root_dir =
        world.scratch_dir + "/rs_" + std::to_string(region_bytes);
    d.cluster = unwrap(pfs::PfsCluster::Create(cfg), "sub-cluster");
    d.store = std::make_unique<obj::ObjectStore>(*d.cluster);
    const ObjectId container =
        unwrap(d.store->create_container("vpic"), "container");
    obj::ImportOptions options;
    options.region_size_bytes = region_bytes;
    d.energy = unwrap(
        d.store->import_object<float>(container, "Energy",
                                      std::span<const float>(world.data.energy),
                                      options),
        "import energy");
    check(d.store->build_bitmap_index(d.energy), "bitmap index");
    unwrap(sortrep::build_sorted_replica(*d.store, d.energy, options),
           "sorted replica");
    return d;
  }
};

Measurement run_pdc_query(query::QueryService& service, ObjectId energy,
                          const workloads::SingleQuerySpec& spec,
                          double amortized_read_s) {
  const QueryPtr q =
      query::q_and(query::create(energy, QueryOp::kGT, spec.lo),
                   query::create(energy, QueryOp::kLT, spec.hi));
  Measurement m;
  auto selection = unwrap(service.get_selection(q), "get_selection");
  m.num_hits = selection.num_hits;
  m.query_s = service.last_stats().sim_elapsed_seconds + amortized_read_s;
  if (selection.num_hits > 0) {
    std::vector<float> values(selection.num_hits);
    check(service.get_data<float>(energy, selection, values), "get_data");
    m.getdata_s = service.last_stats().sim_elapsed_seconds;
  }
  return m;
}

}  // namespace

int run() {
  // Larger default so the biggest regions still give several per server.
  BenchWorld world = BenchWorld::create("fig3", 1ull << 23);
  const auto queries = workloads::vpic_single_queries();
  const double n = static_cast<double>(world.data.size());

  // ---- HDF5-F baseline (region-size independent) ----
  // The HDF5 file keeps default Lustre striping (few OSTs); PDC spreads
  // data across the whole pool — the §III-E contrast behind PDC-F's ~2x
  // read advantage.
  pfs::PfsConfig h5_cfg = world.cluster->config();
  h5_cfg.root_dir = world.scratch_dir + "/h5";
  h5_cfg.num_osts = 1;   // Lustre default striping
  h5_cfg.stripe_count = 1;
  auto h5_cluster = unwrap(pfs::PfsCluster::Create(h5_cfg), "h5 cluster");
  check(workloads::write_vpic_h5(*h5_cluster, world.data, "vpic.h5"),
        "write h5");
  auto reader =
      unwrap(h5lite::H5LiteReader::Open(*h5_cluster, "vpic.h5"), "h5 open");
  h5lite::ParallelFullScan baseline(*h5_cluster, reader, world.num_servers);
  const std::vector<std::string> columns{"Energy"};
  check(baseline.load(columns), "h5 load");
  const double h5_amortized_read =
      baseline.load_elapsed_seconds() / static_cast<double>(queries.size());
  const CostModel cost = world.cluster->config().cost;

  std::vector<Measurement> h5_rows;
  for (const auto& spec : queries) {
    const auto qi = ValueInterval::from_op(QueryOp::kGT, spec.lo)
                        .intersect(ValueInterval::from_op(QueryOp::kLT, spec.hi));
    std::vector<h5lite::ScanCondition> conditions{{"Energy", qi}};
    auto result =
        unwrap(baseline.scan(conditions, /*collect_positions=*/true),
               "h5 scan");
    Measurement m;
    m.num_hits = result.num_hits;
    m.query_s = h5_amortized_read + result.scan_elapsed_s;
    // Data already resides in rank memory: pay gather + network only.
    m.getdata_s = cost.net_cost(result.num_hits * sizeof(float)) +
                  static_cast<double>(result.num_hits * sizeof(float)) /
                      cost.memcpy_bandwidth_bps;
    h5_rows.push_back(m);
  }

  print_header("Fig 3: single-object (Energy) queries, 15-query ladder",
               "region_kb approach query sel_pct query_s getdata_s hits");

  const std::uint64_t region_sizes[] = {32768,  65536,  131072,
                                        262144, 524288, 1048576};
  for (const std::uint64_t region_bytes : region_sizes) {
    const auto region_kb = region_bytes / 1024;
    // HDF5-F rows repeat per region size for plot completeness.
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      std::printf("%6" PRIu64 " %-7s %2zu %9.5f %10.6f %10.6f %" PRIu64 "\n",
                  region_kb, "HDF5-F", qi,
                  100.0 * static_cast<double>(h5_rows[qi].num_hits) / n,
                  h5_rows[qi].query_s, h5_rows[qi].getdata_s,
                  h5_rows[qi].num_hits);
    }

    Deployment deployment = Deployment::create(world, region_bytes);
    const Strategy strategies[] = {Strategy::kFullScan, Strategy::kHistogram,
                                   Strategy::kHistogramIndex,
                                   Strategy::kSortedHistogram};
    for (const Strategy strategy : strategies) {
      query::ServiceOptions options;
      options.strategy = strategy;
      options.num_servers = world.num_servers;
      query::QueryService service(*deployment.store, options);

      double amortized_read = 0.0;
      if (strategy == Strategy::kFullScan) {
        // PDC-F pre-loads everything once; amortize the cold read over the
        // query sequence, then measure warm queries (paper §VI-A).
        const QueryPtr warm =
            query::create(deployment.energy, QueryOp::kGTE, -1e30);
        unwrap(service.get_num_hits(warm), "warmup");
        amortized_read = service.last_stats().max_server_io_seconds /
                         static_cast<double>(queries.size());
      } else {
        // The paper reports the best of >=5 runs, i.e. warm server caches;
        // run the whole sequence once unmeasured.
        for (const auto& spec : queries) {
          run_pdc_query(service, deployment.energy, spec, 0.0);
        }
      }
      for (std::size_t qi = 0; qi < queries.size(); ++qi) {
        const Measurement m = run_pdc_query(service, deployment.energy,
                                            queries[qi], amortized_read);
        std::printf("%6" PRIu64 " %-7s %2zu %9.5f %10.6f %10.6f %" PRIu64 "\n",
                    region_kb,
                    std::string(server::strategy_name(strategy)).c_str(), qi,
                    100.0 * static_cast<double>(m.num_hits) / n, m.query_s,
                    m.getdata_s, m.num_hits);
      }
    }
  }
  return 0;
}

}  // namespace pdc::bench

int main() { return pdc::bench::run(); }
