// Ablation: region-size selection (paper §III-B and §VI-A discussion).
//
// For a fixed selective query, sweeps the region size and reports the
// pruning rate, bytes read and simulated query time under PDC-H — isolating
// the tradeoff the paper describes: small regions prune better but pay
// per-read latency and metadata overhead; large regions read data they do
// not need.
#include <vector>

#include "bench/bench_util.h"

namespace pdc::bench {

int run() {
  BenchWorld world = BenchWorld::create("ablation_region_size");

  print_header(
      "Ablation: region size vs pruning and query time (PDC-H, "
      "2.5<Energy<2.6)",
      "region_kb regions bytes_read read_ops query_s hits");
  for (const std::uint64_t region_bytes :
       {8192ull, 32768ull, 131072ull, 524288ull, 2097152ull, 8388608ull}) {
    pfs::PfsConfig cfg = world.cluster->config();
    cfg.root_dir = world.scratch_dir + "/rs_" + std::to_string(region_bytes);
    auto cluster = unwrap(pfs::PfsCluster::Create(cfg), "sub-cluster");
    obj::ObjectStore store(*cluster);
    const ObjectId container =
        unwrap(store.create_container("vpic"), "container");
    obj::ImportOptions options;
    options.region_size_bytes = region_bytes;
    const ObjectId energy = unwrap(
        store.import_object<float>(container, "Energy",
                                   std::span<const float>(world.data.energy),
                                   options),
        "import");

    query::ServiceOptions service_options;
    service_options.strategy = server::Strategy::kHistogram;
    service_options.num_servers = world.num_servers;
    query::QueryService service(store, service_options);

    const auto q = query::q_and(query::create(energy, QueryOp::kGT, 2.5),
                                query::create(energy, QueryOp::kLT, 2.6));
    const std::uint64_t hits = unwrap(service.get_num_hits(q), "nhits");
    const auto& stats = service.last_stats();
    const auto desc = unwrap(store.get(energy), "desc");
    std::printf("%9llu %7zu %10llu %8llu %10.6f %llu\n",
                static_cast<unsigned long long>(region_bytes / 1024),
                desc->regions.size(),
                static_cast<unsigned long long>(stats.server_bytes_read),
                static_cast<unsigned long long>(stats.server_read_ops),
                stats.sim_elapsed_seconds,
                static_cast<unsigned long long>(hits));
  }
  return 0;
}

}  // namespace pdc::bench

int main() { return pdc::bench::run(); }
