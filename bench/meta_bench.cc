// Distributed metadata sweep: the sharded affix-trie service vs a modeled
// linear-scan oracle, over BOSS metadata catalogs of 10k / 100k / 1M
// objects at 1 / 2 / 4 servers.
//
// Three query shapes, one per index lane:
//   exact  PLATE = 3505                  (numeric equality, one vnode)
//   range  3502 <= PLATE <= 3504         (ordered numeric map)
//   affix  RUN starts with "r5_"         (prefix trie walk)
// Every shape selects a FIXED number of objects (one or three sky cells)
// at every catalog size, so the reported sim_s isolates index traversal
// cost from result size.  The trie claim the gate pins: traversal is
// O(pattern + output), so sim_s at 1M objects stays within 3x of sim_s at
// 10k.  The oracle column models the paper's alternative — a linear
// metadata walk checking every conjunct on every object
// (objects * conjuncts * kMetaProbeSeconds) — and must scale linearly.
//
// All times are deterministic simulated seconds; the committed
// BENCH_meta.json is the gate baseline for tools/check_bench.py --meta.
//
// Environment: PDC_BENCH_META_OBJECTS (0 = the default {10k,100k,1M}
// sweep), PDC_BENCH_DIR, PDC_BENCH_JSON (default BENCH_meta.json).
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/exec_pool.h"
#include "metadata/meta_shard.h"
#include "metadata/meta_store.h"
#include "workloads/boss.h"

namespace pdc::bench {
namespace {

struct MetaRow {
  const char* shape = "";
  std::uint32_t servers = 0;
  std::uint32_t objects = 0;
  double sim_s = 0.0;
  double oracle_s = 0.0;
  std::uint64_t probes = 0;
  std::uint64_t vnodes = 0;
  std::uint64_t hits = 0;
};

struct Shape {
  const char* name;
  std::vector<meta::MetaCondition> conditions;
};

std::vector<Shape> shapes() {
  std::vector<Shape> out;
  out.push_back({"exact",
                 {{"PLATE", QueryOp::kEQ, std::int64_t{3505},
                   meta::MetaMatchKind::kValue}}});
  out.push_back({"range",
                 {{"PLATE", QueryOp::kGTE, std::int64_t{3502},
                   meta::MetaMatchKind::kValue},
                  {"PLATE", QueryOp::kLTE, std::int64_t{3504},
                   meta::MetaMatchKind::kValue}}});
  out.push_back({"affix",
                 {{"RUN", QueryOp::kEQ, std::string("r5_"),
                   meta::MetaMatchKind::kPrefix}}});
  return out;
}

}  // namespace
}  // namespace pdc::bench

int main() {
  using namespace pdc::bench;

  const std::string scratch =
      env_str("PDC_BENCH_DIR", "/tmp/pdc_bench") + "/meta";
  const std::uint64_t override_objects =
      env_u64("PDC_BENCH_META_OBJECTS", 0);
  std::vector<std::uint32_t> sizes{10000, 100000, 1000000};
  if (override_objects > 0) {
    sizes = {static_cast<std::uint32_t>(override_objects)};
  }
  const std::uint32_t server_counts[] = {1, 2, 4};
  const auto query_shapes = shapes();

  pdc::exec::ThreadPool pool(
      std::max(1u, std::thread::hardware_concurrency()));

  print_header("BOSS metadata: sharded affix trie vs linear-scan oracle",
               "shape   srv  objects      sim_s    oracle_s     probes  "
               "vnodes   hits");
  std::vector<MetaRow> rows;
  for (const std::uint32_t objects : sizes) {
    // One metadata catalog per size; the per-server-count services below
    // each build their own shards from it.
    pdc::meta::MetaStore meta;
    pdc::workloads::BossMetaConfig config;
    config.num_objects = objects;
    unwrap(pdc::workloads::generate_boss_metadata(meta, config, &pool),
           "BOSS metadata generation");

    // The service needs a (data-empty) object store underneath.
    std::filesystem::remove_all(scratch);
    pdc::pfs::PfsConfig cfg;
    cfg.root_dir = scratch;
    auto cluster = unwrap(pdc::pfs::PfsCluster::Create(cfg), "PFS create");
    pdc::obj::ObjectStore store(*cluster);

    for (const std::uint32_t servers : server_counts) {
      pdc::query::ServiceOptions options;
      options.num_servers = servers;
      options.metadata = &meta;
      pdc::query::QueryService service(store, options);

      for (const Shape& shape : query_shapes) {
        const auto result = unwrap(service.meta_query(shape.conditions),
                                   "meta query");
        const pdc::query::OpStats stats = service.last_stats();
        MetaRow row;
        row.shape = shape.name;
        row.servers = servers;
        row.objects = objects;
        row.sim_s = stats.sim_elapsed_seconds;
        // Modeled linear oracle: a full metadata walk probing every
        // conjunct on every object, the file-traversal alternative the
        // paper measures against.
        row.oracle_s = static_cast<double>(objects) *
                       static_cast<double>(shape.conditions.size()) *
                       pdc::meta::kMetaProbeSeconds;
        row.probes = stats.meta_probes;
        row.vnodes = stats.meta_vnodes_queried;
        row.hits = result.size();
        std::printf("%-6s  %3u  %7u  %9.6f  %10.6f  %9" PRIu64
                    "  %6" PRIu64 "  %5" PRIu64 "\n",
                    row.shape, row.servers, row.objects, row.sim_s,
                    row.oracle_s, row.probes, row.vnodes, row.hits);
        rows.push_back(row);
      }
    }
  }
  std::filesystem::remove_all(scratch);

  const std::string json_path = env_str("PDC_BENCH_JSON", "BENCH_meta.json");
  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "FATAL: cannot open %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"meta\",\n  \"meta\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const MetaRow& row = rows[i];
    std::fprintf(out,
                 "    {\"shape\": \"%s\", \"servers\": %u, "
                 "\"objects\": %u, \"sim_s\": %.9f, \"oracle_s\": %.9f, "
                 "\"probes\": %" PRIu64 ", \"vnodes\": %" PRIu64
                 ", \"hits\": %" PRIu64 "}%s\n",
                 row.shape, row.servers, row.objects, row.sim_s,
                 row.oracle_s, row.probes, row.vnodes, row.hits,
                 i + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
