// Fig. 5 reproduction: combined metadata + data queries on the BOSS
// catalog.  The metadata condition ("RADEG=... AND DECDEG=...") selects
// exactly one 1000-object sky cell; the data condition is a flux range
// whose selectivity sweeps 11 %–65 %.
//
// Approaches: HDF5-F (traverse every file, then scan the matching ones) vs
// PDC-H and PDC-HI (instant metadata lookup, then per-object region query).
// Shapes to expect, per paper §VI-C: PDC is multi-fold faster, the gap
// coming almost entirely from metadata resolution; PDC's time is flat in
// selectivity because each BOSS object is a single region that is read
// entirely either way.
//
// Aggregation model: the 1000 per-object data queries spread across the
// server fleet by object id; reported elapsed = metadata time +
// max-over-servers of the per-server work + network.
#include <vector>

#include "bench/bench_util.h"
#include "workloads/boss.h"

namespace pdc::bench {
namespace {

using server::Strategy;

/// Metadata-resolution cost model: PDC's in-memory hash/tree lookup.
constexpr double kMetaLookupSeconds = 5e-6;

}  // namespace

int run() {
  const std::string scratch =
      env_str("PDC_BENCH_DIR", "/tmp/pdc_bench") + "/fig5";
  std::filesystem::remove_all(scratch);
  pfs::PfsConfig cfg;
  cfg.root_dir = scratch;
  auto cluster = unwrap(pfs::PfsCluster::Create(cfg), "PFS");
  obj::ObjectStore store(*cluster);
  meta::MetaStore meta;

  workloads::BossConfig boss;
  boss.num_objects =
      static_cast<std::uint32_t>(env_u64("PDC_BENCH_BOSS_OBJECTS", 5000));
  boss.objects_per_cell = 1000;
  boss.flux_samples = 2048;
  auto catalog = unwrap(workloads::import_boss(store, meta, boss), "boss");
  for (const ObjectId id : catalog.flux_objects) {
    bitmap::IndexConfig index_cfg;
    index_cfg.num_bins = 16;
    check(store.build_bitmap_index(id, index_cfg), "index");
  }

  const std::uint32_t num_servers =
      static_cast<std::uint32_t>(env_u64("PDC_BENCH_SERVERS", 8));
  const CostModel cost = cluster->config().cost;
  const double selectivities[] = {0.11, 0.25, 0.40, 0.55, 0.65};

  print_header(
      "Fig 5: metadata (1000-object cell) + data (flux range) queries",
      "approach sel_pct total_s meta_s data_s hits");

  // The Fig. 5 metadata condition.
  const std::vector<meta::MetaCondition> conditions{
      {"RADEG", QueryOp::kEQ, catalog.cell0_radeg},
      {"DECDEG", QueryOp::kEQ, catalog.cell0_decdeg},
  };
  const auto matching = meta.query(conditions);

  for (const double sel : selectivities) {
    const double flux_hi = workloads::boss_flux_quantile(sel);

    // ---- HDF5-F: walk every file's header, then scan the matching ones.
    {
      const double per_file_meta =
          cost.disk_read_latency_s + 4096.0 / cost.ost_bandwidth_bps;
      const double traverse =
          static_cast<double>(boss.num_objects) * per_file_meta;
      const std::uint64_t flux_bytes = boss.flux_samples * sizeof(float);
      const double per_match = cost.disk_read_latency_s +
                               static_cast<double>(flux_bytes) /
                                   cost.ost_bandwidth_bps +
                               cost.scan_cost(flux_bytes);
      const double data_s = static_cast<double>(matching.size()) * per_match /
                            num_servers;
      const double meta_s = traverse / num_servers;
      std::uint64_t hits = 0;
      // Count real hits for the row (read through the object store).
      for (const ObjectId id : matching) {
        auto desc = unwrap(store.get(id), "get");
        std::vector<float> flux(desc->num_elements);
        check(store.read_elements(
                  *desc, {0, flux.size()},
                  {reinterpret_cast<std::uint8_t*>(flux.data()),
                   flux.size() * sizeof(float)},
                  {}),
              "read flux");
        for (const float f : flux) hits += f > 0.0F && f < flux_hi;
      }
      std::printf("%-7s %6.1f %10.4f %10.4f %10.4f %" PRIu64 "\n", "HDF5-F",
                  100.0 * sel, meta_s + data_s, meta_s, data_s, hits);
    }

    // ---- PDC-H and PDC-HI.
    for (const Strategy strategy :
         {Strategy::kHistogram, Strategy::kHistogramIndex}) {
      query::ServiceOptions options;
      options.strategy = strategy;
      options.num_servers = num_servers;
      query::QueryService service(store, options);

      const double meta_s =
          kMetaLookupSeconds * static_cast<double>(conditions.size()) +
          cost.net_cost(matching.size() * sizeof(ObjectId));
      std::vector<double> per_server(num_servers, 0.0);
      double net_s = 2.0 * cost.net_latency_s;
      std::uint64_t hits = 0;
      for (const ObjectId id : matching) {
        const auto q =
            query::q_and(query::create(id, QueryOp::kGT, 0.0),
                         query::create(id, QueryOp::kLT, flux_hi));
        hits += unwrap(service.get_num_hits(q), "nhits");
        const auto& stats = service.last_stats();
        per_server[id % num_servers] += stats.max_server_seconds;
        net_s += static_cast<double>(stats.response_bytes) /
                 cost.net_bandwidth_bps;
      }
      const double data_s =
          *std::max_element(per_server.begin(), per_server.end()) + net_s;
      std::printf("%-7s %6.1f %10.4f %10.4f %10.4f %" PRIu64 "\n",
                  std::string(server::strategy_name(strategy)).c_str(),
                  100.0 * sel, meta_s + data_s, meta_s, data_s, hits);
    }
  }
  std::filesystem::remove_all(scratch);
  return 0;
}

}  // namespace pdc::bench

int main() { return pdc::bench::run(); }
