# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
if(CTEST_CONFIGURATION_TYPE MATCHES "^([Bb][Ee][Nn][Cc][Hh]-[Gg][Aa][Tt][Ee])$")
  add_test(bench_report "/root/repo/bench/report_json")
  set_tests_properties(bench_report PROPERTIES  ENVIRONMENT "PDC_BENCH_JSON=/root/repo/BENCH_pr5.json;PDC_BENCH_NAME=pr5_adaptive_pipeline" FIXTURES_SETUP "bench_json" LABELS "bench-gate" TIMEOUT "1200" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;45;add_test;/root/repo/bench/CMakeLists.txt;0;")
endif()
if(CTEST_CONFIGURATION_TYPE MATCHES "^([Bb][Ee][Nn][Cc][Hh]-[Gg][Aa][Tt][Ee])$")
  add_test(bench_gate "/root/.pyenv/shims/python3" "/root/repo/tools/check_bench.py" "/root/repo/BENCH_pr4.json" "/root/repo/BENCH_pr5.json" "--threshold" "0.15" "--sections" "fig3,fig6" "--require-strategy" "PDC-A")
  set_tests_properties(bench_gate PROPERTIES  FIXTURES_REQUIRED "bench_json" LABELS "bench-gate" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;53;add_test;/root/repo/bench/CMakeLists.txt;0;")
endif()
if(CTEST_CONFIGURATION_TYPE MATCHES "^([Bb][Ee][Nn][Cc][Hh]-[Gg][Aa][Tt][Ee])$")
  add_test(bench_report_traffic "/root/repo/bench/traffic_bench")
  set_tests_properties(bench_report_traffic PROPERTIES  ENVIRONMENT "PDC_BENCH_JSON=/root/repo/BENCH_traffic.json" FIXTURES_SETUP "bench_traffic_json" LABELS "bench-gate" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;68;add_test;/root/repo/bench/CMakeLists.txt;0;")
endif()
if(CTEST_CONFIGURATION_TYPE MATCHES "^([Bb][Ee][Nn][Cc][Hh]-[Gg][Aa][Tt][Ee])$")
  add_test(bench_gate_traffic "/root/.pyenv/shims/python3" "/root/repo/tools/check_bench.py" "/root/repo/BENCH_traffic.json" "/root/repo/BENCH_traffic.json" "--threshold" "0.15" "--traffic")
  set_tests_properties(bench_gate_traffic PROPERTIES  FIXTURES_REQUIRED "bench_traffic_json" LABELS "bench-gate" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;76;add_test;/root/repo/bench/CMakeLists.txt;0;")
endif()
if(CTEST_CONFIGURATION_TYPE MATCHES "^([Bb][Ee][Nn][Cc][Hh]-[Gg][Aa][Tt][Ee])$")
  add_test(bench_report_kernels "/root/repo/bench/kernels_bench")
  set_tests_properties(bench_report_kernels PROPERTIES  ENVIRONMENT "PDC_BENCH_JSON=/root/repo/BENCH_kernels.json" FIXTURES_SETUP "bench_kernels_json" LABELS "bench-gate" TIMEOUT "1200" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;93;add_test;/root/repo/bench/CMakeLists.txt;0;")
endif()
if(CTEST_CONFIGURATION_TYPE MATCHES "^([Bb][Ee][Nn][Cc][Hh]-[Gg][Aa][Tt][Ee])$")
  add_test(bench_gate_kernels "/root/.pyenv/shims/python3" "/root/repo/tools/check_bench.py" "/root/repo/BENCH_kernels.json" "/root/repo/BENCH_kernels.json" "--threshold" "0.15" "--kernels")
  set_tests_properties(bench_gate_kernels PROPERTIES  FIXTURES_REQUIRED "bench_kernels_json" LABELS "bench-gate" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;101;add_test;/root/repo/bench/CMakeLists.txt;0;")
endif()
