// Wall-clock kernel microbenchmarks — the one bench in this suite that
// measures THIS machine, not the simulated cluster.  The SIMD kernel layer
// is real CPU work (the cost model charges it separately), so its claims
// — scan GB/s, WAH decode MB/s, parallel-build scaling — are wall-clock
// claims and are gated as such (tools/check_bench.py --kernels).
//
// Output JSON records the machine shape (hardware_threads, avx2) so the
// gate can skip-not-fail SIMD floors on boxes without AVX2 and thread
// floors on boxes without enough cores, and only diff throughput against
// a baseline recorded on a matching machine.
//
// Environment knobs:
//   PDC_BENCH_JSON   output path (default BENCH_kernels.json)
//   PDC_BENCH_DIR    scratch directory for the build sweep
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "bitmap/wah.h"
#include "common/exec_pool.h"
#include "common/interval.h"
#include "common/rng.h"
#include "kernels/kernels.h"
#include "sortrep/sorted_replica.h"

namespace pdc::bench {
namespace {

using Clock = std::chrono::steady_clock;

/// Best-of-N wall seconds for `fn` (first call warms caches, then N timed).
template <typename Fn>
double best_seconds(int reps, Fn&& fn) {
  fn();
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    best = std::min(best,
                    std::chrono::duration<double>(Clock::now() - t0).count());
  }
  return best;
}

struct KernelRow {
  std::string name;
  std::string backend;
  std::string metric;  ///< "gb_per_s" | "mb_per_s" | "mprobes_per_s"
  double value = 0.0;
};

struct BuildRow {
  std::string name;
  std::uint32_t threads = 0;
  double seconds = 0.0;
};

template <typename T>
KernelRow bench_scan(const char* name, kernels::Backend backend) {
  constexpr std::size_t kN = 1u << 22;
  Rng rng(11);
  std::vector<T> values(kN);
  for (auto& v : values) v = static_cast<T>(rng.uniform(-1.0, 1.0));
  // ~50% selectivity: every element is branched on, half are appended.
  const auto q = ValueInterval::from_op(QueryOp::kGT, -0.5)
                     .intersect(ValueInterval::from_op(QueryOp::kLT, 0.5));
  std::vector<std::uint64_t> out;
  out.reserve(kN);
  const kernels::ScopedBackend scoped(backend);
  const double secs = best_seconds(5, [&] {
    out.clear();
    kernels::scan_interval(std::span<const T>(values), q, 0, out);
  });
  return {name, kernels::backend_name(kernels::active_backend()), "gb_per_s",
          static_cast<double>(kN * sizeof(T)) / secs / 1e9};
}

KernelRow bench_wah_expand(kernels::Backend backend) {
  // Mixed word stream: literal stretches at ~6% density plus 0- and
  // 1-fills, the shape region bitmaps take after histogram pruning.
  Rng rng(23);
  bitmap::WahBitVector v;
  for (int block = 0; block < 6000; ++block) {
    switch (rng.bounded(4)) {
      case 0:
        v.append_run(false, 31 * (1 + rng.bounded(64)));
        break;
      case 1:
        v.append_run(true, 31 * (1 + rng.bounded(8)));
        break;
      default:
        for (int i = 0; i < 31 * 16; ++i) v.append_bit(rng.bounded(16) == 0);
        break;
    }
  }
  std::vector<std::uint64_t> out;
  out.reserve(v.count());
  const kernels::ScopedBackend scoped(backend);
  const double secs = best_seconds(5, [&] {
    out.clear();
    v.append_set_positions(0, 0, v.size(), out);
  });
  const double word_bytes =
      static_cast<double>(v.words().size()) * sizeof(std::uint32_t);
  return {"wah_expand", kernels::backend_name(kernels::active_backend()),
          "mb_per_s", word_bytes / secs / 1e6};
}

KernelRow bench_bound_batch(kernels::Backend backend) {
  constexpr std::size_t kN = 1u << 20;
  constexpr std::size_t kKeys = 1u << 16;
  Rng rng(37);
  std::vector<double> sorted(kN);
  for (auto& v : sorted) v = rng.uniform(0.0, 1.0);
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> keys(kKeys);
  for (auto& k : keys) k = rng.uniform(-0.1, 1.1);
  std::vector<std::uint64_t> out(kKeys);
  const kernels::ScopedBackend scoped(backend);
  const double secs = best_seconds(5, [&] {
    kernels::lower_bound_batch(std::span<const double>(sorted),
                               std::span<const double>(keys), out);
  });
  return {"bound_batch_f64", kernels::backend_name(kernels::active_backend()),
          "mprobes_per_s", static_cast<double>(kKeys) / secs / 1e6};
}

/// Sorted-replica build wall time at each pool width (one store per width:
/// a replica may only be built once per source).
std::vector<BuildRow> bench_sortrep_builds(const std::string& scratch) {
  constexpr std::uint64_t kN = 1u << 21;
  Rng rng(41);
  std::vector<float> data(kN);
  for (auto& v : data) v = static_cast<float>(rng.uniform(-100.0, 100.0));

  std::vector<BuildRow> rows;
  for (const std::uint32_t threads : {1u, 2u, 4u, 8u}) {
    const std::string dir = scratch + "/sortrep_" + std::to_string(threads);
    std::filesystem::remove_all(dir);
    pfs::PfsConfig cfg;
    cfg.root_dir = dir;
    auto cluster = unwrap(pfs::PfsCluster::Create(cfg), "PFS create");
    obj::ObjectStore store(*cluster);
    const ObjectId container =
        unwrap(store.create_container("bench"), "container");
    obj::ImportOptions options;
    options.region_size_bytes = 1u << 20;
    const ObjectId source = unwrap(
        store.import_object<float>(container, "key",
                                   std::span<const float>(data), options),
        "import");
    exec::ThreadPool pool(threads);
    options.pool = &pool;
    const auto report = unwrap(
        sortrep::build_sorted_replica(store, source, options), "build");
    rows.push_back({"sortrep_build", threads, report.wall_seconds});
    std::filesystem::remove_all(dir);
  }
  return rows;
}

std::vector<BuildRow> bench_histogram_builds() {
  constexpr std::size_t kN = 1u << 23;
  Rng rng(43);
  std::vector<double> data(kN);
  for (auto& v : data) v = rng.uniform(-5.0, 5.0);
  std::vector<BuildRow> rows;
  for (const std::uint32_t threads : {1u, 2u, 4u, 8u}) {
    exec::ThreadPool pool(threads);
    const double secs = best_seconds(3, [&] {
      (void)hist::MergeableHistogram::Build<double>(
          std::span<const double>(data), {}, &pool);
    });
    rows.push_back({"histogram_build", threads, secs});
  }
  return rows;
}

}  // namespace
}  // namespace pdc::bench

int main() {
  using namespace pdc;
  using namespace pdc::bench;

  const bool avx2 = kernels::cpu_has_avx2();
  std::vector<kernels::Backend> backends{kernels::Backend::kScalar};
  if (avx2) backends.push_back(kernels::Backend::kAvx2);

  std::vector<KernelRow> kernel_rows;
  for (const kernels::Backend b : backends) {
    kernel_rows.push_back(bench_scan<float>("scan_f32", b));
    kernel_rows.push_back(bench_scan<double>("scan_f64", b));
    kernel_rows.push_back(bench_wah_expand(b));
    kernel_rows.push_back(bench_bound_batch(b));
  }

  const std::string scratch =
      env_str("PDC_BENCH_DIR", "/tmp/pdc_bench") + "/kernels";
  std::vector<BuildRow> build_rows = bench_sortrep_builds(scratch);
  for (auto& row : bench_histogram_builds()) build_rows.push_back(row);

  for (const KernelRow& row : kernel_rows) {
    std::printf("%-16s %-8s %10.3f %s\n", row.name.c_str(),
                row.backend.c_str(), row.value, row.metric.c_str());
  }
  for (const BuildRow& row : build_rows) {
    std::printf("%-16s threads=%u %10.6f s\n", row.name.c_str(), row.threads,
                row.seconds);
  }

  const std::string json_path =
      env_str("PDC_BENCH_JSON", "BENCH_kernels.json");
  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "FATAL: cannot open %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"machine\": {\n");
  std::fprintf(out, "    \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out, "    \"avx2\": %s,\n", avx2 ? "true" : "false");
  std::fprintf(out, "    \"default_backend\": \"%s\"\n",
               kernels::backend_name(kernels::active_backend()));
  std::fprintf(out, "  },\n  \"kernels\": [\n");
  for (std::size_t i = 0; i < kernel_rows.size(); ++i) {
    const KernelRow& row = kernel_rows[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"backend\": \"%s\", "
                 "\"%s\": %.6f}%s\n",
                 row.name.c_str(), row.backend.c_str(), row.metric.c_str(),
                 row.value, i + 1 < kernel_rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"builds\": [\n");
  for (std::size_t i = 0; i < build_rows.size(); ++i) {
    const BuildRow& row = build_rows[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"threads\": %u, "
                 "\"seconds\": %.9f}%s\n",
                 row.name.c_str(), row.threads, row.seconds,
                 i + 1 < build_rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
