// Machine-readable perf baseline (PR 3): re-runs a subset of the Fig. 3
// and Fig. 6 measurements plus the new intra-server thread sweep and dumps
// everything to one JSON file, so CI (and later sessions) can diff perf
// numbers instead of eyeballing table output.
//
// Output: BENCH_pr3.json in the working directory (override with
// PDC_BENCH_JSON=<path>).  Two time columns per row:
//   sim_s   deterministic simulated seconds from the cost model — the
//           number the paper-shape claims are made about;
//   wall_s  actual wall-clock of the call on this machine, reported
//           honestly next to `hardware_threads` (on a single-core CI box
//           the pool cannot show real wall speedups; the simulated model
//           is the scaling claim, the wall number is the smoke check that
//           parallel evaluation does not *cost* anything).
//
// The intra-server sweep (threads 1 -> 8 at fixed servers) additionally
// self-checks the acceptance property: simulated query time must be
// monotonically non-increasing in the thread count.  Violations make the
// bench exit nonzero.
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "sortrep/sorted_replica.h"

namespace pdc::bench {
namespace {

using query::QueryPtr;
using server::Strategy;

double wall_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Row {
  std::string section;   ///< "fig3" | "fig6" | "intra_server_sweep"
  std::string strategy;
  std::uint32_t servers = 0;
  std::uint32_t threads = 0;  ///< 0 = serial evaluation (no pool)
  int query = 0;
  double sim_s = 0.0;
  double wall_s = 0.0;
  std::uint64_t hits = 0;
};

constexpr Strategy kStrategies[] = {
    Strategy::kFullScan, Strategy::kHistogram, Strategy::kHistogramIndex,
    Strategy::kSortedHistogram, Strategy::kAdaptive};

Row measure(query::QueryService& service, const QueryPtr& q,
            const char* section, int query_index) {
  // Warmup populates the region caches; the measured pass is then cache-
  // state-stable, which is what makes wall numbers comparable across the
  // thread sweep.
  unwrap(service.get_num_hits(q), "warmup");
  const double t0 = wall_now();
  const std::uint64_t hits = unwrap(service.get_num_hits(q), "nhits");
  const double t1 = wall_now();
  Row row;
  row.section = section;
  row.strategy = std::string(server::strategy_name(service.options().strategy));
  row.servers = service.num_servers();
  row.threads = service.options().eval_threads;
  row.query = query_index;
  row.sim_s = service.last_stats().sim_elapsed_seconds;
  row.wall_s = t1 - t0;
  row.hits = hits;
  return row;
}

void emit(std::FILE* f, const std::vector<Row>& rows, const char* section,
          bool last) {
  std::fprintf(f, "  \"%s\": [\n", section);
  bool first = true;
  for (const Row& row : rows) {
    if (row.section != section) continue;
    if (!first) std::fprintf(f, ",\n");
    first = false;
    std::fprintf(f,
                 "    {\"strategy\": \"%s\", \"servers\": %u, \"threads\": "
                 "%u, \"query\": %d, \"sim_s\": %.9f, \"wall_s\": %.6f, "
                 "\"hits\": %" PRIu64 "}",
                 row.strategy.c_str(), row.servers, row.threads, row.query,
                 row.sim_s, row.wall_s, row.hits);
  }
  std::fprintf(f, "\n  ]%s\n", last ? "" : ",");
}

}  // namespace

int run() {
  BenchWorld world = BenchWorld::create("report_json", 1ull << 20);
  obj::ImportOptions options;
  options.region_size_bytes = env_u64("PDC_BENCH_REGION_BYTES", 32768);
  obj::ObjectStore store(*world.cluster);
  auto objects = unwrap(workloads::import_vpic(store, world.data, options),
                        "import");
  for (const ObjectId id :
       {objects.energy, objects.x, objects.y, objects.z}) {
    check(store.build_bitmap_index(id), "index");
  }
  unwrap(sortrep::build_sorted_replica(store, objects.energy, options),
         "replica");

  const auto single = workloads::vpic_single_queries();
  const auto multi_spec = workloads::vpic_multi_queries()[2];
  const auto multi_query = [&] {
    using query::create;
    using query::q_and;
    QueryPtr q = create(objects.energy, QueryOp::kGT, multi_spec.energy_min);
    q = q_and(q, q_and(create(objects.x, QueryOp::kGT, multi_spec.x_lo),
                       create(objects.x, QueryOp::kLT, multi_spec.x_hi)));
    q = q_and(q, q_and(create(objects.y, QueryOp::kGT, multi_spec.y_lo),
                       create(objects.y, QueryOp::kLT, multi_spec.y_hi)));
    q = q_and(q, q_and(create(objects.z, QueryOp::kGT, multi_spec.z_lo),
                       create(objects.z, QueryOp::kLT, multi_spec.z_hi)));
    return q;
  };
  const auto single_query = [&](const workloads::SingleQuerySpec& spec) {
    return query::q_and(query::create(objects.energy, QueryOp::kGT, spec.lo),
                        query::create(objects.energy, QueryOp::kLT, spec.hi));
  };

  std::vector<Row> rows;

  // Fig. 3 subset: broad / mid / narrow selectivity, every strategy.
  for (const int qi : {0, 7, 14}) {
    for (const Strategy strategy : kStrategies) {
      query::ServiceOptions so;
      so.strategy = strategy;
      so.num_servers = world.num_servers;
      query::QueryService service(store, so);
      rows.push_back(measure(service, single_query(single[qi]), "fig3", qi));
    }
  }

  // Fig. 6 subset: the multi-object query over a growing fleet.
  for (const std::uint32_t servers : {2u, 4u, 8u}) {
    for (const Strategy strategy : kStrategies) {
      query::ServiceOptions so;
      so.strategy = strategy;
      so.num_servers = servers;
      query::QueryService service(store, so);
      rows.push_back(measure(service, multi_query(), "fig6", 2));
    }
  }

  // Intra-server sweep: fixed small fleet (2 servers => many regions per
  // server, the regime where intra-server parallelism matters), threads
  // 1 -> 8.  Full scan is the cpu-bound worst case; histogram the pruned
  // common case.
  bool monotone = true;
  for (const Strategy strategy :
       {Strategy::kFullScan, Strategy::kHistogram}) {
    double prev_sim = 0.0;
    for (const std::uint32_t threads : {1u, 2u, 4u, 8u}) {
      query::ServiceOptions so;
      so.strategy = strategy;
      so.num_servers = 2;
      so.eval_threads = threads;
      query::QueryService service(store, so);
      rows.push_back(
          measure(service, single_query(single[0]), "intra_server_sweep", 0));
      const double sim = rows.back().sim_s;
      if (threads > 1 && sim > prev_sim + 1e-12) {
        std::fprintf(stderr,
                     "NON-MONOTONE: %s threads %u sim %.9f > prev %.9f\n",
                     rows.back().strategy.c_str(), threads, sim, prev_sim);
        monotone = false;
      }
      prev_sim = sim;
    }
  }

  const std::string path = env_str("PDC_BENCH_JSON", "BENCH_pr5.json");
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL cannot open %s\n", path.c_str());
    return 1;
  }
  const std::string bench_name =
      env_str("PDC_BENCH_NAME", "pr5_adaptive_pipeline");
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"%s\",\n", bench_name.c_str());
  std::fprintf(f, "  \"particles\": %" PRIu64 ",\n",
               static_cast<std::uint64_t>(world.data.energy.size()));
  std::fprintf(f, "  \"region_bytes\": %" PRIu64 ",\n",
               options.region_size_bytes);
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"sweep_monotone_non_increasing\": %s,\n",
               monotone ? "true" : "false");
  emit(f, rows, "fig3", false);
  emit(f, rows, "fig6", false);
  emit(f, rows, "intra_server_sweep", true);
  std::fprintf(f, "}\n");
  std::fclose(f);

  std::printf("wrote %s (%zu rows, sweep monotone: %s)\n", path.c_str(),
              rows.size(), monotone ? "yes" : "NO");
  return monotone ? 0 : 1;
}

}  // namespace pdc::bench

int main() { return pdc::bench::run(); }
