// Cross-match join sweep: zone-shuffle vs broadcast exchange over the BOSS
// two-catalog workload, swept across server counts and catalog sizes.
//
// For each catalog size a fresh store is built once; every (strategy,
// servers) cell then runs the same epsilon join.  Reported sim_s is the
// deterministic cost-model time (MPC shuffle terms included); the shuffle
// columns are exact wire accounting from the exchange ports.  The
// committed BENCH_join.json is the gate baseline: tools/check_bench.py
// --join enforces that zone-shuffle ships strictly fewer bytes than
// broadcast at >= 4 servers and that both strategies agree on the pair
// count in every cell.
//
// Environment: PDC_BENCH_JOIN_SOURCES (per-side catalog size; 0 = the
// default {2000, 8000} sweep), PDC_BENCH_DIR, PDC_BENCH_JSON (default
// BENCH_join.json).
#include <cinttypes>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "workloads/boss.h"

namespace pdc::bench {
namespace {

struct JoinRow {
  const char* strategy = "";
  std::uint32_t servers = 0;
  std::uint32_t sources = 0;  ///< per-side catalog size
  double sim_s = 0.0;
  std::uint64_t shuffle_bytes = 0;
  std::uint64_t shuffle_msgs = 0;
  std::uint64_t shuffle_rounds = 0;
  std::uint64_t pairs = 0;
  std::uint64_t zones = 0;
};

struct StrategyCell {
  server::JoinStrategy strategy;
  const char* name;
};

}  // namespace
}  // namespace pdc::bench

int main() {
  using namespace pdc::bench;

  const std::string scratch =
      env_str("PDC_BENCH_DIR", "/tmp/pdc_bench") + "/join";
  const std::uint64_t override_sources =
      env_u64("PDC_BENCH_JOIN_SOURCES", 0);
  std::vector<std::uint32_t> sizes{2000, 8000};
  if (override_sources > 0) {
    sizes = {static_cast<std::uint32_t>(override_sources)};
  }
  const std::uint32_t server_counts[] = {2, 4, 8};
  const StrategyCell strategies[] = {
      {pdc::server::JoinStrategy::kZoneShuffle, "zone"},
      {pdc::server::JoinStrategy::kBroadcast, "broadcast"},
  };

  print_header("BOSS cross-match: zone-shuffle vs broadcast",
               "strategy   srv  sources     sim_s  shuf_bytes  msgs  "
               "rounds      pairs  zones");
  std::vector<JoinRow> rows;
  for (const std::uint32_t sources : sizes) {
    std::filesystem::remove_all(scratch);
    pdc::pfs::PfsConfig cfg;
    cfg.root_dir = scratch;
    cfg.num_osts = 16;
    cfg.stripe_count = 4;
    cfg.stripe_size = 1ull << 20;
    auto cluster = unwrap(pdc::pfs::PfsCluster::Create(cfg), "PFS create");
    pdc::obj::ObjectStore store(*cluster);

    pdc::workloads::BossJoinConfig config;
    config.num_a = sources;
    config.num_b = sources;
    const auto pair =
        unwrap(pdc::workloads::import_boss_join_pair(store, config),
               "BOSS join import");

    pdc::query::JoinSpec spec;
    spec.left = pair.ra_a;
    spec.right = pair.ra_b;
    spec.epsilon = 0.125;
    spec.zone_height = config.zone_height;

    for (const std::uint32_t servers : server_counts) {
      for (const StrategyCell& cell : strategies) {
        // A fresh service per cell: every run pays the same cold region
        // cache, so cells differ only in strategy, never in cache warmth.
        pdc::query::ServiceOptions options;
        options.num_servers = servers;
        pdc::query::QueryService service(store, options);
        spec.strategy = cell.strategy;
        const auto result = unwrap(service.join(spec), "join");
        const pdc::query::OpStats stats = service.last_stats();
        JoinRow row;
        row.strategy = cell.name;
        row.servers = servers;
        row.sources = sources;
        row.sim_s = stats.sim_elapsed_seconds;
        row.shuffle_bytes = stats.shuffle_bytes;
        row.shuffle_msgs = stats.shuffle_msgs;
        row.shuffle_rounds = stats.shuffle_rounds;
        row.pairs = result.pairs.size();
        row.zones = result.num_zones;
        std::printf("%-9s  %3u  %7u  %8.4f  %10" PRIu64 "  %4" PRIu64
                    "  %6" PRIu64 "  %9" PRIu64 "  %5" PRIu64 "\n",
                    row.strategy, row.servers, row.sources, row.sim_s,
                    row.shuffle_bytes, row.shuffle_msgs, row.shuffle_rounds,
                    row.pairs, row.zones);
        rows.push_back(row);
      }
    }
  }
  std::filesystem::remove_all(scratch);

  const std::string json_path = env_str("PDC_BENCH_JSON", "BENCH_join.json");
  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "FATAL: cannot open %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"join\",\n  \"join\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const JoinRow& row = rows[i];
    std::fprintf(out,
                 "    {\"strategy\": \"%s\", \"servers\": %u, "
                 "\"sources\": %u, \"sim_s\": %.9f, "
                 "\"shuffle_bytes\": %" PRIu64 ", \"shuffle_msgs\": %" PRIu64
                 ", \"shuffle_rounds\": %" PRIu64 ", \"pairs\": %" PRIu64
                 ", \"zones\": %" PRIu64 "}%s\n",
                 row.strategy, row.servers, row.sources, row.sim_s,
                 row.shuffle_bytes, row.shuffle_msgs, row.shuffle_rounds,
                 row.pairs, row.zones, i + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
