// Ablation: read aggregation & striping in the PFS layer (paper §III-E:
// PDC "uses aggregation methods to merge small reads into bigger ones",
// which it credits for the 2x read advantage over tuned HDF5/Lustre).
//
// Tables: simulated cost of a scattered-read workload with aggregation on
// vs off, across gap thresholds; effective bandwidth vs stripe count and
// reader concurrency.  Micro-benchmarks: the aggregation planner itself.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <vector>

#include "common/rng.h"
#include "pfs/pfs.h"
#include "pfs/read_aggregator.h"

namespace {

using pdc::CostLedger;
using pdc::Extent1D;
using pdc::pfs::AggregationPolicy;
using pdc::pfs::PfsCluster;
using pdc::pfs::PfsConfig;

void aggregation_table() {
  const std::string root = "/tmp/pdc_bench/ablation_pfs";
  std::filesystem::remove_all(root);
  PfsConfig cfg;
  cfg.root_dir = root;
  auto cluster = std::move(PfsCluster::Create(cfg)).value();
  auto file = std::move(cluster->create("scatter.dat")).value();
  std::vector<std::uint8_t> data(16 << 20, 1);
  (void)file.write(0, data);

  // 4096 scattered 64-byte reads, 4 KiB apart — a candidate-check pattern.
  std::vector<Extent1D> extents;
  std::vector<std::vector<std::uint8_t>> buffers;
  std::vector<std::span<std::uint8_t>> dests;
  for (int i = 0; i < 4096; ++i) {
    extents.push_back({static_cast<std::uint64_t>(i) * 4096, 64});
    buffers.emplace_back(64);
  }
  for (auto& b : buffers) dests.emplace_back(b);

  std::printf(
      "\n# Ablation: read aggregation (4096 x 64B reads, 4KiB apart)\n"
      "max_gap_bytes read_ops sim_io_s bytes_read\n");
  for (const std::uint64_t gap : {0ull, 1024ull, 8192ull, 65536ull,
                                  1048576ull}) {
    AggregationPolicy policy;
    policy.max_gap_bytes = gap;
    CostLedger ledger;
    (void)pdc::pfs::aggregated_read(file, extents, dests, policy,
                                    {&ledger, 1});
    std::printf("%13llu %8llu %9.4f %10llu\n",
                static_cast<unsigned long long>(gap),
                static_cast<unsigned long long>(ledger.read_ops()),
                ledger.io_seconds(),
                static_cast<unsigned long long>(ledger.bytes_read()));
  }

  std::printf(
      "\n# Ablation: effective read bandwidth (GB/s) vs stripes x readers\n"
      "stripes readers_1 readers_8 readers_64\n");
  for (const std::uint32_t stripes : {1u, 2u, 4u, 8u}) {
    std::printf("%7u", stripes);
    for (const std::uint32_t readers : {1u, 8u, 64u}) {
      std::printf(" %9.2f",
                  cluster->effective_read_bandwidth(stripes, readers) / 1e9);
    }
    std::printf("\n");
  }
  std::filesystem::remove_all(root);
}

void BM_AggregationPlan(benchmark::State& state) {
  pdc::Rng rng(3);
  std::vector<Extent1D> extents;
  std::uint64_t offset = 0;
  for (int i = 0; i < 10000; ++i) {
    offset += 64 + rng.bounded(8192);
    extents.push_back({offset, 64});
    offset += 64;
  }
  AggregationPolicy policy;
  policy.max_gap_bytes = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    auto plan = pdc::pfs::plan_aggregated_reads(extents, policy);
    benchmark::DoNotOptimize(plan);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_AggregationPlan)->Arg(0)->Arg(4096)->Arg(65536);

}  // namespace

int main(int argc, char** argv) {
  aggregation_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
