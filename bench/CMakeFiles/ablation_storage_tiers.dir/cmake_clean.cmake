file(REMOVE_RECURSE
  "CMakeFiles/ablation_storage_tiers.dir/ablation_storage_tiers.cc.o"
  "CMakeFiles/ablation_storage_tiers.dir/ablation_storage_tiers.cc.o.d"
  "ablation_storage_tiers"
  "ablation_storage_tiers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_storage_tiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
