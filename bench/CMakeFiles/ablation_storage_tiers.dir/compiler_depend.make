# Empty compiler generated dependencies file for ablation_storage_tiers.
# This may be replaced when dependencies are built.
