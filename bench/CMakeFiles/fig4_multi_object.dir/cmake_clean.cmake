file(REMOVE_RECURSE
  "CMakeFiles/fig4_multi_object.dir/fig4_multi_object.cc.o"
  "CMakeFiles/fig4_multi_object.dir/fig4_multi_object.cc.o.d"
  "fig4_multi_object"
  "fig4_multi_object.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_multi_object.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
