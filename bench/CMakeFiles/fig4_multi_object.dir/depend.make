# Empty dependencies file for fig4_multi_object.
# This may be replaced when dependencies are built.
