file(REMOVE_RECURSE
  "CMakeFiles/kernels_bench.dir/kernels_bench.cc.o"
  "CMakeFiles/kernels_bench.dir/kernels_bench.cc.o.d"
  "kernels_bench"
  "kernels_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
