# Empty dependencies file for kernels_bench.
# This may be replaced when dependencies are built.
