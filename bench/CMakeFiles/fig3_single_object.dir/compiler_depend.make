# Empty compiler generated dependencies file for fig3_single_object.
# This may be replaced when dependencies are built.
