file(REMOVE_RECURSE
  "CMakeFiles/fig3_single_object.dir/fig3_single_object.cc.o"
  "CMakeFiles/fig3_single_object.dir/fig3_single_object.cc.o.d"
  "fig3_single_object"
  "fig3_single_object.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_single_object.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
