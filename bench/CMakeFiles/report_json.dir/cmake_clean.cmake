file(REMOVE_RECURSE
  "CMakeFiles/report_json.dir/report_json.cc.o"
  "CMakeFiles/report_json.dir/report_json.cc.o.d"
  "report_json"
  "report_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/report_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
