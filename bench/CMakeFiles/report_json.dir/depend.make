# Empty dependencies file for report_json.
# This may be replaced when dependencies are built.
