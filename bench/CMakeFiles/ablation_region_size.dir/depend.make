# Empty dependencies file for ablation_region_size.
# This may be replaced when dependencies are built.
