file(REMOVE_RECURSE
  "CMakeFiles/ablation_region_size.dir/ablation_region_size.cc.o"
  "CMakeFiles/ablation_region_size.dir/ablation_region_size.cc.o.d"
  "ablation_region_size"
  "ablation_region_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_region_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
