file(REMOVE_RECURSE
  "CMakeFiles/fig5_metadata_data.dir/fig5_metadata_data.cc.o"
  "CMakeFiles/fig5_metadata_data.dir/fig5_metadata_data.cc.o.d"
  "fig5_metadata_data"
  "fig5_metadata_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_metadata_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
