# Empty compiler generated dependencies file for fig5_metadata_data.
# This may be replaced when dependencies are built.
