
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_histogram.cc" "bench/CMakeFiles/ablation_histogram.dir/ablation_histogram.cc.o" "gcc" "bench/CMakeFiles/ablation_histogram.dir/ablation_histogram.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/query/CMakeFiles/pdc_query.dir/DependInfo.cmake"
  "/root/repo/src/sortrep/CMakeFiles/pdc_sortrep.dir/DependInfo.cmake"
  "/root/repo/src/workloads/CMakeFiles/pdc_workloads.dir/DependInfo.cmake"
  "/root/repo/src/h5lite/CMakeFiles/pdc_h5lite.dir/DependInfo.cmake"
  "/root/repo/src/server/CMakeFiles/pdc_server.dir/DependInfo.cmake"
  "/root/repo/src/rpc/CMakeFiles/pdc_rpc.dir/DependInfo.cmake"
  "/root/repo/src/obj/CMakeFiles/pdc_obj.dir/DependInfo.cmake"
  "/root/repo/src/histogram/CMakeFiles/pdc_histogram.dir/DependInfo.cmake"
  "/root/repo/src/bitmap/CMakeFiles/pdc_bitmap.dir/DependInfo.cmake"
  "/root/repo/src/kernels/CMakeFiles/pdc_kernels.dir/DependInfo.cmake"
  "/root/repo/src/metadata/CMakeFiles/pdc_metadata.dir/DependInfo.cmake"
  "/root/repo/src/pfs/CMakeFiles/pdc_pfs.dir/DependInfo.cmake"
  "/root/repo/src/obs/CMakeFiles/pdc_obs.dir/DependInfo.cmake"
  "/root/repo/src/common/CMakeFiles/pdc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
