# Empty compiler generated dependencies file for traffic_bench.
# This may be replaced when dependencies are built.
