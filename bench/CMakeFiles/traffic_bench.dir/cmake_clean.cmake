file(REMOVE_RECURSE
  "CMakeFiles/traffic_bench.dir/traffic_bench.cc.o"
  "CMakeFiles/traffic_bench.dir/traffic_bench.cc.o.d"
  "traffic_bench"
  "traffic_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
