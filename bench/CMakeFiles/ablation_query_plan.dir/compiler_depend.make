# Empty compiler generated dependencies file for ablation_query_plan.
# This may be replaced when dependencies are built.
