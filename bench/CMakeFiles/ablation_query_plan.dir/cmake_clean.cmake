file(REMOVE_RECURSE
  "CMakeFiles/ablation_query_plan.dir/ablation_query_plan.cc.o"
  "CMakeFiles/ablation_query_plan.dir/ablation_query_plan.cc.o.d"
  "ablation_query_plan"
  "ablation_query_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_query_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
