# Empty dependencies file for ablation_pfs.
# This may be replaced when dependencies are built.
