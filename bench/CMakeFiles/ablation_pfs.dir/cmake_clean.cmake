file(REMOVE_RECURSE
  "CMakeFiles/ablation_pfs.dir/ablation_pfs.cc.o"
  "CMakeFiles/ablation_pfs.dir/ablation_pfs.cc.o.d"
  "ablation_pfs"
  "ablation_pfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
