// Fig. 4 reproduction: 6 compound queries on 4 objects (Energy, x, y, z)
// at the best region size, across the five approaches.
//
// Shapes to expect, per paper §VI-B: all optimized approaches beat the two
// full scans by a wide margin; the sorted approach wins the first queries
// (highly selective on Energy, the sort key) but degrades to histogram-only
// level for the last two queries, where the planner evaluates the 'x'
// condition first; the index approach is uniformly fast on query time but
// pays extra get-data cost.
#include <vector>

#include "bench/bench_util.h"
#include "h5lite/full_scan.h"
#include "sortrep/sorted_replica.h"

namespace pdc::bench {
namespace {

using query::QueryPtr;
using server::Strategy;

QueryPtr build_query(const workloads::VpicObjects& objects,
                     const workloads::MultiQuerySpec& spec) {
  using query::create;
  using query::q_and;
  QueryPtr q = create(objects.energy, QueryOp::kGT, spec.energy_min);
  q = q_and(q, q_and(create(objects.x, QueryOp::kGT, spec.x_lo),
                     create(objects.x, QueryOp::kLT, spec.x_hi)));
  q = q_and(q, q_and(create(objects.y, QueryOp::kGT, spec.y_lo),
                     create(objects.y, QueryOp::kLT, spec.y_hi)));
  q = q_and(q, q_and(create(objects.z, QueryOp::kGT, spec.z_lo),
                     create(objects.z, QueryOp::kLT, spec.z_hi)));
  return q;
}

}  // namespace

int run() {
  // Enough regions that even a 5 %-selective driver range spans every
  // server (the paper's 466 GB / 32 MB regime).
  BenchWorld world = BenchWorld::create("fig4", 1ull << 22);
  const auto queries = workloads::vpic_multi_queries();
  const double n = static_cast<double>(world.data.size());

  obj::ImportOptions options;
  options.region_size_bytes = env_u64("PDC_BENCH_REGION_BYTES", 65536);
  obj::ObjectStore store(*world.cluster);
  auto objects = unwrap(workloads::import_vpic(store, world.data, options),
                        "import vpic");
  for (const ObjectId id :
       {objects.energy, objects.x, objects.y, objects.z}) {
    check(store.build_bitmap_index(id), "bitmap index");
  }
  unwrap(sortrep::build_sorted_replica(store, objects.energy, options),
         "sorted replica");

  // ---- HDF5-F baseline: read all four columns, scan every conjunct.
  // Default-Lustre striping (few OSTs) vs PDC's whole-pool distribution.
  pfs::PfsConfig h5_cfg = world.cluster->config();
  h5_cfg.root_dir = world.scratch_dir + "/h5";
  h5_cfg.num_osts = 1;   // Lustre default striping
  h5_cfg.stripe_count = 1;
  auto h5_cluster = unwrap(pfs::PfsCluster::Create(h5_cfg), "h5 cluster");
  check(workloads::write_vpic_h5(*h5_cluster, world.data, "vpic4.h5"),
        "write h5");
  auto reader = unwrap(h5lite::H5LiteReader::Open(*h5_cluster, "vpic4.h5"),
                       "h5 open");
  h5lite::ParallelFullScan baseline(*h5_cluster, reader, world.num_servers);
  const std::vector<std::string> columns{"Energy", "x", "y", "z"};
  check(baseline.load(columns), "h5 load");
  const double h5_amortized_read =
      baseline.load_elapsed_seconds() / static_cast<double>(queries.size());
  const CostModel cost = world.cluster->config().cost;

  print_header("Fig 4: multi-object (Energy,x,y,z) queries, 6-query set",
               "approach query sel_pct query_s getdata_s hits");

  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const auto& spec = queries[qi];
    std::vector<h5lite::ScanCondition> conditions{
        {"Energy", ValueInterval::from_op(QueryOp::kGT, spec.energy_min)},
        {"x", ValueInterval::from_op(QueryOp::kGT, spec.x_lo)
                  .intersect(ValueInterval::from_op(QueryOp::kLT, spec.x_hi))},
        {"y", ValueInterval::from_op(QueryOp::kGT, spec.y_lo)
                  .intersect(ValueInterval::from_op(QueryOp::kLT, spec.y_hi))},
        {"z", ValueInterval::from_op(QueryOp::kGT, spec.z_lo)
                  .intersect(ValueInterval::from_op(QueryOp::kLT, spec.z_hi))},
    };
    auto result = unwrap(baseline.scan(conditions, true), "h5 scan");
    const double getdata =
        cost.net_cost(result.num_hits * sizeof(float)) +
        static_cast<double>(result.num_hits * sizeof(float)) /
            cost.memcpy_bandwidth_bps;
    std::printf("%-7s %zu %9.5f %10.6f %10.6f %" PRIu64 "\n", "HDF5-F", qi,
                100.0 * static_cast<double>(result.num_hits) / n,
                h5_amortized_read + result.scan_elapsed_s, getdata,
                result.num_hits);
  }

  const Strategy strategies[] = {Strategy::kFullScan, Strategy::kHistogram,
                                 Strategy::kHistogramIndex,
                                 Strategy::kSortedHistogram};
  for (const Strategy strategy : strategies) {
    query::ServiceOptions service_options;
    service_options.strategy = strategy;
    service_options.num_servers = world.num_servers;
    query::QueryService service(store, service_options);

    double amortized_read = 0.0;
    if (strategy == Strategy::kFullScan) {
      // Warm the cache with all four objects, amortize the cold read.
      const QueryPtr warm = build_query(
          objects, {-1e30, -1e30, 1e30, -1e30, 1e30, -1e30, 1e30});
      unwrap(service.get_num_hits(warm), "warmup");
      amortized_read = service.last_stats().max_server_io_seconds /
                       static_cast<double>(queries.size());
    }
    // The optimized strategies run the sequence cold; caches warm up
    // across the sequence exactly as the paper describes (§VI-A).
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      const QueryPtr q = build_query(objects, queries[qi]);
      auto selection = unwrap(service.get_selection(q), "get_selection");
      const double query_s =
          service.last_stats().sim_elapsed_seconds + amortized_read;
      double getdata_s = 0.0;
      if (selection.num_hits > 0) {
        std::vector<float> values(selection.num_hits);
        check(service.get_data<float>(objects.energy, selection, values),
              "get_data");
        getdata_s = service.last_stats().sim_elapsed_seconds;
      }
      std::printf("%-7s %zu %9.5f %10.6f %10.6f %" PRIu64 "\n",
                  std::string(server::strategy_name(strategy)).c_str(), qi,
                  100.0 * static_cast<double>(selection.num_hits) / n,
                  query_s, getdata_s, selection.num_hits);
    }
  }
  return 0;
}

}  // namespace pdc::bench

int main() { return pdc::bench::run(); }
