// Mixed read/write sweep: simulated cost of querying an object while a
// fraction of operations mutate it through the kTransferWrite path.
//
// For each (strategy, write_fraction) cell a fresh store is built, then a
// seeded op stream runs range queries interleaved with 64-element
// overwrites.  Reported numbers are *simulated* seconds from the cost
// model (deterministic), plus write-path observability: stale-region scan
// fallbacks, inline delta compactions, and the final data epoch.
//
// Environment: PDC_BENCH_PARTICLES (default 2^18), PDC_BENCH_SERVERS
// (default 8), PDC_BENCH_DIR, PDC_BENCH_JSON (default BENCH_writes.json).
#include <cinttypes>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "sortrep/sorted_replica.h"

namespace pdc::bench {
namespace {

struct WriteRow {
  const char* strategy = "";
  double write_fraction = 0.0;
  std::uint64_t ops = 0;
  std::uint64_t writes = 0;
  double read_sim_s = 0.0;
  double write_sim_s = 0.0;
  std::uint64_t regions_stale = 0;
  std::uint64_t compactions = 0;
  std::uint64_t data_epoch = 0;
};

struct Cell {
  server::Strategy strategy;
  const char* name;
};

WriteRow run_cell(const std::string& scratch, const Cell& cell,
                  double write_fraction, std::uint64_t num_elements,
                  std::uint32_t num_servers) {
  std::filesystem::remove_all(scratch);
  pfs::PfsConfig cfg;
  cfg.root_dir = scratch;
  cfg.num_osts = 16;
  cfg.stripe_count = 4;
  cfg.stripe_size = 1ull << 20;
  auto cluster = unwrap(pfs::PfsCluster::Create(cfg), "PFS create");
  obj::ObjectStore store(*cluster);

  Rng data_rng(0xBE7C);
  std::vector<float> values(num_elements);
  for (auto& v : values) v = static_cast<float>(data_rng.uniform(0.0, 10.0));

  obj::ImportOptions import_options;
  import_options.region_size_bytes = 16384;  // 4096 floats per region
  const ObjectId container =
      unwrap(store.create_container("wbench"), "container");
  const ObjectId object = unwrap(
      store.import_object<float>(container, "col",
                                 std::span<const float>(values),
                                 import_options),
      "import");
  check(store.build_bitmap_index(object), "index build");
  (void)unwrap(sortrep::build_sorted_replica(store, object, import_options),
               "replica build");

  query::ServiceOptions options;
  options.num_servers = num_servers;
  options.strategy = cell.strategy;
  options.compact_threshold = 8;
  options.replica_rebuild_threshold = 64;
  query::QueryService service(store, options);

  WriteRow row;
  row.strategy = cell.name;
  row.write_fraction = write_fraction;

  Rng op_rng(0x5EED);
  constexpr std::uint64_t kOps = 200;
  constexpr std::uint64_t kWriteElems = 64;
  for (std::uint64_t i = 0; i < kOps; ++i) {
    ++row.ops;
    // The op mix is drawn identically for every cell (same seed), so
    // cells differ only in strategy and fraction, not in the op stream.
    const bool is_write = op_rng.next_double() < write_fraction;
    if (is_write) {
      const std::uint64_t offset = static_cast<std::uint64_t>(
          op_rng.uniform(0.0,
                         static_cast<double>(num_elements - kWriteElems)));
      std::vector<float> repl(kWriteElems);
      for (auto& v : repl) v = static_cast<float>(op_rng.uniform(0.0, 10.0));
      auto report = service.overwrite(
          object, Extent1D{offset, kWriteElems},
          {reinterpret_cast<const std::uint8_t*>(repl.data()),
           repl.size() * sizeof(float)});
      if (!report.ok()) {
        std::fprintf(stderr, "FATAL overwrite: %s\n",
                     report.status().ToString().c_str());
        std::abort();
      }
      ++row.writes;
      if (report->compacted) ++row.compactions;
      row.write_sim_s += service.last_stats().sim_elapsed_seconds;
      row.data_epoch = report->data_epoch;
    } else {
      const double lo = op_rng.uniform(0.0, 9.0);
      const double hi = lo + op_rng.uniform(0.1, 1.0);
      const auto q = query::q_and(query::create(object, QueryOp::kGT, lo),
                                  query::create(object, QueryOp::kLT, hi));
      auto selection = service.get_selection(q);
      if (!selection.ok()) {
        std::fprintf(stderr, "FATAL query: %s\n",
                     selection.status().ToString().c_str());
        std::abort();
      }
      const query::OpStats stats = service.last_stats();
      row.read_sim_s += stats.sim_elapsed_seconds;
      row.regions_stale += stats.regions_stale;
    }
  }
  return row;
}

}  // namespace
}  // namespace pdc::bench

int main() {
  using namespace pdc::bench;

  const std::uint64_t num_elements =
      env_u64("PDC_BENCH_PARTICLES", 1ull << 18);
  const auto num_servers =
      static_cast<std::uint32_t>(env_u64("PDC_BENCH_SERVERS", 8));
  const std::string scratch =
      env_str("PDC_BENCH_DIR", "/tmp/pdc_bench") + "/writes";

  const Cell cells[] = {
      {pdc::server::Strategy::kHistogramIndex, "PDC-HI"},
      {pdc::server::Strategy::kSortedHistogram, "PDC-SH"},
      {pdc::server::Strategy::kAdaptive, "PDC-A"},
  };
  const double fractions[] = {0.0, 0.1, 0.5};

  print_header("mixed read/write sweep (simulated seconds)",
               "strategy  wfrac  reads_s  writes_s  stale  compact  epoch");
  std::vector<WriteRow> rows;
  for (const Cell& cell : cells) {
    for (const double fraction : fractions) {
      WriteRow row =
          run_cell(scratch, cell, fraction, num_elements, num_servers);
      std::printf("%-8s  %4.2f  %8.4f  %8.4f  %5" PRIu64 "  %7" PRIu64
                  "  %5" PRIu64 "\n",
                  row.strategy, row.write_fraction, row.read_sim_s,
                  row.write_sim_s, row.regions_stale, row.compactions,
                  row.data_epoch);
      rows.push_back(row);
    }
  }
  std::filesystem::remove_all(scratch);

  const std::string json_path =
      env_str("PDC_BENCH_JSON", "BENCH_writes.json");
  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "FATAL: cannot open %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"writes\",\n");
  std::fprintf(out, "  \"particles\": %llu,\n",
               static_cast<unsigned long long>(num_elements));
  std::fprintf(out, "  \"servers\": %u,\n", num_servers);
  std::fprintf(out, "  \"writes\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const WriteRow& row = rows[i];
    std::fprintf(out,
                 "    {\"strategy\": \"%s\", \"write_fraction\": %.2f, "
                 "\"ops\": %" PRIu64 ", \"write_ops\": %" PRIu64 ", "
                 "\"read_sim_s\": %.9f, \"write_sim_s\": %.9f, "
                 "\"regions_stale\": %" PRIu64 ", \"compactions\": %" PRIu64
                 ", \"data_epoch\": %" PRIu64 "}%s\n",
                 row.strategy, row.write_fraction, row.ops, row.writes,
                 row.read_sim_s, row.write_sim_s, row.regions_stale,
                 row.compactions, row.data_epoch,
                 i + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
