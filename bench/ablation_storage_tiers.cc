// Ablation: the deep memory hierarchy (paper §II — "a region ... can
// reside on any layer of the memory/storage hierarchy").
//
// Places the queried object's regions on disk, NVRAM and remote memory in
// turn and reports the simulated query time of an identical PDC-H query
// (caches disabled to isolate the storage layer).  Also shows a mixed
// placement where only the hot (energetic) regions are promoted — the
// placement the PDC runtime would converge to for this workload.
#include "bench/bench_util.h"

namespace pdc::bench {

int run() {
  BenchWorld world = BenchWorld::create("ablation_tiers");
  obj::ObjectStore store(*world.cluster);
  const ObjectId container =
      unwrap(store.create_container("vpic"), "container");
  obj::ImportOptions options;
  options.region_size_bytes = 131072;
  const ObjectId energy = unwrap(
      store.import_object<float>(container, "Energy",
                                 std::span<const float>(world.data.energy),
                                 options),
      "import");

  const auto q = query::q_and(query::create(energy, QueryOp::kGT, 2.1),
                              query::create(energy, QueryOp::kLT, 2.4));
  const auto run_once = [&](const char* label) {
    query::ServiceOptions service_options;
    service_options.num_servers = world.num_servers;
    service_options.cache_capacity_bytes = 0;  // isolate the storage layer
    query::QueryService service(store, service_options);
    const std::uint64_t hits = unwrap(service.get_num_hits(q), "nhits");
    std::printf("%-22s %10.6f %llu\n", label,
                service.last_stats().sim_elapsed_seconds,
                static_cast<unsigned long long>(hits));
  };

  print_header("Ablation: region placement across the memory hierarchy "
               "(PDC-H, 2.1<Energy<2.4, caches off)",
               "placement query_s hits");
  check(store.set_object_tier(energy, obj::StorageTier::kDisk), "tier");
  run_once("all-disk");
  check(store.set_object_tier(energy, obj::StorageTier::kNvram), "tier");
  run_once("all-nvram");
  check(store.set_object_tier(energy, obj::StorageTier::kMemory), "tier");
  run_once("all-memory");

  // Mixed: promote only regions that can hold energetic particles.
  check(store.set_object_tier(energy, obj::StorageTier::kDisk), "tier");
  const auto desc = unwrap(store.get(energy), "desc");
  std::size_t promoted = 0;
  for (const auto& region : desc->regions) {
    if (region.histogram.max_value() > 2.0) {
      check(store.set_region_tier(energy, region.index,
                                  obj::StorageTier::kNvram),
            "tier");
      ++promoted;
    }
  }
  std::printf("# promoted %zu of %zu regions to NVRAM\n", promoted,
              desc->regions.size());
  run_once("hot-regions-nvram");
  return 0;
}

}  // namespace pdc::bench

int main() { return pdc::bench::run(); }
