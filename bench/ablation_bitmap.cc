// Ablation: bitmap index design (paper §III-D4).
//
// Part 1 (tables): index size as a fraction of data (paper reports FastBit
// at 15–17 %), candidate-set size, and the partial-load saving (reading
// only query-overlapping bins instead of the whole region index) — all as
// a function of bin count (FastBit's "precision" knob).
// Part 2 (google-benchmark): WAH logical ops and index build throughput.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bitmap/binned_index.h"
#include "bitmap/wah.h"
#include "common/rng.h"
#include "common/serial.h"
#include "workloads/vpic.h"

namespace {

using pdc::bitmap::BinnedBitmapIndex;
using pdc::bitmap::IndexConfig;
using pdc::bitmap::PartitionedIndexView;
using pdc::bitmap::WahBitVector;

std::vector<float> vpic_energy(std::uint64_t n) {
  pdc::workloads::VpicConfig cfg;
  cfg.num_particles = n;
  return pdc::workloads::generate_vpic(cfg).energy;
}

void index_size_table() {
  const auto energy = vpic_energy(1 << 20);
  constexpr std::size_t kRegion = 1 << 16;  // 256 KiB of floats
  const double data_bytes = static_cast<double>(kRegion * sizeof(float));
  std::printf(
      "\n# Ablation: index size, candidates and partial-load fraction vs\n"
      "# FastBit precision (0 = equi-depth quantile bins), VPIC energy,\n"
      "# query 2.1<E<2.2\n"
      "precision index_pct_of_data candidates_pct partial_load_pct\n");
  const auto q = pdc::ValueInterval::from_op(pdc::QueryOp::kGT, 2.1)
                     .intersect(
                         pdc::ValueInterval::from_op(pdc::QueryOp::kLT, 2.2));
  for (const std::uint32_t precision : {0u, 1u, 2u, 3u}) {
    IndexConfig cfg;
    cfg.precision = precision;
    cfg.num_bins = 128;
    double index_bytes = 0.0;
    double candidates = 0.0;
    double partial_bytes = 0.0;
    std::size_t regions = 0;
    for (std::size_t off = 0; off + kRegion <= energy.size();
         off += kRegion) {
      const auto idx = BinnedBitmapIndex::Build<float>(
          std::span<const float>(energy).subspan(off, kRegion), cfg);
      pdc::SerialWriter w;
      idx.serialize(w);
      index_bytes += static_cast<double>(w.size());
      const auto probe = idx.probe(q);
      candidates += static_cast<double>(probe.candidates.size());

      // Partial load: header + only the bins the query touches.
      const auto blob = w.take();
      auto view = PartitionedIndexView::ParseHeader(
          std::span<const std::uint8_t>(blob).first(
              static_cast<std::size_t>(idx.header_bytes())));
      double loaded = static_cast<double>(idx.header_bytes());
      if (view.ok()) {
        const auto selection = view->select_bins(q);
        for (const auto b : selection.full) loaded += view->bin_extent(b).count;
        for (const auto b : selection.partial) {
          loaded += view->bin_extent(b).count;
        }
      }
      partial_bytes += loaded;
      ++regions;
    }
    const double r = static_cast<double>(regions);
    std::printf("%9u %17.2f %14.4f %16.3f\n", precision,
                100.0 * index_bytes / (data_bytes * r),
                100.0 * candidates / (static_cast<double>(kRegion) * r),
                100.0 * partial_bytes / (data_bytes * r));
  }
}

void BM_WahAnd(benchmark::State& state) {
  const double density = static_cast<double>(state.range(0)) / 1000.0;
  pdc::Rng rng(7);
  WahBitVector a;
  WahBitVector b;
  for (int i = 0; i < 1 << 20; ++i) {
    a.append_bit(rng.next_double() < density);
    b.append_bit(rng.next_double() < density);
  }
  for (auto _ : state) {
    auto r = WahBitVector::And(a, b);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * (1 << 20));
}
BENCHMARK(BM_WahAnd)->Arg(1)->Arg(50)->Arg(500);

void BM_WahAppendRun(benchmark::State& state) {
  for (auto _ : state) {
    WahBitVector v;
    for (int i = 0; i < 1000; ++i) {
      v.append_run(false, 10000);
      v.append_bit(true);
    }
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_WahAppendRun);

void BM_IndexBuild(benchmark::State& state) {
  const auto energy = vpic_energy(1 << 17);
  IndexConfig cfg;
  cfg.num_bins = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    auto idx = BinnedBitmapIndex::Build<float>(
        std::span<const float>(energy), cfg);
    benchmark::DoNotOptimize(idx);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(energy.size()));
}
BENCHMARK(BM_IndexBuild)->Arg(16)->Arg(64);

void BM_IndexProbe(benchmark::State& state) {
  const auto energy = vpic_energy(1 << 17);
  const auto idx =
      BinnedBitmapIndex::Build<float>(std::span<const float>(energy));
  const auto q = pdc::ValueInterval::from_op(pdc::QueryOp::kGT, 2.0);
  for (auto _ : state) {
    auto probe = idx.probe(q);
    benchmark::DoNotOptimize(probe);
  }
}
BENCHMARK(BM_IndexProbe);

}  // namespace

int main(int argc, char** argv) {
  index_size_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
