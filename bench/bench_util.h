// Shared setup for the figure-reproduction benchmarks.
//
// Environment knobs (all optional):
//   PDC_BENCH_PARTICLES  particles in the VPIC dataset (default 2^21)
//   PDC_BENCH_SERVERS    PDC servers (default 8; Fig. 6 sweeps its own)
//   PDC_BENCH_DIR        scratch directory (default /tmp/pdc_bench)
//
// All reported times are *simulated* seconds from the cost model
// (cluster-shaped I/O, network and scan costs; see common/cost_model.h) —
// results are deterministic and reflect a 64-node deployment's behaviour
// rather than this machine's.
#pragma once

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>

#include "common/status.h"
#include "obj/object_store.h"
#include "pfs/pfs.h"
#include "query/service.h"
#include "workloads/vpic.h"

namespace pdc::bench {

inline std::uint64_t env_u64(const char* name, std::uint64_t def) {
  if (const char* v = std::getenv(name)) {
    return std::strtoull(v, nullptr, 10);
  }
  return def;
}

inline std::string env_str(const char* name, const std::string& def) {
  if (const char* v = std::getenv(name)) return v;
  return def;
}

/// Abort-on-error helpers: benches treat setup failures as fatal.
inline void check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
    std::abort();
  }
}

template <typename T>
T unwrap(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what,
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

/// One PFS cluster + generated VPIC dataset, shared by figure benches.
struct BenchWorld {
  std::string scratch_dir;
  std::unique_ptr<pfs::PfsCluster> cluster;
  workloads::VpicData data;
  std::uint32_t num_servers = 8;

  static BenchWorld create(const char* bench_name,
                           std::uint64_t default_particles = 1ull << 21) {
    BenchWorld world;
    world.scratch_dir = env_str("PDC_BENCH_DIR", "/tmp/pdc_bench") + "/" +
                        bench_name;
    std::filesystem::remove_all(world.scratch_dir);

    pfs::PfsConfig cfg;
    cfg.root_dir = world.scratch_dir;
    cfg.num_osts = 16;
    cfg.stripe_count = 4;
    cfg.stripe_size = 1ull << 20;
    world.cluster = unwrap(pfs::PfsCluster::Create(cfg), "PFS create");

    workloads::VpicConfig vpic;
    vpic.num_particles = env_u64("PDC_BENCH_PARTICLES", default_particles);
    world.data = workloads::generate_vpic(vpic);
    world.num_servers =
        static_cast<std::uint32_t>(env_u64("PDC_BENCH_SERVERS", 8));
    return world;
  }

  BenchWorld() = default;
  BenchWorld(BenchWorld&&) = default;
  BenchWorld& operator=(BenchWorld&&) = default;

  ~BenchWorld() {
    // A moved-from world holds an empty scratch path and cleans nothing.
    if (!scratch_dir.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(scratch_dir, ec);
    }
  }
};

/// Paper-style approach labels in plot order.
inline constexpr const char* kApproachNames[] = {"HDF5-F", "PDC-F", "PDC-H",
                                                 "PDC-HI", "PDC-SH"};

inline void print_header(const char* title, const char* columns) {
  std::printf("\n# %s\n%s\n", title, columns);
}

}  // namespace pdc::bench
