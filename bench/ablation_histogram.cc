// Ablation: the global-histogram design (paper §III-D2, §IV).
//
// Part 1 (table): selectivity-estimation quality — lower/upper bound
// tightness vs bin count, and the cost of merging local histograms into the
// global one (the operation Algorithm 1's power-of-two lattice makes
// possible without re-reading data).
// Part 2 (google-benchmark): build / merge / estimate throughput.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "histogram/histogram.h"
#include "workloads/vpic.h"

namespace {

using pdc::hist::HistogramConfig;
using pdc::hist::MergeableHistogram;

std::vector<float> vpic_energy(std::uint64_t n) {
  pdc::workloads::VpicConfig cfg;
  cfg.num_particles = n;
  return pdc::workloads::generate_vpic(cfg).energy;
}

void estimation_quality_table() {
  const auto energy = vpic_energy(1 << 20);
  std::printf(
      "\n# Ablation: selectivity estimate tightness vs target bin count\n"
      "bins actual_bins sel_true_pct sel_lower_pct sel_upper_pct\n");
  const auto q = pdc::ValueInterval::from_op(pdc::QueryOp::kGT, 2.1)
                     .intersect(pdc::ValueInterval::from_op(pdc::QueryOp::kLT,
                                                            2.2));
  std::uint64_t truth = 0;
  for (const float e : energy) truth += q.contains(e);
  const double n = static_cast<double>(energy.size());
  for (const std::uint32_t bins : {8u, 16u, 32u, 64u, 128u, 256u}) {
    HistogramConfig cfg;
    cfg.target_bins = bins;
    const auto h =
        MergeableHistogram::Build<float>(std::span<const float>(energy), cfg);
    const auto est = h.estimate(q);
    std::printf("%4u %11zu %12.5f %13.5f %13.5f\n", bins, h.num_bins(),
                100.0 * truth / n, 100.0 * est.lower / n,
                100.0 * est.upper / n);
  }
}

void merge_cost_table() {
  const auto energy = vpic_energy(1 << 20);
  std::printf(
      "\n# Ablation: global-histogram merge cost vs number of regions\n"
      "regions merge_wall_ms global_bins\n");
  for (const std::size_t regions : {16u, 64u, 256u, 1024u}) {
    const std::size_t per = energy.size() / regions;
    std::vector<MergeableHistogram> locals;
    locals.reserve(regions);
    for (std::size_t r = 0; r < regions; ++r) {
      locals.push_back(MergeableHistogram::Build<float>(
          std::span<const float>(energy).subspan(r * per, per)));
    }
    pdc::WallTimer timer;
    const auto global = MergeableHistogram::Merge(locals);
    std::printf("%7zu %13.3f %11zu\n", regions,
                1000.0 * timer.elapsed_seconds(), global.num_bins());
  }
}

void BM_HistogramBuild(benchmark::State& state) {
  const auto energy = vpic_energy(1 << 18);
  HistogramConfig cfg;
  cfg.target_bins = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    auto h =
        MergeableHistogram::Build<float>(std::span<const float>(energy), cfg);
    benchmark::DoNotOptimize(h);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(energy.size()));
}
BENCHMARK(BM_HistogramBuild)->Arg(16)->Arg(64)->Arg(256);

void BM_HistogramMerge(benchmark::State& state) {
  const auto energy = vpic_energy(1 << 18);
  const auto regions = static_cast<std::size_t>(state.range(0));
  const std::size_t per = energy.size() / regions;
  std::vector<MergeableHistogram> locals;
  for (std::size_t r = 0; r < regions; ++r) {
    locals.push_back(MergeableHistogram::Build<float>(
        std::span<const float>(energy).subspan(r * per, per)));
  }
  for (auto _ : state) {
    auto global = MergeableHistogram::Merge(locals);
    benchmark::DoNotOptimize(global);
  }
}
BENCHMARK(BM_HistogramMerge)->Arg(16)->Arg(256);

void BM_SelectivityEstimate(benchmark::State& state) {
  const auto energy = vpic_energy(1 << 18);
  const auto h =
      MergeableHistogram::Build<float>(std::span<const float>(energy));
  const auto q = pdc::ValueInterval::from_op(pdc::QueryOp::kGT, 2.0);
  for (auto _ : state) {
    auto est = h.estimate(q);
    benchmark::DoNotOptimize(est);
  }
}
BENCHMARK(BM_SelectivityEstimate);

}  // namespace

int main(int argc, char** argv) {
  estimation_quality_table();
  merge_cost_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
