// Ablation: selectivity-ordered evaluation (paper §III-D2: "the execution
// order has a significant impact on the overall query evaluation time").
//
// Runs the paper's multi-object queries twice — with the global-histogram
// planner ordering conjuncts by estimated selectivity, and with the
// ordering disabled (user/DNF order) — and reports bytes read and
// simulated query time for each.
#include <vector>

#include "bench/bench_util.h"

namespace pdc::bench {
namespace {

using query::QueryPtr;

QueryPtr build_query(const workloads::VpicObjects& objects,
                     const workloads::MultiQuerySpec& spec) {
  using query::create;
  using query::q_and;
  // Deliberately list the unselective spatial conditions first; only the
  // planner's reordering can rescue the naive order.
  QueryPtr q = q_and(create(objects.z, QueryOp::kGT, spec.z_lo),
                     create(objects.z, QueryOp::kLT, spec.z_hi));
  q = q_and(q, q_and(create(objects.y, QueryOp::kGT, spec.y_lo),
                     create(objects.y, QueryOp::kLT, spec.y_hi)));
  q = q_and(q, q_and(create(objects.x, QueryOp::kGT, spec.x_lo),
                     create(objects.x, QueryOp::kLT, spec.x_hi)));
  q = q_and(q, create(objects.energy, QueryOp::kGT, spec.energy_min));
  return q;
}

}  // namespace

int run() {
  BenchWorld world = BenchWorld::create("ablation_query_plan");
  obj::ImportOptions options;
  options.region_size_bytes = 262144;
  obj::ObjectStore store(*world.cluster);
  auto objects = unwrap(workloads::import_vpic(store, world.data, options),
                        "import");

  print_header(
      "Ablation: selectivity-ordered AND evaluation (PDC-H, 6 queries)",
      "query ordering bytes_read query_s hits");
  const auto queries = workloads::vpic_multi_queries();
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    for (const bool ordered : {true, false}) {
      query::ServiceOptions service_options;
      service_options.strategy = server::Strategy::kHistogram;
      service_options.num_servers = world.num_servers;
      service_options.order_by_selectivity = ordered;
      // Fresh service per run: cold caches for a fair comparison.
      query::QueryService service(store, service_options);
      const std::uint64_t hits =
          unwrap(service.get_num_hits(build_query(objects, queries[qi])),
                 "nhits");
      const auto& stats = service.last_stats();
      std::printf("%5zu %-8s %10llu %10.6f %llu\n", qi,
                  ordered ? "ordered" : "naive",
                  static_cast<unsigned long long>(stats.server_bytes_read),
                  stats.sim_elapsed_seconds,
                  static_cast<unsigned long long>(hits));
    }
  }
  return 0;
}

}  // namespace pdc::bench

int main() { return pdc::bench::run(); }
