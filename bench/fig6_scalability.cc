// Fig. 6 reproduction: scalability of the query service.  One multi-object
// query (~0.011 % selectivity) evaluated with a growing server fleet
// (paper: 32–512 servers; scaled here to 2–64), for the three optimized
// strategies.  Expect query time to fall steadily with more servers.
#include <vector>

#include "bench/bench_util.h"
#include "sortrep/sorted_replica.h"

namespace pdc::bench {
namespace {

using query::QueryPtr;
using server::Strategy;

}  // namespace

int run() {
  // Scaling needs many regions per server even at 64 servers: default to a
  // larger dataset and small regions (512 regions at the defaults).
  BenchWorld world = BenchWorld::create("fig6", 1ull << 22);
  obj::ImportOptions options;
  options.region_size_bytes = env_u64("PDC_BENCH_REGION_BYTES", 32768);
  obj::ObjectStore store(*world.cluster);
  auto objects = unwrap(workloads::import_vpic(store, world.data, options),
                        "import");
  for (const ObjectId id :
       {objects.energy, objects.x, objects.y, objects.z}) {
    check(store.build_bitmap_index(id), "index");
  }
  unwrap(sortrep::build_sorted_replica(store, objects.energy, options),
         "replica");

  // Query 3 of the paper's multi-object set (~0.011 % selectivity regime).
  const auto spec = workloads::vpic_multi_queries()[2];
  const auto build_query = [&] {
    using query::create;
    using query::q_and;
    QueryPtr q = create(objects.energy, QueryOp::kGT, spec.energy_min);
    q = q_and(q, q_and(create(objects.x, QueryOp::kGT, spec.x_lo),
                       create(objects.x, QueryOp::kLT, spec.x_hi)));
    q = q_and(q, q_and(create(objects.y, QueryOp::kGT, spec.y_lo),
                       create(objects.y, QueryOp::kLT, spec.y_hi)));
    q = q_and(q, q_and(create(objects.z, QueryOp::kGT, spec.z_lo),
                       create(objects.z, QueryOp::kLT, spec.z_hi)));
    return q;
  };

  print_header("Fig 6: query time vs number of PDC servers (scaled 2-64)",
               "servers approach query_s hits");
  for (const std::uint32_t servers : {2u, 4u, 8u, 16u, 32u, 64u}) {
    for (const Strategy strategy :
         {Strategy::kHistogram, Strategy::kHistogramIndex,
          Strategy::kSortedHistogram}) {
      query::ServiceOptions service_options;
      service_options.strategy = strategy;
      service_options.num_servers = servers;
      query::QueryService service(store, service_options);
      const std::uint64_t hits =
          unwrap(service.get_num_hits(build_query()), "nhits");
      std::printf("%7u %-7s %10.6f %" PRIu64 "\n", servers,
                  std::string(server::strategy_name(strategy)).c_str(),
                  service.last_stats().sim_elapsed_seconds, hits);
    }
  }
  return 0;
}

}  // namespace pdc::bench

int main() { return pdc::bench::run(); }
