# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/pfs_test[1]_include.cmake")
include("/root/repo/build/tests/histogram_test[1]_include.cmake")
include("/root/repo/build/tests/bitmap_test[1]_include.cmake")
include("/root/repo/build/tests/h5lite_test[1]_include.cmake")
include("/root/repo/build/tests/obj_test[1]_include.cmake")
include("/root/repo/build/tests/metadata_test[1]_include.cmake")
include("/root/repo/build/tests/rpc_test[1]_include.cmake")
include("/root/repo/build/tests/sortrep_test[1]_include.cmake")
include("/root/repo/build/tests/server_test[1]_include.cmake")
include("/root/repo/build/tests/planner_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/capi_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
