file(REMOVE_RECURSE
  "CMakeFiles/trace2json.dir/trace2json.cc.o"
  "CMakeFiles/trace2json.dir/trace2json.cc.o.d"
  "trace2json"
  "trace2json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace2json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
