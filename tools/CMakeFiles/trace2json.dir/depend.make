# Empty dependencies file for trace2json.
# This may be replaced when dependencies are built.
