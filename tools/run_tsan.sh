#!/usr/bin/env bash
# ThreadSanitizer job: rebuild the concurrency-heavy test binaries with
# -fsanitize=thread and run every ctest entry carrying the `tsan` label
# (rpc_test, chaos_test, concurrency_test, querycheck_test, obs_test,
# pipeline_test, kernels_test, overload_test, write_path_test).
#
# Usage:  tools/run_tsan.sh [extra ctest args...]
#
# The build goes to build-tsan/ (gitignored) so it never pollutes the
# regular build tree.  TSan runs 5-15x slower than native; the tsan-labeled
# tests get a 480 s ctest timeout to absorb that.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build-tsan
cmake -B "${BUILD_DIR}" -S . -DPDC_SANITIZE=thread >/dev/null
cmake --build "${BUILD_DIR}" -j"$(nproc)" \
      --target rpc_test chaos_test concurrency_test querycheck_test obs_test \
               pipeline_test kernels_test overload_test write_path_test

# halt_on_error keeps the first race report at the top of the log instead
# of burying it under cascading follow-ups.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"
ctest --test-dir "${BUILD_DIR}" -L tsan --output-on-failure "$@"
