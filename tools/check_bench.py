#!/usr/bin/env python3
"""Perf regression gate over report_json output.

Compares the *simulated* times (deterministic cost-model output, immune to
machine noise) of a candidate BENCH json against a committed baseline and
fails when any matched row regresses by more than the threshold.

Usage:
    check_bench.py BASELINE.json CANDIDATE.json \
        [--threshold 0.15] [--sections fig3,fig6] \
        [--require-strategy PDC-A]

Rows are matched by (section, strategy, servers, threads, query).  Rows
present in only one file are reported but do not fail the gate (new
configurations may be added over time); a row that exists in both files
with candidate sim_s > baseline sim_s * (1 + threshold) fails.  wall_s is
ignored: wall clock on shared CI boxes is noise, the simulated model is
the claim being protected.

--require-strategy NAME (repeatable) additionally fails the gate when the
candidate has no row for the named strategy in any compared section —
protecting against a new strategy silently dropping out of the bench.

--traffic switches to overload-robustness mode: rows come from the
"traffic" section of traffic_bench output, matched by (arrival, load).
Both numbers are deterministic virtual-time model output.  A row fails
when its tail latency regresses (p99_s > baseline * (1 + threshold)) or
its goodput under load drops (goodput_qps < baseline * (1 - threshold)).
"""

import argparse
import json
import sys


def load_rows(path, sections):
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for section in sections:
        for row in doc.get(section, []):
            key = (section, row["strategy"], row["servers"], row["threads"],
                   row["query"])
            rows[key] = row
    return rows


def load_traffic_rows(path):
    with open(path) as f:
        doc = json.load(f)
    return {("traffic", row["arrival"], row["load"]): row
            for row in doc.get("traffic", [])}


def check_traffic(args):
    base = load_traffic_rows(args.baseline)
    cand = load_traffic_rows(args.candidate)
    failures = []
    compared = 0
    for key, base_row in sorted(base.items()):
        cand_row = cand.get(key)
        if cand_row is None:
            print(f"note: {key} missing from candidate (skipped)")
            continue
        compared += 1
        label = "/".join(str(k) for k in key)
        checks = [
            ("p99_s", base_row["p99_s"], cand_row["p99_s"],
             cand_row["p99_s"] > base_row["p99_s"] * (1.0 + args.threshold)),
            ("goodput_qps", base_row["goodput_qps"], cand_row["goodput_qps"],
             cand_row["goodput_qps"] <
             base_row["goodput_qps"] * (1.0 - args.threshold)),
        ]
        for metric, b, c, failed in checks:
            marker = ""
            if failed:
                failures.append((key, metric))
                marker = "  <-- REGRESSION"
            rel = (c - b) / b if b > 0 else 0.0
            print(f"{label:28s} {metric:12s} base {b:12.6f}  "
                  f"cand {c:12.6f}  {rel:+7.1%}{marker}")
    for key in sorted(set(cand) - set(base)):
        print(f"note: {key} new in candidate (not gated)")
    if compared == 0:
        print("FAIL: no comparable traffic rows — wrong files?")
        return 1
    if failures:
        print(f"FAIL: {len(failures)} traffic metrics regressed more than "
              f"{args.threshold:.0%}")
        return 1
    print(f"OK: {compared} traffic rows within {args.threshold:.0%} "
          f"of baseline")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="max allowed relative sim_s regression")
    parser.add_argument("--sections", default="fig3,fig6",
                        help="comma-separated row sections to compare")
    parser.add_argument("--require-strategy", action="append", default=[],
                        metavar="NAME",
                        help="fail unless the candidate has rows for this "
                             "strategy (repeatable)")
    parser.add_argument("--traffic", action="store_true",
                        help="compare traffic_bench output (goodput + p99 "
                             "by arrival/load) instead of figure rows")
    args = parser.parse_args()

    if args.traffic:
        return check_traffic(args)

    sections = [s for s in args.sections.split(",") if s]
    base = load_rows(args.baseline, sections)
    cand = load_rows(args.candidate, sections)

    failures = []
    compared = 0
    for key, base_row in sorted(base.items()):
        cand_row = cand.get(key)
        if cand_row is None:
            print(f"note: {key} missing from candidate (skipped)")
            continue
        compared += 1
        b, c = base_row["sim_s"], cand_row["sim_s"]
        limit = b * (1.0 + args.threshold)
        marker = ""
        if c > limit:
            failures.append(key)
            marker = "  <-- REGRESSION"
        rel = (c - b) / b if b > 0 else 0.0
        print(f"{'/'.join(str(k) for k in key):40s} "
              f"base {b:.9f}  cand {c:.9f}  {rel:+7.1%}{marker}")
    for key in sorted(set(cand) - set(base)):
        print(f"note: {key} new in candidate (not gated)")

    if compared == 0:
        print("FAIL: no comparable rows — wrong files or sections?")
        return 1
    cand_strategies = {key[1] for key in cand}
    missing = [s for s in args.require_strategy if s not in cand_strategies]
    if missing:
        print(f"FAIL: candidate has no rows for required "
              f"strateg{'y' if len(missing) == 1 else 'ies'}: "
              f"{', '.join(missing)}")
        return 1
    if failures:
        print(f"FAIL: {len(failures)}/{compared} rows regressed more than "
              f"{args.threshold:.0%} in simulated time")
        return 1
    print(f"OK: {compared} rows within {args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
