#!/usr/bin/env python3
"""Perf regression gate over report_json output.

Compares the *simulated* times (deterministic cost-model output, immune to
machine noise) of a candidate BENCH json against a committed baseline and
fails when any matched row regresses by more than the threshold.

Usage:
    check_bench.py BASELINE.json CANDIDATE.json \
        [--threshold 0.15] [--sections fig3,fig6] \
        [--require-strategy PDC-A]

Rows are matched by (section, strategy, servers, threads, query).  Rows
present in only one file are reported but do not fail the gate (new
configurations may be added over time); a row that exists in both files
with candidate sim_s > baseline sim_s * (1 + threshold) fails.  wall_s is
ignored: wall clock on shared CI boxes is noise, the simulated model is
the claim being protected.

--require-strategy NAME (repeatable) additionally fails the gate when the
candidate has no row for the named strategy in any compared section —
protecting against a new strategy silently dropping out of the bench.

--traffic switches to overload-robustness mode: rows come from the
"traffic" section of traffic_bench output, matched by (arrival, load).
Both numbers are deterministic virtual-time model output.  A row fails
when its tail latency regresses (p99_s > baseline * (1 + threshold)) or
its goodput under load drops (goodput_qps < baseline * (1 - threshold)).

--kernels switches to wall-clock kernel mode (kernels_bench output).
These ARE machine-dependent, so every check is conditioned on the
"machine" stanza each JSON records:
  * SIMD floors (candidate only): scan_f32 avx2 >= 4x scalar GB/s and
    wah_expand avx2 >= 2x scalar MB/s — applied only when the candidate
    machine has AVX2, otherwise note-skipped.
  * Parallel-build floor (candidate only): sortrep_build at 8 threads
    >= 3x faster than at 1 thread — applied only when the candidate has
    >= 8 hardware threads, otherwise note-skipped.
  * Throughput regression vs baseline: a kernel row's GB/s / MB/s /
    Mprobes/s dropping more than the threshold fails — applied only when
    baseline and candidate were recorded on matching machines (same
    hardware_threads and avx2 flag), otherwise note-skipped.
"""

import argparse
import json
import sys


def load_rows(path, sections):
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for section in sections:
        for row in doc.get(section, []):
            key = (section, row["strategy"], row["servers"], row["threads"],
                   row["query"])
            rows[key] = row
    return rows


def load_traffic_rows(path):
    with open(path) as f:
        doc = json.load(f)
    return {("traffic", row["arrival"], row["load"]): row
            for row in doc.get("traffic", [])}


def check_traffic(args):
    base = load_traffic_rows(args.baseline)
    cand = load_traffic_rows(args.candidate)
    failures = []
    compared = 0
    for key, base_row in sorted(base.items()):
        cand_row = cand.get(key)
        if cand_row is None:
            print(f"note: {key} missing from candidate (skipped)")
            continue
        compared += 1
        label = "/".join(str(k) for k in key)
        checks = [
            ("p99_s", base_row["p99_s"], cand_row["p99_s"],
             cand_row["p99_s"] > base_row["p99_s"] * (1.0 + args.threshold)),
            ("goodput_qps", base_row["goodput_qps"], cand_row["goodput_qps"],
             cand_row["goodput_qps"] <
             base_row["goodput_qps"] * (1.0 - args.threshold)),
        ]
        for metric, b, c, failed in checks:
            marker = ""
            if failed:
                failures.append((key, metric))
                marker = "  <-- REGRESSION"
            rel = (c - b) / b if b > 0 else 0.0
            print(f"{label:28s} {metric:12s} base {b:12.6f}  "
                  f"cand {c:12.6f}  {rel:+7.1%}{marker}")
    for key in sorted(set(cand) - set(base)):
        print(f"note: {key} new in candidate (not gated)")
    if compared == 0:
        print("FAIL: no comparable traffic rows — wrong files?")
        return 1
    if failures:
        print(f"FAIL: {len(failures)} traffic metrics regressed more than "
              f"{args.threshold:.0%}")
        return 1
    print(f"OK: {compared} traffic rows within {args.threshold:.0%} "
          f"of baseline")
    return 0


def load_write_rows(path):
    with open(path) as f:
        doc = json.load(f)
    return {("writes", row["strategy"], row["write_fraction"]): row
            for row in doc.get("writes", [])}


def check_writes(args):
    base = load_write_rows(args.baseline)
    cand = load_write_rows(args.candidate)
    failures = []
    compared = 0
    for key, base_row in sorted(base.items()):
        cand_row = cand.get(key)
        if cand_row is None:
            print(f"note: {key} missing from candidate (skipped)")
            continue
        compared += 1
        label = "/".join(str(k) for k in key)
        checks = [("read_sim_s", base_row["read_sim_s"],
                   cand_row["read_sim_s"])]
        # Write cost is only meaningful on cells that actually write.
        if base_row.get("write_ops", 0) > 0:
            checks.append(("write_sim_s", base_row["write_sim_s"],
                           cand_row["write_sim_s"]))
        for metric, b, c in checks:
            regressed = c > b * (1.0 + args.threshold)
            marker = ""
            if regressed:
                failures.append((key, metric))
                marker = "  <-- REGRESSION"
            rel = (c - b) / b if b > 0 else 0.0
            print(f"{label:28s} {metric:12s} base {b:12.6f}  "
                  f"cand {c:12.6f}  {rel:+7.1%}{marker}")
    for key in sorted(set(cand) - set(base)):
        print(f"note: {key} new in candidate (not gated)")
    if compared == 0:
        print("FAIL: no comparable write rows — wrong files?")
        return 1
    # The pure-read column must exist: it pins the read path's cost while
    # the write machinery is present but idle.
    if not any(key[2] == 0.0 for key in cand):
        print("FAIL: candidate has no write_fraction=0 rows — the "
              "read-only baseline dropped out of the bench")
        return 1
    if failures:
        print(f"FAIL: {len(failures)} write-sweep metrics regressed more "
              f"than {args.threshold:.0%}")
        return 1
    print(f"OK: {compared} write-sweep rows within {args.threshold:.0%} "
          f"of baseline")
    return 0


def load_join_rows(path):
    with open(path) as f:
        doc = json.load(f)
    return {("join", row["strategy"], row["servers"], row["sources"]): row
            for row in doc.get("join", [])}


def check_join(args):
    """Join-sweep mode: sim_s regression diff plus hard invariants on the
    candidate alone — both strategies must produce the same pair count in
    every (servers, sources) cell, and zone-shuffle must ship strictly
    fewer bytes than broadcast wherever >= 4 servers participate (the
    core claim of the zones algorithm over naive broadcast)."""
    base = load_join_rows(args.baseline)
    cand = load_join_rows(args.candidate)
    failures = []
    compared = 0
    for key, base_row in sorted(base.items()):
        cand_row = cand.get(key)
        if cand_row is None:
            print(f"note: {key} missing from candidate (skipped)")
            continue
        compared += 1
        label = "/".join(str(k) for k in key)
        b, c = base_row["sim_s"], cand_row["sim_s"]
        regressed = c > b * (1.0 + args.threshold)
        if regressed:
            failures.append((key, "sim_s"))
        rel = (c - b) / b if b > 0 else 0.0
        print(f"{label:32s} sim_s  base {b:12.6f}  cand {c:12.6f}  "
              f"{rel:+7.1%}{'  <-- REGRESSION' if regressed else ''}")
    for key in sorted(set(cand) - set(base)):
        print(f"note: {key} new in candidate (not gated)")

    # Hard invariants over the candidate, independent of any baseline.
    cells = sorted({(k[2], k[3]) for k in cand})
    for servers, sources in cells:
        zone = cand.get(("join", "zone", servers, sources))
        bcast = cand.get(("join", "broadcast", servers, sources))
        if zone is None or bcast is None:
            failures.append(((servers, sources), "missing strategy row"))
            print(f"FAILCHECK {servers}srv/{sources}: a strategy row "
                  f"dropped out of the bench")
            continue
        if zone["pairs"] != bcast["pairs"]:
            failures.append(((servers, sources), "pair count mismatch"))
            print(f"FAILCHECK {servers}srv/{sources}: zone pairs "
                  f"{zone['pairs']} != broadcast pairs {bcast['pairs']}")
        if servers >= 4 and zone["shuffle_bytes"] >= bcast["shuffle_bytes"]:
            failures.append(((servers, sources), "zone shuffle not smaller"))
            print(f"FAILCHECK {servers}srv/{sources}: zone shuffle "
                  f"{zone['shuffle_bytes']}B >= broadcast "
                  f"{bcast['shuffle_bytes']}B")
        if servers >= 2 and bcast["shuffle_bytes"] == 0:
            failures.append(((servers, sources), "broadcast shipped 0B"))
            print(f"FAILCHECK {servers}srv/{sources}: broadcast shipped "
                  f"nothing — exchange accounting broken")

    if compared == 0 and not cells:
        print("FAIL: no join rows — wrong files?")
        return 1
    if failures:
        print(f"FAIL: {len(failures)} join checks failed "
              f"(threshold {args.threshold:.0%})")
        return 1
    print(f"OK: {compared} join rows within {args.threshold:.0%} of "
          f"baseline; invariants hold in {len(cells)} cells")
    return 0


KERNEL_METRICS = ("gb_per_s", "mb_per_s", "mprobes_per_s")


def load_meta_rows(path):
    with open(path) as f:
        doc = json.load(f)
    return {("meta", row["shape"], row["servers"], row["objects"]): row
            for row in doc.get("meta", [])}


def check_meta(args):
    """Metadata-scaling mode: sim_s regression diff plus hard invariants
    on the candidate alone — for every (shape, servers) the trie query at
    the largest catalog must cost <= 3x the smallest catalog (traversal is
    O(pattern + output), not O(objects)); the modeled linear oracle must
    actually scale linearly (>= half the catalog ratio); and every server
    count must report the same hit count per (shape, objects)."""
    base = load_meta_rows(args.baseline)
    cand = load_meta_rows(args.candidate)
    failures = []
    compared = 0
    for key, base_row in sorted(base.items()):
        cand_row = cand.get(key)
        if cand_row is None:
            print(f"note: {key} missing from candidate (skipped)")
            continue
        compared += 1
        label = "/".join(str(k) for k in key)
        b, c = base_row["sim_s"], cand_row["sim_s"]
        regressed = c > b * (1.0 + args.threshold)
        if regressed:
            failures.append((key, "sim_s"))
        rel = (c - b) / b if b > 0 else 0.0
        print(f"{label:32s} sim_s  base {b:12.9f}  cand {c:12.9f}  "
              f"{rel:+7.1%}{'  <-- REGRESSION' if regressed else ''}")
    for key in sorted(set(cand) - set(base)):
        print(f"note: {key} new in candidate (not gated)")

    # Hard invariants over the candidate, independent of any baseline.
    shapes = sorted({k[1] for k in cand})
    servers = sorted({k[2] for k in cand})
    sizes = sorted({k[3] for k in cand})
    if len(sizes) >= 2:
        small, large = sizes[0], sizes[-1]
        ratio = large / small
        for shape in shapes:
            for srv in servers:
                lo = cand.get(("meta", shape, srv, small))
                hi = cand.get(("meta", shape, srv, large))
                if lo is None or hi is None:
                    failures.append(((shape, srv), "missing size row"))
                    print(f"FAILCHECK {shape}/{srv}srv: a catalog-size row "
                          f"dropped out of the bench")
                    continue
                if hi["sim_s"] > 3.0 * lo["sim_s"]:
                    failures.append(((shape, srv), "trie not flat"))
                    print(f"FAILCHECK {shape}/{srv}srv: trie sim_s at "
                          f"{large} = {hi['sim_s']:.9f} > 3x "
                          f"{lo['sim_s']:.9f} at {small}")
                if hi["oracle_s"] < 0.5 * ratio * lo["oracle_s"]:
                    failures.append(((shape, srv), "oracle not linear"))
                    print(f"FAILCHECK {shape}/{srv}srv: oracle_s grew "
                          f"{hi['oracle_s'] / lo['oracle_s']:.1f}x over a "
                          f"{ratio:.0f}x catalog — not a linear model")
                if hi["sim_s"] >= hi["oracle_s"]:
                    failures.append(((shape, srv), "trie not beating oracle"))
                    print(f"FAILCHECK {shape}/{srv}srv: trie sim_s "
                          f"{hi['sim_s']:.9f} >= oracle "
                          f"{hi['oracle_s']:.9f} at {large} objects")
    for shape in shapes:
        for size in sizes:
            hits = {cand[("meta", shape, srv, size)]["hits"]
                    for srv in servers
                    if ("meta", shape, srv, size) in cand}
            if len(hits) > 1:
                failures.append(((shape, size), "hit counts disagree"))
                print(f"FAILCHECK {shape}/{size}: server counts disagree "
                      f"on hits: {sorted(hits)}")

    if compared == 0 and not cand:
        print("FAIL: no meta rows — wrong files?")
        return 1
    if failures:
        print(f"FAIL: {len(failures)} metadata checks failed "
              f"(threshold {args.threshold:.0%})")
        return 1
    print(f"OK: {compared} meta rows within {args.threshold:.0%} of "
          f"baseline; flat-trie, linear-oracle and hit-agreement "
          f"invariants hold")
    return 0


def kernel_metric(row):
    for name in KERNEL_METRICS:
        if name in row:
            return name, row[name]
    raise KeyError(f"kernel row without a throughput metric: {row}")


def check_kernels(args):
    with open(args.baseline) as f:
        base_doc = json.load(f)
    with open(args.candidate) as f:
        cand_doc = json.load(f)
    cand_machine = cand_doc.get("machine", {})
    base_machine = base_doc.get("machine", {})
    failures = []

    cand_kernels = {(r["name"], r["backend"]): r
                    for r in cand_doc.get("kernels", [])}
    cand_builds = {(r["name"], r["threads"]): r["seconds"]
                   for r in cand_doc.get("builds", [])}

    # ---- SIMD floors (candidate only, AVX2 hardware only) ----
    floors = [("scan_f32", 4.0), ("wah_expand", 2.0)]
    if cand_machine.get("avx2"):
        for name, floor in floors:
            scalar = cand_kernels.get((name, "scalar"))
            simd = cand_kernels.get((name, "avx2"))
            if scalar is None or simd is None:
                failures.append((name, "missing scalar/avx2 rows"))
                continue
            _, s = kernel_metric(scalar)
            _, v = kernel_metric(simd)
            speedup = v / s if s > 0 else 0.0
            ok = speedup >= floor
            if not ok:
                failures.append((name, f"avx2 speedup {speedup:.2f}x "
                                       f"< {floor:.0f}x floor"))
            print(f"{name:16s} avx2/scalar {speedup:6.2f}x  "
                  f"(floor {floor:.0f}x){'' if ok else '  <-- BELOW FLOOR'}")
    else:
        print("note: candidate machine has no AVX2 — SIMD floors skipped")

    # ---- parallel-build floor (candidate only, >= 8 hw threads) ----
    if cand_machine.get("hardware_threads", 0) >= 8:
        s1 = cand_builds.get(("sortrep_build", 1))
        s8 = cand_builds.get(("sortrep_build", 8))
        if s1 is None or s8 is None:
            failures.append(("sortrep_build", "missing 1/8-thread rows"))
        else:
            speedup = s1 / s8 if s8 > 0 else 0.0
            ok = speedup >= 3.0
            if not ok:
                failures.append(("sortrep_build",
                                 f"8-thread speedup {speedup:.2f}x < 3x"))
            print(f"{'sortrep_build':16s} 1t/8t       {speedup:6.2f}x  "
                  f"(floor 3x){'' if ok else '  <-- BELOW FLOOR'}")
    else:
        print(f"note: candidate has "
              f"{cand_machine.get('hardware_threads', 0)} hardware threads "
              f"— 8-thread build floor skipped")

    # ---- throughput regression vs baseline (matching machines only) ----
    same_machine = (
        base_machine.get("hardware_threads") ==
        cand_machine.get("hardware_threads") and
        base_machine.get("avx2") == cand_machine.get("avx2"))
    compared = 0
    if same_machine:
        for key, base_row in sorted(
                {(r["name"], r["backend"]): r
                 for r in base_doc.get("kernels", [])}.items()):
            cand_row = cand_kernels.get(key)
            if cand_row is None:
                print(f"note: {key} missing from candidate (skipped)")
                continue
            compared += 1
            metric, b = kernel_metric(base_row)
            _, c = kernel_metric(cand_row)
            rel = (c - b) / b if b > 0 else 0.0
            regressed = c < b * (1.0 - args.threshold)
            if regressed:
                failures.append((key, f"{metric} {rel:+.1%}"))
            print(f"{'/'.join(key):24s} {metric:12s} base {b:10.3f}  "
                  f"cand {c:10.3f}  {rel:+7.1%}"
                  f"{'  <-- REGRESSION' if regressed else ''}")
    else:
        print("note: baseline recorded on a different machine "
              f"(base {base_machine.get('hardware_threads')}t/"
              f"avx2={base_machine.get('avx2')}, "
              f"cand {cand_machine.get('hardware_threads')}t/"
              f"avx2={cand_machine.get('avx2')}) — regression diff skipped")

    if failures:
        for what, why in failures:
            print(f"FAIL: {what}: {why}")
        return 1
    print(f"OK: kernel floors satisfied"
          f"{f', {compared} rows within {args.threshold:.0%}' if compared else ''}")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="max allowed relative sim_s regression")
    parser.add_argument("--sections", default="fig3,fig6",
                        help="comma-separated row sections to compare")
    parser.add_argument("--require-strategy", action="append", default=[],
                        metavar="NAME",
                        help="fail unless the candidate has rows for this "
                             "strategy (repeatable)")
    parser.add_argument("--traffic", action="store_true",
                        help="compare traffic_bench output (goodput + p99 "
                             "by arrival/load) instead of figure rows")
    parser.add_argument("--kernels", action="store_true",
                        help="compare kernels_bench output (wall-clock SIMD "
                             "floors + machine-matched throughput diff)")
    parser.add_argument("--writes", action="store_true",
                        help="compare writes_bench output (simulated "
                             "read/write cost by strategy and write "
                             "fraction)")
    parser.add_argument("--join", action="store_true",
                        help="compare join_bench output (simulated join "
                             "cost by strategy/servers/sources, plus "
                             "zone-vs-broadcast shuffle invariants)")
    parser.add_argument("--meta", action="store_true",
                        help="compare meta_bench output (simulated metadata "
                             "query cost by shape/servers/objects, plus "
                             "flat-trie vs linear-oracle invariants)")
    args = parser.parse_args()

    if args.traffic:
        return check_traffic(args)
    if args.kernels:
        return check_kernels(args)
    if args.writes:
        return check_writes(args)
    if args.join:
        return check_join(args)
    if args.meta:
        return check_meta(args)

    sections = [s for s in args.sections.split(",") if s]
    base = load_rows(args.baseline, sections)
    cand = load_rows(args.candidate, sections)

    failures = []
    compared = 0
    for key, base_row in sorted(base.items()):
        cand_row = cand.get(key)
        if cand_row is None:
            print(f"note: {key} missing from candidate (skipped)")
            continue
        compared += 1
        b, c = base_row["sim_s"], cand_row["sim_s"]
        limit = b * (1.0 + args.threshold)
        marker = ""
        if c > limit:
            failures.append(key)
            marker = "  <-- REGRESSION"
        rel = (c - b) / b if b > 0 else 0.0
        print(f"{'/'.join(str(k) for k in key):40s} "
              f"base {b:.9f}  cand {c:.9f}  {rel:+7.1%}{marker}")
    for key in sorted(set(cand) - set(base)):
        print(f"note: {key} new in candidate (not gated)")

    if compared == 0:
        print("FAIL: no comparable rows — wrong files or sections?")
        return 1
    cand_strategies = {key[1] for key in cand}
    missing = [s for s in args.require_strategy if s not in cand_strategies]
    if missing:
        print(f"FAIL: candidate has no rows for required "
              f"strateg{'y' if len(missing) == 1 else 'ies'}: "
              f"{', '.join(missing)}")
        return 1
    if failures:
        print(f"FAIL: {len(failures)}/{compared} rows regressed more than "
              f"{args.threshold:.0%} in simulated time")
        return 1
    print(f"OK: {compared} rows within {args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
