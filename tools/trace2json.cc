// trace2json: convert a binary PDC trace file (obs::write_trace_file) to
// Chrome trace_event JSON on stdout.  Open the result in chrome://tracing
// or https://ui.perfetto.dev.
//
// Usage:
//   trace2json <trace.pdct>            # JSON to stdout
//   trace2json <trace.pdct> <out.json> # JSON to a file
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "obs/trace.h"

int main(int argc, char** argv) {
  if (argc < 2 || argc > 3) {
    std::fprintf(stderr,
                 "usage: %s <trace-file> [out.json]\n"
                 "  Converts a binary trace written by the query service\n"
                 "  (QueryOptions::trace = true + obs::write_trace_file)\n"
                 "  into Chrome trace_event JSON for chrome://tracing.\n",
                 argv[0]);
    return 2;
  }
  auto trace = pdc::obs::read_trace_file(argv[1]);
  if (!trace.ok()) {
    std::fprintf(stderr, "trace2json: %s\n",
                 trace.status().ToString().c_str());
    return 1;
  }
  const std::string json = pdc::obs::chrome_trace_json(*trace);
  if (argc == 3) {
    std::ofstream out(argv[2], std::ios::binary);
    out << json;
    if (!out) {
      std::fprintf(stderr, "trace2json: cannot write %s\n", argv[2]);
      return 1;
    }
  } else {
    std::cout << json << "\n";
  }
  return 0;
}
